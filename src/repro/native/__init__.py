"""Native toolchain substrate: icc/gcc models and AOT binaries."""

from repro.native.binary import NATIVE_VARIABILITY, NativeBinary, binary_for
from repro.native.compiler import CodeQuality, Toolchain, effective_ilp, quality_of

__all__ = [
    "CodeQuality",
    "NATIVE_VARIABILITY",
    "NativeBinary",
    "Toolchain",
    "binary_for",
    "effective_ilp",
    "quality_of",
]
