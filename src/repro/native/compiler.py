"""Native toolchain models (§2.1).

The paper compiles SPEC CPU2006 with icc 11.1 -o3 (one binary for all
platforms, no microarchitecture-specific tuning) and PARSEC with its
default gcc 4.4.1 -O3 build scripts (icc miscompiled several PARSEC
codes).  Java code is compiled by the JIT, which *may* emit
microarchitecture-specific code (§2.2).

A toolchain contributes one number to the execution model: a code-quality
factor on attained ILP.  icc's scalar optimiser measurably beats gcc on
SPEC-style code — the paper chose icc because it "consistently generated
better performing code".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Toolchain(enum.Enum):
    ICC = "icc 11.1 -o3"
    GCC = "gcc 4.4.1 -O3"
    JIT = "HotSpot server JIT"


@dataclass(frozen=True, slots=True)
class CodeQuality:
    """How well a toolchain's output exploits a core."""

    #: Multiplier on the workload's exploitable ILP.
    ilp_factor: float
    #: Whether code is specialised to the running microarchitecture
    #: (dynamic compilers can; the paper's fixed native binaries cannot).
    microarch_specific: bool

    def __post_init__(self) -> None:
        if self.ilp_factor <= 0:
            raise ValueError("ILP factor must be positive")


_QUALITY = {
    Toolchain.ICC: CodeQuality(ilp_factor=1.00, microarch_specific=False),
    Toolchain.GCC: CodeQuality(ilp_factor=0.96, microarch_specific=False),
    # The JIT trades a little peak scalar quality for portability but can
    # schedule for the actual pipeline it runs on.
    Toolchain.JIT: CodeQuality(ilp_factor=0.95, microarch_specific=True),
}

#: Uplift a microarchitecture-specific compile gets over a generic binary.
MICROARCH_TUNING_BONUS = 1.02


def quality_of(toolchain: Toolchain) -> CodeQuality:
    return _QUALITY[toolchain]


def effective_ilp(toolchain: Toolchain, workload_ilp: float) -> float:
    """Exploitable ILP of a workload as compiled by ``toolchain``."""
    if workload_ilp < 1.0:
        raise ValueError("workload ILP must be >= 1.0")
    quality = quality_of(toolchain)
    ilp = workload_ilp * quality.ilp_factor
    if quality.microarch_specific:
        ilp *= MICROARCH_TUNING_BONUS
    return max(ilp, 1.0)
