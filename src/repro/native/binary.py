"""Compiled-binary model for native benchmarks.

A native benchmark is an ahead-of-time binary: its toolchain is fixed by
suite (§2.1 — icc for SPEC CPU2006, gcc for PARSEC), it runs no runtime
services, and it replays near-deterministically (the paper needs only 3-5
executions versus 20 JVM invocations).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.native.compiler import Toolchain
from repro.workloads.benchmark import Benchmark, Suite

#: Run-to-run coefficient of variation of a native binary (OS jitter only).
NATIVE_VARIABILITY = 0.004


@dataclass(frozen=True, slots=True)
class NativeBinary:
    """A benchmark as built by its suite's toolchain."""

    benchmark: Benchmark
    toolchain: Toolchain

    @property
    def variability(self) -> float:
        return NATIVE_VARIABILITY


def binary_for(benchmark: Benchmark) -> NativeBinary:
    """Build description for a native benchmark (suite decides toolchain)."""
    if benchmark.managed:
        raise ValueError(f"{benchmark.name} is managed; it has no AOT binary")
    toolchain = (
        Toolchain.GCC if benchmark.suite is Suite.PARSEC else Toolchain.ICC
    )
    return NativeBinary(benchmark=benchmark, toolchain=toolchain)
