"""Simultaneous multithreading model (§3.2).

Two hardware threads on one core share issue slots: the second thread can
only convert otherwise-unused slots into work.  The pool SMT draws from is
the core's whole *utilisation gap* — explicit stalls (memory, branches,
dependencies) plus the issue bandwidth a single thread simply cannot fill
— so the core's aggregate throughput with two threads is::

    throughput_2T = throughput_1T * (1 + overlap * (1 - utilisation) - contention)

where ``utilisation`` is the single thread's attained IPC over peak issue
width, ``overlap`` is the implementation's ability to recover unused slots
(modest on the pioneering Pentium 4, strong on Nehalem and on the in-order
Atom), and ``contention`` is the tax of sharing queues, caches, and (on
NetBurst) the trace cache.

This reproduces Architecture Finding 2's counter-intuition: the dual-issue
in-order Atom gains *more* from SMT than the quad-issue out-of-order parts,
because a single thread leaves three quarters of its issue slots empty.
"""

from __future__ import annotations

from repro.execution.cpi import CpiBreakdown
from repro.hardware.microarch import Microarchitecture


def utilisation_gap(family: Microarchitecture, breakdown: CpiBreakdown) -> float:
    """Fraction of the core's issue slots a single thread leaves unused."""
    ipc = 1.0 / breakdown.total
    return max(1.0 - ipc / family.issue_width, 0.0)


def core_throughput_gain(
    family: Microarchitecture,
    breakdown: CpiBreakdown,
    extra_contention: float = 0.0,
) -> float:
    """Aggregate throughput multiplier of 2 threads vs 1 on one core.

    ``extra_contention`` adds workload-specific pressure (e.g. the JIT's
    code working set fighting NetBurst's trace cache).  The result is
    clamped at 1.0 from below: running a second thread never makes the
    *core* slower in aggregate on these parts, though it may approach
    break-even.
    """
    if extra_contention < 0:
        raise ValueError("contention cannot be negative")
    gain = family.smt_overlap * utilisation_gap(family, breakdown)
    loss = family.smt_contention + extra_contention
    return max(1.0 + gain - loss, 1.0)


def sibling_slowdown(
    family: Microarchitecture,
    breakdown: CpiBreakdown,
    extra_contention: float = 0.0,
) -> float:
    """Slowdown of a *foreground* thread when a background helper shares
    its core via SMT.

    Unlike the symmetric two-way case, a background service thread (GC,
    JIT) gives the foreground nothing to wait for, so the foreground sees
    pure contention, softened by whatever slots were unused anyway.
    Returns a multiplier >= 1.0 on the foreground thread's CPI.
    """
    if extra_contention < 0:
        raise ValueError("contention cannot be negative")
    pressure = family.smt_contention + extra_contention
    softening = 1.0 - family.smt_overlap * utilisation_gap(family, breakdown) * 0.5
    return 1.0 + max(pressure * softening, 0.0)
