"""Power-versus-time view of an execution.

The measurement substrate samples the processor's supply current at 50 Hz
(§2.5); this module exposes an execution's ground-truth power as a
piecewise-constant function of time so the sensor pipeline can sample it
without knowing anything about phases.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.core.quantities import Seconds, Watts
from repro.execution.engine import Execution


@dataclass(frozen=True)
class PowerTrace:
    """Piecewise-constant true power over the duration of a run."""

    duration: Seconds
    boundaries: tuple[float, ...]  # cumulative end time of each piece
    levels: tuple[float, ...]  # watts within each piece

    def __post_init__(self) -> None:
        if len(self.boundaries) != len(self.levels):
            raise ValueError("boundaries and levels must align")
        if not self.boundaries:
            raise ValueError("a trace needs at least one piece")

    @cached_property
    def peak(self) -> float:
        """Highest true power level of the run (watts), computed once —
        the meter's saturation guard compares against it per measurement."""
        return float(max(self.levels))

    def power_at(self, t: float) -> Watts:
        """True power at time ``t`` (clamped to the run's duration)."""
        if t < 0:
            raise ValueError("time cannot be negative")
        t = min(t, self.boundaries[-1])
        index = min(bisect_right(self.boundaries, t), len(self.levels) - 1)
        return Watts(self.levels[index])

    def sample_times(self, rate_hz: float, max_samples: int | None = None) -> np.ndarray:
        """Sampling instants of a logger running at ``rate_hz``.

        ``max_samples`` caps the sample count for very long runs (the
        power signal is piecewise constant, so a bounded number of samples
        loses nothing but noise-averaging depth); the cap stretches the
        effective period to keep samples evenly spread over the full run.
        """
        if rate_hz <= 0:
            raise ValueError("sample rate must be positive")
        count = sample_count(self.duration.value, rate_hz, max_samples)
        return (np.arange(count) + 0.5) * (self.duration.value / count)

    def powers_at(self, times: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`power_at` (watts as a float array)."""
        times = np.clip(np.asarray(times, dtype=float), 0.0, self.boundaries[-1])
        idx = np.minimum(
            np.searchsorted(self.boundaries, times, side="right"),
            len(self.levels) - 1,
        )
        return np.asarray(self.levels, dtype=float)[idx]

    def average_power(self) -> Watts:
        """Exact time-weighted average of the trace."""
        start = 0.0
        total = 0.0
        for end, level in zip(self.boundaries, self.levels):
            total += level * (end - start)
            start = end
        return Watts(total / self.boundaries[-1])


def sample_count(duration_s: float, rate_hz: float, max_samples: int | None) -> int:
    """Samples a ``rate_hz`` logger records over ``duration_s``: the
    truncated sample count, floored at one, capped at ``max_samples``.

    One function so the scalar path and the compiled-kernel path
    (:func:`repro.execution.kernels.sample_counts`, its vectorised twin)
    cannot drift apart.
    """
    count = max(int(duration_s * rate_hz), 1)
    if max_samples is not None:
        if max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        count = min(count, max_samples)
    return count


def sample_counts(
    durations_s: np.ndarray, rate_hz: float, max_samples: int | None
) -> np.ndarray:
    """Vectorised :func:`sample_count` over an array of run durations.

    ``astype(int64)`` truncates toward zero exactly as ``int()`` does for
    the non-negative products here, so every element equals the scalar
    rule's answer bit for bit."""
    counts = (durations_s * rate_hz).astype(np.int64)
    np.maximum(counts, 1, out=counts)
    if max_samples is not None:
        if max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        np.minimum(counts, max_samples, out=counts)
    return counts


def trace_of(execution: Execution) -> PowerTrace:
    """Build the ground-truth power trace of an execution."""
    boundaries: list[float] = []
    levels: list[float] = []
    elapsed = 0.0
    for phase in execution.phases:
        elapsed += phase.seconds
        boundaries.append(elapsed)
        levels.append(phase.power.value)
    return PowerTrace(
        duration=execution.seconds,
        boundaries=tuple(boundaries),
        levels=tuple(levels),
    )
