"""Cycles-per-instruction model.

A thread's CPI decomposes into:

* **base** — the reciprocal of attained issue rate: the lesser of what the
  front-end can sustain (issue width x issue efficiency x platform factor)
  and what the instruction stream offers (toolchain-adjusted ILP);
* **dependency** — in-order machines stall on scheduling hazards an
  out-of-order window would hide (Bonnell's hallmark);
* **branch** — mispredictions x pipeline refill;
* **memory** — LLC misses x effective miss latency, partially overlapped
  by the out-of-order window and inflated under bandwidth saturation.

The stall components are exactly what SMT recovers (§3.2), so the
breakdown is kept rather than collapsed to a scalar.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.hardware.caches import resolve_mpki
from repro.hardware.config import Configuration
from repro.hardware.memory import miss_latency_cycles
from repro.core.quantities import Hertz
from repro.native.compiler import Toolchain, effective_ilp
from repro.workloads.characteristics import WorkloadCharacter

#: In-order dependency stalls as a fraction of base issue time, per unit
#: of workload ILP: the more independent work a stream offers, the more an
#: in-order pipeline leaves on the table relative to an OoO window.
INORDER_DEPENDENCY_BASE = 0.15
INORDER_DEPENDENCY_PER_ILP = 0.18


@dataclass(frozen=True, slots=True)
class CpiBreakdown:
    """Per-thread cycles per instruction, by cause."""

    base: float
    dependency: float
    branch: float
    memory: float
    #: Resolved LLC misses per kilo-instruction (drives events and
    #: bandwidth demand).
    mpki: float

    @property
    def total(self) -> float:
        return self.base + self.dependency + self.branch + self.memory

    @property
    def stall_fraction(self) -> float:
        """Fraction of cycles lost to stalls — the slots SMT can fill."""
        return (self.dependency + self.branch + self.memory) / self.total

    @property
    def issue_utilisation_of(self) -> float:
        """Issue-time share (how hard the execution units actually work)."""
        return self.base / self.total

    def with_memory_inflation(self, inflation: float) -> "CpiBreakdown":
        """Scale the memory stall component (bandwidth queueing)."""
        if inflation < 1.0:
            raise ValueError("inflation cannot shrink stalls")
        return replace(self, memory=self.memory * inflation)


def thread_cpi(
    character: WorkloadCharacter,
    config: Configuration,
    toolchain: Toolchain,
    frequency: Hertz,
    mpki_factor: float = 1.0,
    llc_sharing_contexts: int = 1,
) -> CpiBreakdown:
    """CPI of one thread of ``character`` on ``config`` at ``frequency``.

    ``mpki_factor`` carries runtime effects (GC displacement);
    ``llc_sharing_contexts`` is how many software threads compete for the
    LLC.  ``frequency`` is passed explicitly because Turbo Boost can move
    it above the configured clock.
    """
    spec = config.spec
    family = spec.family

    front_end = family.issue_width * family.issue_efficiency * spec.platform_efficiency
    stream = effective_ilp(toolchain, character.ilp)
    attained = min(front_end, stream)
    if toolchain is Toolchain.JIT:
        attained /= 1.0 + family.jit_code_penalty
    base = 1.0 / attained

    if family.out_of_order:
        dependency = 0.0
    else:
        dependency = base * (
            INORDER_DEPENDENCY_BASE + INORDER_DEPENDENCY_PER_ILP * character.ilp
        )

    branch = character.branch_mpki / 1000.0 * family.branch_penalty_cycles()

    cache = resolve_mpki(
        character.memory_mpki * mpki_factor,
        character.footprint_mb,
        config,
        sharing_contexts=llc_sharing_contexts,
    )
    latency = miss_latency_cycles(spec.memory, frequency)
    exposed = latency * (1.0 - family.miss_overlap)
    memory = cache.mpki / 1000.0 * exposed

    return CpiBreakdown(
        base=base,
        dependency=dependency,
        branch=branch,
        memory=memory,
        mpki=cache.mpki,
    )


def issue_utilisation(breakdown: CpiBreakdown, config: Configuration) -> float:
    """Attained IPC over peak issue width, for the power model's
    switching estimate."""
    ipc = 1.0 / breakdown.total
    return min(ipc / config.spec.family.issue_width, 1.0)
