"""Thread placement and multiprocessor scaling.

Maps a program's software threads onto a configuration's hardware contexts
the way the period Linux scheduler does — whole cores first, SMT siblings
only once every core has one thread — and computes the aggregate
instruction throughput of that placement, including Amdahl's serial
fraction and per-thread synchronisation overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.execution.cpi import CpiBreakdown
from repro.execution.smt import core_throughput_gain
from repro.hardware.config import Configuration


@dataclass(frozen=True, slots=True)
class Placement:
    """How software threads land on cores and SMT contexts."""

    threads: int
    cores_used: int
    #: Cores running two hardware threads.
    smt_pairs: int

    @property
    def single_thread_cores(self) -> int:
        return self.cores_used - self.smt_pairs


def place_threads(threads: int, config: Configuration) -> Placement:
    """Schedule ``threads`` runnable threads on ``config``.

    Threads beyond the hardware context count time-share and add no
    throughput; they are clipped (the engine also clips, but placement
    must be self-consistent).
    """
    if threads < 1:
        raise ValueError("thread count must be >= 1")
    threads = min(threads, config.hardware_contexts)
    cores_used = min(threads, config.active_cores)
    smt_pairs = max(threads - cores_used, 0)
    return Placement(threads=threads, cores_used=cores_used, smt_pairs=smt_pairs)


def aggregate_throughput(
    placement: Placement,
    per_thread: CpiBreakdown,
    config: Configuration,
    frequency_hz: float,
    extra_contention: float = 0.0,
) -> float:
    """Instructions per second of all placed threads together."""
    single_rate = frequency_hz / per_thread.total
    smt_gain = core_throughput_gain(
        config.spec.family, per_thread, extra_contention
    )
    return (
        placement.single_thread_cores * single_rate
        + placement.smt_pairs * single_rate * smt_gain
    )


def sync_inflation(character_sync_overhead: float, threads: int) -> float:
    """Wall-time inflation from synchronising ``threads`` workers."""
    if threads < 1:
        raise ValueError("thread count must be >= 1")
    return 1.0 + character_sync_overhead * (threads - 1)
