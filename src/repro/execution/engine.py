"""The execution engine: runs a benchmark on a processor configuration.

``ExecutionEngine.execute`` is the testbed: it produces the ground-truth
execution (wall time, per-phase power, event counters) that the measurement
substrate then observes through the Hall-effect sensor pipeline, exactly
mirroring the paper's physical setup.

An execution has up to two work phases — the Amdahl serial fraction on one
core and the parallel fraction across the placed threads — plus, for Java,
runtime-service work that either serialises with the application or
overlaps on spare contexts (:mod:`repro.runtime.jvm`).  Turbo Boost is
resolved per phase, because the boost depends on how many cores the phase
keeps busy (§3.6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.quantities import Hertz, Joules, Seconds, Watts, energy
from repro.core.seeding import rng_for, run_key
from repro.execution.cpi import CpiBreakdown, thread_cpi
from repro.faults.injector import active as _faults_active
from repro.execution.scaling import (
    Placement,
    aggregate_throughput,
    place_threads,
    sync_inflation,
)
from repro.hardware.config import Configuration
from repro.hardware.events import EventCounts
from repro.hardware.memory import capped_throughput
from repro.hardware.power import package_power
from repro.hardware.turbo import TurboState, resolve as resolve_turbo
from repro.native.binary import NATIVE_VARIABILITY, binary_for
from repro.native.compiler import Toolchain
from repro.obs.metrics import default_registry
from repro.runtime.heap import HeapPolicy
from repro.runtime.jit import DEFAULT_WARMUP, JitWarmup
from repro.runtime.jvm import JvmPlan, ServicePlacement, plan as jvm_plan
from repro.runtime.methodology import STEADY_STATE_ITERATION
from repro.runtime.vendors import HOTSPOT, JvmVendor
from repro.workloads.benchmark import Benchmark
from repro.workloads.catalog import BENCHMARKS
from repro.hardware.catalog import reference_processors
from repro.hardware.config import stock

#: Nominal instruction volume used while calibrating per-benchmark work.
_PROBE_INSTRUCTIONS = 1e9

#: DTLB displacement is sharper than LLC displacement: the collector walks
#: the whole heap, evicting translations wholesale (db's 2.5x, §3.1).
_DTLB_DISPLACEMENT_GAIN = 2.0

_REGISTRY = default_registry()
_EXECUTIONS = _REGISTRY.counter(
    "repro_engine_executions_total",
    "Measured executions performed by the engine",
)
_CALIBRATION_PROBES = _REGISTRY.counter(
    "repro_engine_calibration_probes_total",
    "Reference-machine probe runs used to calibrate benchmark work",
)
_INSTRUCTION_CACHE_HITS = _REGISTRY.counter(
    "repro_engine_instruction_cache_hits_total",
    "instructions_for answered from the per-benchmark calibration cache",
)
_INSTRUCTION_CACHE_MISSES = _REGISTRY.counter(
    "repro_engine_instruction_cache_misses_total",
    "instructions_for calibrations performed",
)
_PHASES = _REGISTRY.counter(
    "repro_engine_phases_total",
    "Execution phases simulated, by phase name",
)
_SERIAL_PHASES = _PHASES.labels(phase="serial")
_PARALLEL_PHASES = _PHASES.labels(phase="parallel")
_PLAN_CACHE_HITS = _REGISTRY.counter(
    "repro_engine_plan_cache_hits_total",
    "Measured executions answered from the execution-plan cache",
)
_PLAN_CACHE_MISSES = _REGISTRY.counter(
    "repro_engine_plan_cache_misses_total",
    "Execution plans built from scratch for measured runs",
)


@dataclass(frozen=True, slots=True)
class Phase:
    """One homogeneous interval of an execution."""

    name: str
    seconds: float
    busy_cores: float
    utilisation: float
    frequency: Hertz
    turbo: TurboState
    power: Watts


@dataclass(frozen=True, slots=True)
class _PhaseSkeleton:
    """The noise-independent shape of one phase: everything except the
    per-invocation noise scalars and the power they modulate."""

    name: str
    base_seconds: float
    busy_cores: float
    utilisation: float
    turbo: TurboState
    smt_factor: float


@dataclass(frozen=True, slots=True)
class ExecutionPlan:
    """Deterministic skeleton of a (benchmark, configuration) run.

    Everything upstream of the noise scalars — JVM service plan, thread
    placement, per-phase CPI and throughput, turbo resolution, event
    counts — is a pure function of the pair, so the engine computes it
    once and replays it per invocation, applying only ``time_noise`` and
    ``activity_noise``.  The stored factors are replayed in the exact
    operation order of the unplanned path, so a planned execution is
    bit-identical to an unplanned one.
    """

    benchmark: Benchmark
    config: Configuration
    phases: tuple[_PhaseSkeleton, ...]
    base_seconds: float
    events: EventCounts
    jvm: Optional[JvmPlan]
    activity_base: float
    vendor_activity_factor: Optional[float]
    vendor_performance_factor: Optional[float]


@dataclass(frozen=True, slots=True)
class Execution:
    """Ground truth of one run: what a perfect observer would see."""

    benchmark: Benchmark
    config: Configuration
    seconds: Seconds
    phases: tuple[Phase, ...]
    events: EventCounts
    jvm: Optional[JvmPlan] = None

    @property
    def average_power(self) -> Watts:
        """Time-weighted true average package power."""
        total = sum(p.power.value * p.seconds for p in self.phases)
        return Watts(total / self.seconds.value)

    @property
    def energy(self) -> Joules:
        return energy(self.average_power, self.seconds)


class ExecutionEngine:
    """Runs benchmarks on configurations; the simulated testbed.

    ``heap`` selects the JVM heap policy (default: the paper's 3x minimum);
    ``warmup`` the JIT warm-up curve; ``seed_root`` re-rolls every
    stochastic component at once.
    """

    def __init__(
        self,
        heap: Optional[HeapPolicy] = None,
        warmup: JitWarmup = DEFAULT_WARMUP,
        seed_root: str = "engine",
        jvm_services_enabled: bool = True,
        jvm_vendor: JvmVendor = HOTSPOT,
        native_toolchain: Optional[Toolchain] = None,
    ) -> None:
        self._heap = heap or HeapPolicy()
        self._warmup = warmup
        self._seed_root = seed_root
        self._jvm_services_enabled = jvm_services_enabled
        self._jvm_vendor = jvm_vendor
        self._native_toolchain = native_toolchain
        self._instruction_cache: dict[Benchmark, float] = {}
        self._plan_cache: dict[
            tuple[Benchmark, Configuration, Optional[int]], ExecutionPlan
        ] = {}
        # Compiled sweep kernels (:mod:`repro.execution.kernels`), keyed
        # by (benchmark, config key, effective iteration, invocations).
        # The engine stores them opaquely — the kernels module owns their
        # shape — so the snapshot/preload plumbing mirrors calibration's.
        self._kernel_cache: dict[tuple, object] = {}

    def __getstate__(self) -> dict:
        """Pickle support for shipping the engine to pool workers.

        The calibration table travels (it is a small dict of floats and
        saves each worker four probe runs per benchmark); the plan and
        kernel caches do not — plans are bulky and cheap to rebuild, and
        kernels ship separately via ``WorkerSetup.kernels`` so their
        materialised noise draws never ride along."""
        state = self.__dict__.copy()
        state["_plan_cache"] = {}
        state["_kernel_cache"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.__dict__.setdefault("_kernel_cache", {})

    # -- public API ----------------------------------------------------------

    def execute(
        self,
        benchmark: Benchmark,
        config: Configuration,
        invocation: int = 0,
        iteration: Optional[int] = None,
    ) -> Execution:
        """One measured run following the paper's protocol.

        ``iteration`` defaults to the steady-state iteration for Java and
        is ignored for native benchmarks (they have no warm-up).

        An armed fault injector may abort the invocation here with
        :class:`~repro.faults.InvocationCrash` or
        :class:`~repro.faults.InvocationTimeout` — before the execution
        counter ticks, so telemetry counts completed runs.  Calibration
        probes and :meth:`ideal` bypass the hook: they model the
        analytical reference, not a run of the physical rig.
        """
        injector = _faults_active()
        if injector is not None:
            injector.check_invocation(
                f"{config.key}/{benchmark.name}/{invocation}"
            )
        _EXECUTIONS.inc()
        noise = self._noise(benchmark, config, invocation)
        power_noise = self._noise(
            benchmark, config, invocation, channel="power", scale=1.6
        )
        plan = self.execution_plan(benchmark, config, iteration)
        return self._run_plan(plan, time_noise=noise, activity_noise=power_noise)

    def execution_plan(
        self,
        benchmark: Benchmark,
        config: Configuration,
        iteration: Optional[int] = None,
    ) -> ExecutionPlan:
        """The cached deterministic skeleton of one measured run.

        The plan-cache lookup (and its hit/miss accounting) lives here so
        that :meth:`execute` and the sweep-kernel compiler
        (:mod:`repro.execution.kernels`) share one cache and one ledger.
        """
        # ``iteration or STEADY_STATE_ITERATION`` (the falsy-zero default
        # of the unplanned path) keys the cache for managed benchmarks;
        # native benchmarks have no warm-up, so their key collapses.
        effective_iteration = (
            (iteration or STEADY_STATE_ITERATION) if benchmark.managed else None
        )
        plan_key = (benchmark, config, effective_iteration)
        plan = self._plan_cache.get(plan_key)
        if plan is None:
            _PLAN_CACHE_MISSES.inc()
            instructions = self.instructions_for(benchmark)
            warm = 1.0
            if benchmark.managed:
                warm = self._warmup.overhead_at(effective_iteration)
            plan = self._plan_for(
                benchmark, config, instructions * warm, vendor=self._jvm_vendor
            )
            self._plan_cache[plan_key] = plan
        else:
            _PLAN_CACHE_HITS.inc()
        return plan

    def ideal(self, benchmark: Benchmark, config: Configuration) -> Execution:
        """A noise-free steady-state run (the model's platonic output)."""
        return self._raw_execute(
            benchmark, config, self.instructions_for(benchmark),
            time_noise=1.0, activity_noise=1.0, vendor=self._jvm_vendor,
        )

    def instructions_for(self, benchmark: Benchmark) -> float:
        """Per-benchmark work, calibrated so the mean run time across the
        four stock reference machines equals Table 1's reference time."""
        # Keyed by the benchmark *value* (frozen, hashable), not its name:
        # synthetic workloads may share names while differing in signature.
        cached = self._instruction_cache.get(benchmark)
        if cached is not None:
            _INSTRUCTION_CACHE_HITS.inc()
            return cached
        _INSTRUCTION_CACHE_MISSES.inc()
        probe_times = [
            self._raw_execute(
                benchmark, stock(spec), _PROBE_INSTRUCTIONS, time_noise=1.0
            ).seconds.value
            for spec in reference_processors()
        ]
        _CALIBRATION_PROBES.inc(len(probe_times))
        mean_probe = sum(probe_times) / len(probe_times)
        instructions = _PROBE_INSTRUCTIONS * benchmark.reference_seconds / mean_probe
        self._instruction_cache[benchmark] = instructions
        return instructions

    def calibration_snapshot(self) -> dict[Benchmark, float]:
        """The instruction-calibration table as a picklable mapping, for
        preloading pool workers (each probe costs four reference runs)."""
        return dict(self._instruction_cache)

    def preload_calibration(self, snapshot: dict[Benchmark, float]) -> None:
        """Adopt a :meth:`calibration_snapshot` wholesale (entries already
        calibrated locally are kept: both derivations are deterministic)."""
        for benchmark, instructions in snapshot.items():
            self._instruction_cache.setdefault(benchmark, instructions)

    # -- compiled sweep kernels ----------------------------------------------

    @property
    def seed_root(self) -> str:
        """The root under which every engine noise stream is keyed."""
        return self._seed_root

    def noise_sigma(
        self, benchmark: Benchmark, channel: str = "time", scale: float = 1.0
    ) -> float:
        """The lognormal sigma :meth:`_noise` draws with for ``channel``
        — exposed so the kernel compiler can precompute draw parameters
        without duplicating the variability policy."""
        variability = (
            benchmark.jvm.variability if benchmark.managed else NATIVE_VARIABILITY
        ) * scale
        if channel == "power":
            # Even deterministic native code draws measurably different
            # power run to run (thermal state, DRAM refresh phase): the
            # paper's Table 2 shows native power CIs well above its time
            # CIs, so the power channel has a noise floor.
            variability = max(variability, 0.012)
        return variability

    def cached_kernel(self, key: tuple) -> Optional[object]:
        """A compiled sweep kernel, or ``None`` (opaque to the engine)."""
        return self._kernel_cache.get(key)

    def store_kernel(self, key: tuple, kernel: object) -> None:
        self._kernel_cache[key] = kernel

    def kernel_snapshot(self) -> dict[tuple, object]:
        """The compiled-kernel table, for preloading pool workers the way
        :meth:`calibration_snapshot` preloads instruction calibration.
        Kernels serialise compactly: their materialised noise draws are
        dropped on pickle and rematerialised lazily from stored seeds."""
        return dict(self._kernel_cache)

    def preload_kernels(self, snapshot: dict[tuple, object]) -> None:
        """Adopt a :meth:`kernel_snapshot` (locally compiled entries win;
        both derivations are deterministic)."""
        for key, kernel in snapshot.items():
            self._kernel_cache.setdefault(key, kernel)

    def record_plan_replays(
        self, invocations: int, serial_phases: int, parallel_phases: int
    ) -> None:
        """Bulk execution telemetry for a compiled-kernel replay.

        A kernel evaluates a pair's whole invocation loop in one numpy
        pass, so the per-execution counters tick once with the batch
        totals — the same final values the scalar loop produces."""
        _EXECUTIONS.inc(invocations)
        if serial_phases:
            _SERIAL_PHASES.inc(serial_phases)
        if parallel_phases:
            _PARALLEL_PHASES.inc(parallel_phases)

    # -- internals -----------------------------------------------------------

    def _noise(
        self,
        benchmark: Benchmark,
        config: Configuration,
        invocation: int,
        channel: str = "time",
        scale: float = 1.0,
    ) -> float:
        """Run-to-run multiplicative noise for one measurement channel.

        Power varies between invocations too (GC timing shifts which
        phases coincide with sampling; §2.2's nondeterminism), with a
        somewhat smaller coefficient than time."""
        variability = self.noise_sigma(benchmark, channel=channel, scale=scale)
        if variability == 0.0:
            return 1.0
        rng = rng_for(
            run_key(self._seed_root, channel, benchmark.name, config.key, invocation)
        )
        return float(rng.lognormal(mean=0.0, sigma=variability))

    def _toolchain(self, benchmark: Benchmark) -> Toolchain:
        if benchmark.managed:
            return Toolchain.JIT
        if self._native_toolchain is not None:
            return self._native_toolchain
        return binary_for(benchmark).toolchain

    def _raw_execute(
        self,
        benchmark: Benchmark,
        config: Configuration,
        instructions: float,
        time_noise: float,
        activity_noise: float = 1.0,
        vendor: Optional[JvmVendor] = None,
    ) -> Execution:
        """One uncached run: build the deterministic plan, apply noise.

        Calibration probes and :meth:`ideal` come through here; measured
        runs go via :meth:`execute`'s plan cache instead."""
        plan = self._plan_for(benchmark, config, instructions, vendor)
        return self._run_plan(plan, time_noise=time_noise, activity_noise=activity_noise)

    def _plan_for(
        self,
        benchmark: Benchmark,
        config: Configuration,
        instructions: float,
        vendor: Optional[JvmVendor] = None,
    ) -> ExecutionPlan:
        character = benchmark.character
        # Vendor effects apply to measured runs but not to the work
        # calibration (Table 1's reference times are HotSpot's).  They
        # are stored as factors and replayed per invocation so the noisy
        # arithmetic keeps its original operation order.
        vendor_activity: Optional[float] = None
        vendor_performance: Optional[float] = None
        if vendor is not None and benchmark.managed:
            vendor_activity = vendor.activity_factor
            vendor_performance = vendor.performance_factor(benchmark)
        toolchain = self._toolchain(benchmark)

        plan: Optional[JvmPlan] = None
        mpki_factor = 1.0
        serial_service = 0.0
        overlapped_service = 0.0
        friction = 0.0
        if benchmark.managed and self._jvm_services_enabled:
            service_scale = vendor.service_scale if vendor is not None else 1.0
            plan = jvm_plan(benchmark, config, self._heap)
            mpki_factor = plan.displacement
            serial_service = plan.serial_service * service_scale
            overlapped_service = plan.overlapped_service * service_scale
            friction = plan.sibling_friction
            threads = plan.app_threads
        else:
            threads = min(
                character.threads_on(config.hardware_contexts),
                config.hardware_contexts,
            )

        placement = place_threads(threads, config)
        parallel_fraction = character.parallel_fraction if threads > 1 else 0.0

        skeletons: list[_PhaseSkeleton] = []
        total_app_cycles = 0.0
        total_misses = 0.0

        # --- serial phase: Amdahl remainder plus serialised service work.
        serial_instructions = instructions * (1.0 - parallel_fraction + serial_service)
        serial_busy = 1 + self._service_cores(plan, config, placement)
        # Turbo counts cores that are continuously loaded; bursty service
        # threads do not hold a core awake long enough to drop a step.
        serial_turbo = resolve_turbo(config, max(int(serial_busy), 1))
        serial_cpi = self._phase_cpi(
            character, config, toolchain, serial_turbo.frequency,
            mpki_factor, sharing=1, threads=1, friction=friction,
        )
        if serial_instructions > 0:
            serial_rate = capped_throughput(
                serial_turbo.frequency.value / serial_cpi.total,
                serial_cpi.mpki,
                config.spec.memory,
            )
            seconds = serial_instructions / serial_rate
            serial_smt_share = (
                1.0 if plan is not None
                and plan.placement is ServicePlacement.SMT_SIBLING else 0.0
            )
            skeletons.append(
                self._make_skeleton(
                    "serial", seconds, serial_busy, config, serial_turbo,
                    throughput=serial_rate,
                    smt_share=serial_smt_share,
                )
            )
            total_app_cycles += serial_instructions * serial_cpi.total
            total_misses += serial_instructions * serial_cpi.mpki / 1000.0

        # --- parallel phase across the placed threads.
        if parallel_fraction > 0.0:
            parallel_instructions = instructions * parallel_fraction
            busy = placement.cores_used + self._service_cores(plan, config, placement)
            busy = min(busy, config.active_cores)
            turbo = resolve_turbo(config, max(placement.cores_used, 1))
            par_cpi = self._phase_cpi(
                character, config, toolchain, turbo.frequency,
                mpki_factor, sharing=placement.threads,
                threads=placement.threads, friction=friction,
            )
            throughput = capped_throughput(
                aggregate_throughput(
                    placement, par_cpi, config, turbo.frequency.value
                ),
                par_cpi.mpki,
                config.spec.memory,
            )
            platform_sync = character.sync_overhead + config.spec.smp_overhead
            seconds = (
                parallel_instructions / throughput
            ) * sync_inflation(platform_sync, placement.threads)
            skeletons.append(
                self._make_skeleton(
                    "parallel", seconds, busy, config, turbo,
                    throughput=throughput,
                    smt_share=placement.smt_pairs / placement.cores_used,
                )
            )
            total_app_cycles += parallel_instructions * par_cpi.total
            total_misses += parallel_instructions * par_cpi.mpki / 1000.0

        events = self._events(
            benchmark, instructions, serial_service + overlapped_service,
            total_app_cycles, total_misses, mpki_factor,
        )
        return ExecutionPlan(
            benchmark=benchmark,
            config=config,
            phases=tuple(skeletons),
            base_seconds=sum(s.base_seconds for s in skeletons),
            events=events,
            jvm=plan,
            activity_base=character.activity,
            vendor_activity_factor=vendor_activity,
            vendor_performance_factor=vendor_performance,
        )

    def _run_plan(
        self, plan: ExecutionPlan, time_noise: float, activity_noise: float
    ) -> Execution:
        """Apply one invocation's noise scalars to a cached plan.

        The arithmetic replays the unplanned path's exact operation order
        (activity times noise, then the vendor factor; base seconds times
        the vendor-adjusted time noise), so planned and unplanned runs are
        bit-identical."""
        activity = plan.activity_base * activity_noise
        if plan.vendor_activity_factor is not None:
            activity *= plan.vendor_activity_factor
        if plan.vendor_performance_factor is not None:
            time_noise /= plan.vendor_performance_factor
        config = plan.config
        phases: list[Phase] = []
        for skeleton in plan.phases:
            if skeleton.name == "serial":
                _SERIAL_PHASES.inc()
            else:
                _PARALLEL_PHASES.inc()
            power = package_power(
                config,
                busy_cores=min(skeleton.busy_cores, config.active_cores),
                core_utilisation=skeleton.utilisation,
                activity=activity * skeleton.smt_factor,
                turbo=skeleton.turbo,
            )
            phases.append(
                Phase(
                    name=skeleton.name,
                    seconds=skeleton.base_seconds * time_noise,
                    busy_cores=skeleton.busy_cores,
                    utilisation=skeleton.utilisation,
                    frequency=skeleton.turbo.frequency,
                    turbo=skeleton.turbo,
                    power=power.total,
                )
            )
        return Execution(
            benchmark=plan.benchmark,
            config=config,
            seconds=Seconds(plan.base_seconds * time_noise),
            phases=tuple(phases),
            events=plan.events,
            jvm=plan.jvm,
        )

    def _phase_cpi(
        self,
        character,
        config: Configuration,
        toolchain: Toolchain,
        frequency: Hertz,
        mpki_factor: float,
        sharing: int,
        threads: int,
        friction: float,
    ) -> CpiBreakdown:
        """Thread CPI for one phase (bandwidth saturation is applied to
        the phase's aggregate throughput, not per-thread CPI, so that
        adding threads or clock is always monotone)."""
        breakdown = thread_cpi(
            character, config, toolchain, frequency,
            mpki_factor=mpki_factor, llc_sharing_contexts=sharing,
        )
        if friction > 0.0:
            # Sibling service threads contend for the whole pipeline
            # (front-end, caches, TLBs), so the tax applies to every CPI
            # component, not only issue.
            breakdown = CpiBreakdown(
                base=breakdown.base * (1.0 + friction),
                dependency=breakdown.dependency * (1.0 + friction),
                branch=breakdown.branch * (1.0 + friction),
                memory=breakdown.memory * (1.0 + friction),
                mpki=breakdown.mpki,
            )
        return breakdown

    def _service_cores(
        self,
        plan: Optional[JvmPlan],
        config: Configuration,
        placement: Placement,
    ) -> float:
        """Fractional cores kept busy by overlapped runtime services."""
        if plan is None or plan.overlapped_service <= 0.0:
            return 0.0
        if plan.placement is ServicePlacement.SMT_SIBLING:
            return 0.0  # shares an already-busy core
        spare = config.active_cores - placement.cores_used
        if spare <= 0:
            return 0.0
        # A background collector/JIT thread keeps its core partially awake
        # beyond its retired work (polling, safepoint spins), so occupancy
        # carries a floor on top of the work fraction.
        occupancy = 0.30 + 12.0 * plan.overlapped_service
        return min(occupancy, float(spare))

    def _make_skeleton(
        self,
        name: str,
        seconds: float,
        busy_cores: float,
        config: Configuration,
        turbo: TurboState,
        throughput: float,
        smt_share: float = 0.0,
    ) -> _PhaseSkeleton:
        peak_ips = busy_cores * turbo.frequency.value * config.spec.family.issue_width
        utilisation = min(throughput / peak_ips, 1.0) if peak_ips > 0 else 0.0
        smt_factor = 1.0 + config.spec.family.smt_power_overhead * smt_share
        return _PhaseSkeleton(
            name=name,
            base_seconds=seconds,
            busy_cores=busy_cores,
            utilisation=utilisation,
            turbo=turbo,
            smt_factor=smt_factor,
        )

    def _events(
        self,
        benchmark: Benchmark,
        instructions: float,
        service_fraction: float,
        app_cycles: float,
        llc_misses: float,
        mpki_factor: float,
    ) -> EventCounts:
        total_instructions = instructions * (1.0 + service_fraction)
        dtlb_factor = 1.0 + (mpki_factor - 1.0) * _DTLB_DISPLACEMENT_GAIN
        dtlb = benchmark.character.dtlb_mpki * dtlb_factor * instructions / 1000.0
        branch = benchmark.character.branch_mpki * instructions / 1000.0
        return EventCounts(
            cycles=app_cycles * (1.0 + service_fraction),
            instructions=total_instructions,
            llc_misses=llc_misses,
            dtlb_misses=dtlb,
            branch_misses=branch,
        )


_DEFAULT_ENGINE: Optional[ExecutionEngine] = None


def default_engine() -> ExecutionEngine:
    """A process-wide engine with the paper's settings (cached because
    instruction calibration is shared across users)."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = ExecutionEngine()
    return _DEFAULT_ENGINE


def all_benchmarks() -> tuple[Benchmark, ...]:
    """Convenience re-export of the 61-benchmark catalog."""
    return BENCHMARKS
