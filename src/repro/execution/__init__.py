"""Execution substrate: the simulated testbed.

:class:`~repro.execution.engine.ExecutionEngine` turns (benchmark,
configuration) pairs into ground-truth executions; the measurement
substrate observes them through the sensor pipeline.
"""

from repro.execution.cpi import CpiBreakdown, thread_cpi
from repro.execution.engine import Execution, ExecutionEngine, Phase, default_engine
from repro.execution.scaling import Placement, place_threads
from repro.execution.trace import PowerTrace, trace_of

__all__ = [
    "CpiBreakdown",
    "Execution",
    "ExecutionEngine",
    "Phase",
    "Placement",
    "PowerTrace",
    "default_engine",
    "place_threads",
    "thread_cpi",
    "trace_of",
]
