"""Compiled sweep kernels: a (benchmark, configuration) pair as one
numpy array program.

The scalar measurement path walks a pair's invocation loop one run at a
time: plan-cache lookup, two lognormal noise draws, a per-phase power
replay, a 50 Hz trace sampling, and a sensor/calibration pass per
invocation.  Every one of those steps is a pure function of the pair and
its per-site seeds, so this module *compiles* the whole loop once — into
per-phase factor vectors plus per-invocation seed tables — and replays it
as a handful of vectorised array operations:

* the deterministic skeleton comes from the engine's execution-plan cache
  (:meth:`~repro.execution.engine.ExecutionEngine.execution_plan`), with
  the package-power model folded into per-phase ``const + coeff *
  switching`` factors precomputed in the scalar model's exact operation
  order;
* the per-invocation noise scalars and per-sample noise streams are
  *seeded identically* to the scalar path — the kernel stores the derived
  integer seeds (``seed_from_key`` over the same ``run_key`` sites) and
  materialises the draws lazily on first replay;
* the metering pipeline runs as one array pass through the shared
  transfers (:meth:`ProcessorSupply.volts_from_wander`,
  :meth:`HallEffectSensor.transfer_codes`) and an exact per-segment
  integer reduction (:meth:`PowerMeter.measure_kernel`).

Because every elementwise float64 ufunc agrees bit-for-bit with the
equivalent Python-scalar arithmetic on the same operands in the same
order, and every reduction here is an exact integer sum, a compiled
kernel's ``(seconds, watts)`` outputs are **byte-identical** to the
scalar path's — goldens, checkpoint bytes, and campaign health do not
move (docs/performance.md, "Vectorized path").

Kernels live in the engine's opaque kernel cache and ship to pool/fleet
workers through ``WorkerSetup.kernels`` alongside the calibration
snapshot; their materialised draws are dropped on pickle
(:meth:`PairKernel.__getstate__`) and rebuilt from seeds on first use.
Pairs the compiler cannot express (unexpected phase shapes) and pairs a
:class:`~repro.faults.plan.FaultPlan` has armed fall back to the scalar
path per pair — counted in ``repro_kernel_scalar_fallbacks_total``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.seeding import run_key, seed_from_key
from repro.execution.engine import ExecutionEngine
from repro.execution.trace import sample_counts
from repro.hardware.config import Configuration
from repro.hardware.power import frequency_scale, voltage_scale
from repro.hardware.turbo import power_multiplier
from repro.measurement.meter import PowerMeter
from repro.obs.metrics import default_registry
from repro.runtime.methodology import MeasurementProtocol, STEADY_STATE_ITERATION
from repro.workloads.benchmark import Benchmark

_REGISTRY = default_registry()
_COMPILES = _REGISTRY.counter(
    "repro_kernel_compiles_total",
    "Sweep kernels compiled from execution plans",
)
_CACHE_HITS = _REGISTRY.counter(
    "repro_kernel_cache_hits_total",
    "Pair measurements answered by an already-compiled kernel",
)
_FALLBACKS = _REGISTRY.counter(
    "repro_kernel_scalar_fallbacks_total",
    "Pairs measured on the scalar path instead of a kernel, by reason",
)
_CACHE_BYTES = _REGISTRY.gauge(
    "repro_kernel_cache_bytes",
    "Serialized footprint of kernels compiled into this process's cache",
)


def note_fallback(reason: str) -> None:
    """Count one pair that took the scalar path (``reason`` is ``faults``
    for fault-armed pairs, ``shape``/``activity`` for plans the compiler
    declines, ``disabled`` when vectorisation is off)."""
    _FALLBACKS.labels(reason=reason).inc()


def kernel_stats() -> dict:
    """The kernel cache's counters as a plain dict — the shape
    ``/healthz`` embeds and ``repro top`` renders."""
    fallbacks = {
        child.label_values.get("reason", "unknown"): int(child.value)
        for child in _FALLBACKS.children()
    }
    return {
        "compiles": int(_COMPILES.value),
        "cache_hits": int(_CACHE_HITS.value),
        "fallbacks": fallbacks,
        "cache_bytes": int(_CACHE_BYTES.value),
    }


@dataclass
class _PairDraws:
    """One pair's fully materialised replay inputs (noise applied).

    Everything here is a deterministic function of the kernel's stored
    seeds, so it is rebuilt on demand and never serialised."""

    durations: np.ndarray  # (n,) per-invocation wall seconds
    counts: np.ndarray  # (n,) int64 samples per invocation
    offsets: np.ndarray  # (n,) int64 segment starts into the flat arrays
    true_watts: np.ndarray  # (total,) ground-truth power per sample
    peaks: np.ndarray  # (n,) per-invocation true peak power
    wander: np.ndarray  # (total,) supply-rail wander draws
    sensor_noise: np.ndarray  # (total,) sensor noise draws (volts)


@dataclass
class PairKernel:
    """One (benchmark, configuration, invocations) loop, compiled.

    The stored state is small and picklable: per-phase factor vectors
    (precomputed Python-scalar arithmetic in the scalar model's exact
    operation order) plus per-invocation integer seed tables.  The bulky
    per-sample draws (:class:`_PairDraws`) are materialised lazily on
    first replay and dropped on pickle, so snapshots shipped to pool
    workers stay compact and each worker rebuilds draws from seeds —
    deterministically, hence identically.
    """

    benchmark_name: str
    config_key: str
    invocations: int
    # --- deterministic skeleton (per-phase factor vectors, shape (P,))
    base_seconds: float
    phase_seconds: np.ndarray  # noise-free seconds of each phase
    phase_const: np.ndarray  # uncore + idle watts
    phase_coeff: np.ndarray  # (core_active_watts * busy) * dynamic_scale
    phase_switch: np.ndarray  # 0.35 + 0.65 * utilisation
    phase_smt: np.ndarray  # SMT power-overhead factor
    phase_turbo: np.ndarray  # turbo power multiplier
    serial_phases: int
    parallel_phases: int
    activity_base: float
    vendor_activity_factor: Optional[float]
    vendor_performance_factor: Optional[float]
    # --- per-invocation noise parameters and seed tables
    sigma_time: float
    sigma_power: float
    time_seeds: tuple[int, ...]
    power_seeds: tuple[int, ...]
    supply_seeds: tuple[int, ...]
    sensor_seeds: tuple[int, ...]
    wander_sigma: float
    sensor_sigma: float
    rate_hz: float
    max_samples: Optional[int]
    _draws: Optional[_PairDraws] = field(default=None, repr=False, compare=False)

    def __getstate__(self) -> dict:
        """Serialise compactly: the materialised draws are pure functions
        of the seed tables, so they never travel — a worker that adopts
        this kernel re-derives byte-identical draws on first replay."""
        state = self.__dict__.copy()
        state["_draws"] = None
        return state

    @property
    def nbytes(self) -> int:
        """Approximate serialised footprint (factor arrays + seed
        tables), for the ``repro_kernel_cache_bytes`` gauge."""
        arrays = (
            self.phase_seconds, self.phase_const, self.phase_coeff,
            self.phase_switch, self.phase_smt, self.phase_turbo,
        )
        return sum(a.nbytes for a in arrays) + 8 * 4 * self.invocations

    # -- replay --------------------------------------------------------------

    def draws(self) -> _PairDraws:
        """The materialised replay inputs (built once, then cached)."""
        if self._draws is None:
            self._draws = self._materialise()
        return self._draws

    def _materialise(self) -> _PairDraws:
        """Re-derive every noise draw the scalar path would have made.

        Per-invocation scalars come from one-value draws on generators
        seeded exactly as :meth:`ExecutionEngine._noise` seeds them (the
        stored integers *are* ``seed_from_key`` of the same run keys);
        per-sample streams replay :meth:`ProcessorSupply.voltage_samples`
        and :meth:`HallEffectSensor.read_codes` draw-for-draw.  All the
        derived arrays are elementwise float64 arithmetic on the same
        operands in the same order as the scalar path, so every element
        is bit-identical to its scalar twin.
        """
        n = self.invocations
        if self.sigma_time == 0.0:
            tn = np.ones(n)
        else:
            tn = np.array([
                np.random.default_rng(seed).lognormal(mean=0.0, sigma=self.sigma_time)
                for seed in self.time_seeds
            ])
        if self.sigma_power == 0.0:
            pn = np.ones(n)
        else:
            pn = np.array([
                np.random.default_rng(seed).lognormal(mean=0.0, sigma=self.sigma_power)
                for seed in self.power_seeds
            ])
        if self.vendor_performance_factor is not None:
            tn = tn / self.vendor_performance_factor
        durations = self.base_seconds * tn
        counts = sample_counts(durations, self.rate_hz, self.max_samples)
        offsets = np.zeros(n, dtype=np.int64)
        np.cumsum(counts[:-1], out=offsets[1:])
        total = int(counts.sum())
        inv_index = np.repeat(np.arange(n), counts)

        # Per-(invocation, phase) power, replaying package_power's exact
        # operation order: ((activity * smt) * switch-blend) scaled by the
        # precomputed coefficient, plus the constant floor, times turbo.
        act = self.activity_base * pn
        if self.vendor_activity_factor is not None:
            act = act * self.vendor_activity_factor
        act_phase = act[:, None] * self.phase_smt[None, :]
        switching = act_phase * self.phase_switch[None, :]
        active = self.phase_coeff[None, :] * switching
        power = (self.phase_const[None, :] + active) * self.phase_turbo[None, :]

        if power.shape[1] == 1:
            # Constant-power runs never need sample times at all.
            true_watts = np.repeat(power[:, 0], counts)
        else:
            # Two phases, serial first: the piecewise trace is a single
            # threshold on the serial phase's noisy end time.  The scalar
            # path clips each time to the run's end and takes the last
            # level for anything past the first boundary — exactly this
            # ``>=`` (a clipped time can only move *down*, never across
            # the first boundary in the other direction).
            first_ends = self.phase_seconds[0] * tn
            pos = np.arange(total, dtype=np.int64) - offsets[inv_index]
            times = (pos + 0.5) * (durations / counts)[inv_index]
            true_watts = np.where(
                times >= first_ends[inv_index],
                power[:, 1][inv_index],
                power[:, 0][inv_index],
            )
        peaks = power.max(axis=1)

        # Per-sample noise streams, drawn per site salt exactly as the
        # supply and sensor draw them (one fresh generator per salt, one
        # normal vector per run) — segment i of the flat arrays holds
        # precisely what invocation i's scalar measurement would draw.
        wander = np.empty(total)
        sensor_noise = np.empty(total)
        start = 0
        for i in range(n):
            count = int(counts[i])
            wander[start:start + count] = np.random.default_rng(
                self.supply_seeds[i]
            ).normal(0.0, self.wander_sigma, size=count)
            sensor_noise[start:start + count] = np.random.default_rng(
                self.sensor_seeds[i]
            ).normal(0.0, self.sensor_sigma, size=count)
            start += count
        return _PairDraws(
            durations=durations,
            counts=counts,
            offsets=offsets,
            true_watts=true_watts,
            peaks=peaks,
            wander=wander,
            sensor_noise=sensor_noise,
        )


def kernel_key(
    benchmark: Benchmark,
    config: Configuration,
    protocol: MeasurementProtocol,
    invocations: int,
) -> tuple:
    """The engine kernel-cache key for one pair's compiled loop.

    Mirrors the execution-plan cache's iteration normalisation so two
    protocols that resolve to the same effective iteration share one
    kernel."""
    effective_iteration = (
        (protocol.iteration or STEADY_STATE_ITERATION) if benchmark.managed else None
    )
    return (benchmark, config.key, effective_iteration, invocations)


def compile_pair(
    engine: ExecutionEngine,
    meter: PowerMeter,
    benchmark: Benchmark,
    config: Configuration,
    protocol: MeasurementProtocol,
    invocations: int,
) -> Optional[PairKernel]:
    """Compile (or fetch) the kernel for one pair's invocation loop.

    Returns ``None`` — after counting the fallback — for plans the
    compiler does not express: anything but the engine's one- or
    two-phase (serial, parallel) shape, or a non-positive activity base
    (which the scalar model rejects too).  The factor precomputation
    below is deliberately *Python-scalar* arithmetic copied operation for
    operation from :func:`repro.hardware.power.package_power`, so the
    folded constants are the exact floats the scalar path computes."""
    key = kernel_key(benchmark, config, protocol, invocations)
    cached = engine.cached_kernel(key)
    if cached is not None:
        _CACHE_HITS.inc()
        return cached  # type: ignore[return-value]

    plan = engine.execution_plan(benchmark, config, protocol.iteration)
    phases = plan.phases
    if len(phases) not in (1, 2) or (
        len(phases) == 2 and phases[0].name != "serial"
    ):
        note_fallback("shape")
        return None
    if plan.activity_base <= 0.0:
        note_fallback("activity")
        return None

    character = config.spec.power
    dynamic_scale = voltage_scale(config) * frequency_scale(config)
    uncore_dyn = character.uncore_dynamic_fraction
    uncore = character.uncore_watts * (1.0 - uncore_dyn + uncore_dyn * dynamic_scale)
    idle = character.core_idle_watts * config.active_cores * dynamic_scale
    const = uncore + idle

    phase_seconds: list[float] = []
    phase_const: list[float] = []
    phase_coeff: list[float] = []
    phase_switch: list[float] = []
    phase_smt: list[float] = []
    phase_turbo: list[float] = []
    serial = 0
    for skeleton in phases:
        if skeleton.name == "serial":
            serial += 1
        busy = min(skeleton.busy_cores, config.active_cores)
        phase_seconds.append(skeleton.base_seconds)
        phase_const.append(const)
        phase_coeff.append(character.core_active_watts * busy * dynamic_scale)
        phase_switch.append(0.35 + 0.65 * skeleton.utilisation)
        phase_smt.append(skeleton.smt_factor)
        phase_turbo.append(power_multiplier(config, skeleton.turbo))

    root = engine.seed_root
    salts = [f"{config.key}/{benchmark.name}/{i}" for i in range(invocations)]
    supply_key = meter.supply.machine_key
    sensor_key = meter.sensor.sensor_key
    logger = meter.logger
    kernel = PairKernel(
        benchmark_name=benchmark.name,
        config_key=config.key,
        invocations=invocations,
        base_seconds=plan.base_seconds,
        phase_seconds=np.array(phase_seconds),
        phase_const=np.array(phase_const),
        phase_coeff=np.array(phase_coeff),
        phase_switch=np.array(phase_switch),
        phase_smt=np.array(phase_smt),
        phase_turbo=np.array(phase_turbo),
        serial_phases=serial,
        parallel_phases=len(phases) - serial,
        activity_base=plan.activity_base,
        vendor_activity_factor=plan.vendor_activity_factor,
        vendor_performance_factor=plan.vendor_performance_factor,
        sigma_time=engine.noise_sigma(benchmark, channel="time"),
        sigma_power=engine.noise_sigma(benchmark, channel="power", scale=1.6),
        time_seeds=tuple(
            seed_from_key(run_key(root, "time", benchmark.name, config.key, i))
            for i in range(invocations)
        ),
        power_seeds=tuple(
            seed_from_key(run_key(root, "power", benchmark.name, config.key, i))
            for i in range(invocations)
        ),
        supply_seeds=tuple(
            seed_from_key(run_key("supply", supply_key, salt)) for salt in salts
        ),
        sensor_seeds=tuple(
            seed_from_key(run_key("sensor-read", sensor_key, salt)) for salt in salts
        ),
        wander_sigma=meter.supply.wander_sigma,
        sensor_sigma=meter.sensor.noise_sigma_volts,
        rate_hz=logger.rate_hz,
        max_samples=logger.max_samples,
    )
    engine.store_kernel(key, kernel)
    _COMPILES.inc()
    _CACHE_BYTES.inc(kernel.nbytes)
    return kernel


def run_pair(
    kernel: PairKernel, engine: ExecutionEngine, meter: PowerMeter
) -> tuple[list[float], list[float]]:
    """Replay one compiled pair: ``(seconds, watts)`` per invocation,
    byte-identical to the scalar loop's, plus the same telemetry totals
    (bulk execution/phase counters, meter sample/clamp counts)."""
    draws = kernel.draws()
    watts = meter.measure_kernel(
        draws.true_watts,
        draws.counts,
        draws.offsets,
        draws.peaks,
        draws.wander,
        draws.sensor_noise,
    )
    engine.record_plan_replays(
        kernel.invocations,
        kernel.serial_phases * kernel.invocations,
        kernel.parallel_phases * kernel.invocations,
    )
    return draws.durations.tolist(), watts


def measure_pair(
    engine: ExecutionEngine,
    meter: PowerMeter,
    benchmark: Benchmark,
    config: Configuration,
    protocol: MeasurementProtocol,
    invocations: int,
) -> Optional[tuple[list[float], list[float]]]:
    """The study's entry point: compile-or-fetch, then replay.

    ``None`` means the pair needs the scalar path (the fallback has
    already been counted)."""
    kernel = compile_pair(engine, meter, benchmark, config, protocol, invocations)
    if kernel is None:
        return None
    return run_pair(kernel, engine, meter)
