"""Benchmark identity: Table 1's rows.

Each benchmark belongs to one of six source suites and to one of the four
equally-weighted workload groups the paper defines in §2.1:
Native/Java x Scalable/Non-scalable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.workloads.characteristics import JvmBehavior, WorkloadCharacter


class Language(enum.Enum):
    """Implementation-language class (the paper's native/managed axis)."""

    NATIVE = "native"  # C, C++, Fortran, compiled ahead of time
    JAVA = "java"  # managed, JIT compiled, garbage collected


class Suite(enum.Enum):
    """Source suite, with the paper's Table 1 abbreviation as value."""

    SPEC_CINT2006 = "SI"
    SPEC_CFP2006 = "SF"
    PARSEC = "PA"
    SPECJVM = "SJ"
    DACAPO_06 = "D6"
    DACAPO_9 = "D9"
    PJBB2005 = "JB"


class Group(enum.Enum):
    """The four equally-weighted workload groups (§2.1)."""

    NATIVE_NONSCALABLE = "Native Non-scalable"
    NATIVE_SCALABLE = "Native Scalable"
    JAVA_NONSCALABLE = "Java Non-scalable"
    JAVA_SCALABLE = "Java Scalable"

    @property
    def language(self) -> Language:
        if self in (Group.NATIVE_NONSCALABLE, Group.NATIVE_SCALABLE):
            return Language.NATIVE
        return Language.JAVA

    @property
    def scalable(self) -> bool:
        return self in (Group.NATIVE_SCALABLE, Group.JAVA_SCALABLE)


@dataclass(frozen=True, slots=True)
class Benchmark:
    """One Table 1 row: identity plus behavioural signature."""

    name: str
    suite: Suite
    group: Group
    description: str
    #: Reference running time in seconds (Table 1's "Time" column): the
    #: average of the benchmark's run time on the four reference machines.
    reference_seconds: float
    character: WorkloadCharacter
    jvm: Optional[JvmBehavior] = None

    def __post_init__(self) -> None:
        if self.reference_seconds <= 0:
            raise ValueError(f"{self.name}: reference time must be positive")
        if self.group.language is Language.JAVA and self.jvm is None:
            raise ValueError(f"{self.name}: Java benchmarks need a JvmBehavior")
        if self.group.language is Language.NATIVE and self.jvm is not None:
            raise ValueError(f"{self.name}: native benchmarks have no JVM")
        if self.group.scalable and self.character.software_threads == 1:
            raise ValueError(f"{self.name}: scalable benchmark is single-threaded")

    @property
    def language(self) -> Language:
        return self.group.language

    @property
    def managed(self) -> bool:
        return self.language is Language.JAVA

    @property
    def multithreaded(self) -> bool:
        return self.character.software_threads != 1
