"""The assembled 61-benchmark catalog (Table 1).

27 Native Non-scalable (SPEC CPU2006) + 11 Native Scalable (PARSEC) +
18 Java Non-scalable (SPECjvm, DaCapo 06/9.12, pjbb2005) + 5 Java Scalable
(DaCapo 9.12) = 61 benchmarks, grouped and weighted per §2.1/§2.6.
"""

from __future__ import annotations

from typing import Iterable

from repro.workloads.benchmark import Benchmark, Group, Suite
from repro.workloads.suites import dacapo, parsec, pjbb2005, spec_cpu2006, specjvm

#: Every benchmark in the study, Table 1 order.
BENCHMARKS: tuple[Benchmark, ...] = (
    spec_cpu2006.BENCHMARKS
    + parsec.BENCHMARKS
    + specjvm.BENCHMARKS
    + dacapo.DACAPO_06
    + dacapo.DACAPO_9_NONSCALABLE
    + pjbb2005.BENCHMARKS
    + dacapo.DACAPO_9_SCALABLE
)

BENCHMARKS_BY_NAME = {b.name: b for b in BENCHMARKS}

if len(BENCHMARKS_BY_NAME) != len(BENCHMARKS):  # pragma: no cover - guard
    raise AssertionError("benchmark names must be unique")


def benchmark(name: str) -> Benchmark:
    """Look up a benchmark by name."""
    try:
        return BENCHMARKS_BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown benchmark {name!r}") from None


def by_group(group: Group) -> tuple[Benchmark, ...]:
    """All benchmarks in one of the four workload groups, Table 1 order."""
    return tuple(b for b in BENCHMARKS if b.group is group)


def by_suite(suite: Suite) -> tuple[Benchmark, ...]:
    """All benchmarks drawn from one source suite."""
    return tuple(b for b in BENCHMARKS if b.suite is suite)


def groups() -> tuple[Group, ...]:
    """The four groups in the paper's canonical order."""
    return (
        Group.NATIVE_NONSCALABLE,
        Group.NATIVE_SCALABLE,
        Group.JAVA_NONSCALABLE,
        Group.JAVA_SCALABLE,
    )


def group_sizes() -> dict[Group, int]:
    """Benchmark count per group (27 / 11 / 18 / 5)."""
    return {group: len(by_group(group)) for group in groups()}


def single_threaded_java() -> tuple[Benchmark, ...]:
    """The single-threaded Java subset used in Fig. 6."""
    return tuple(
        b for b in by_group(Group.JAVA_NONSCALABLE) if not b.multithreaded
    )


def multithreaded_java() -> tuple[Benchmark, ...]:
    """The multithreaded Java subset whose scalability Fig. 1 plots."""
    return tuple(
        b
        for b in BENCHMARKS
        if b.managed and b.multithreaded
    )


def names(benchmarks: Iterable[Benchmark]) -> tuple[str, ...]:
    """Convenience: the names of a benchmark collection."""
    return tuple(b.name for b in benchmarks)
