"""Behavioural signatures of workloads.

The execution model reduces a benchmark to the handful of rates that
determine time and power on a given processor configuration:

* exploitable instruction-level parallelism (ILP),
* branch and LLC miss rates (the latter quoted at a 4 MB reference LLC),
* cache-relevant working-set footprint,
* intrinsic switching activity (power hunger),
* software parallelism: thread count, Amdahl parallel fraction, and
  synchronisation overhead.

Signature values are set from the paper's own reported data points where
available (Table 1 reference times, Fig. 1/6 scalability, §2.5 power
extremes) and from the public characterisation literature for the rest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True, slots=True)
class WorkloadCharacter:
    """Architecture-independent behavioural signature of one benchmark."""

    #: Exploitable instruction-level parallelism (sustainable superscalar
    #: issue for this instruction stream on an ideal machine).
    ilp: float
    #: Branch mispredictions per kilo-instruction.
    branch_mpki: float
    #: LLC misses per kilo-instruction at the 4 MB reference LLC.
    memory_mpki: float
    #: Cache-relevant working set in megabytes.
    footprint_mb: float
    #: Intrinsic switching activity, ~1.0 nominal; FP-dense code higher,
    #: pointer chasing lower.  Drives per-benchmark power diversity (§2.7).
    activity: float = 1.0
    #: Amdahl parallel fraction; 0.0 for a single-threaded program.
    parallel_fraction: float = 0.0
    #: Per-extra-context synchronisation overhead (fraction of run time).
    sync_overhead: float = 0.004
    #: Software threads the program offers.  ``None`` means "as many as
    #: there are hardware contexts" (the scalable suites' behaviour).
    software_threads: Optional[int] = 1
    #: DTLB misses per kilo-instruction (correlates with memory behaviour).
    dtlb_mpki: float = 0.0

    def __post_init__(self) -> None:
        if self.ilp < 1.0:
            raise ValueError("ILP below 1.0 is not meaningful")
        if min(self.branch_mpki, self.memory_mpki, self.footprint_mb) < 0:
            raise ValueError("rates and footprint cannot be negative")
        if self.activity <= 0:
            raise ValueError("activity must be positive")
        if not 0.0 <= self.parallel_fraction < 1.0:
            raise ValueError("parallel fraction must be in [0, 1)")
        if self.sync_overhead < 0:
            raise ValueError("sync overhead cannot be negative")
        if self.software_threads is not None and self.software_threads < 1:
            raise ValueError("software thread count must be >= 1")
        if self.dtlb_mpki == 0.0:
            # DTLB pressure tracks LLC pressure when not stated explicitly.
            object.__setattr__(self, "dtlb_mpki", 0.8 * self.memory_mpki)

    @property
    def single_threaded(self) -> bool:
        return self.software_threads == 1

    def threads_on(self, hardware_contexts: int) -> int:
        """Software threads the program runs with ``hardware_contexts``."""
        if hardware_contexts < 1:
            raise ValueError("hardware context count must be >= 1")
        if self.software_threads is None:
            return hardware_contexts
        return self.software_threads


@dataclass(frozen=True, slots=True)
class JvmBehavior:
    """Managed-runtime signature of a Java benchmark (§2.2, §3.1).

    ``service_fraction`` is the JVM's own work (GC, JIT compilation,
    profiling) as a fraction of application work at steady state.
    ``displacement_mpki_factor`` inflates the application's memory miss
    rates when runtime services share its hardware context — the mechanism
    behind Workload Finding 1 (antlr spends up to 50 % of its time in the
    JVM; db's DTLB misses fall 2.5x given a second core).
    """

    service_fraction: float
    displacement_mpki_factor: float = 1.15
    #: Run-to-run coefficient of variation from adaptive JIT + GC timing.
    variability: float = 0.03
    #: Pressure the JIT's code working set puts on shared front-end
    #: resources when services run on an SMT sibling (hurts NetBurst's
    #: trace cache; Workload Finding 2).
    code_pressure: float = 0.75
    #: Parallel GC threads the collector will use given spare contexts.
    gc_threads: int = 2

    def __post_init__(self) -> None:
        if not 0.0 <= self.service_fraction < 1.0:
            raise ValueError("service fraction must be in [0, 1)")
        if self.displacement_mpki_factor < 1.0:
            raise ValueError("displacement factor cannot shrink miss rates")
        if self.variability < 0:
            raise ValueError("variability cannot be negative")
        if self.code_pressure < 0:
            raise ValueError("code pressure cannot be negative")
        if self.gc_threads < 1:
            raise ValueError("GC thread count must be >= 1")
