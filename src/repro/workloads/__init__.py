"""Workload substrate: the 61 benchmarks of Table 1 with behavioural
signatures.

Public surface: :mod:`repro.workloads.catalog` plus the
:class:`~repro.workloads.benchmark.Benchmark` family of types.
"""

from repro.workloads.benchmark import Benchmark, Group, Language, Suite
from repro.workloads.catalog import (
    BENCHMARKS,
    BENCHMARKS_BY_NAME,
    benchmark,
    by_group,
    by_suite,
    group_sizes,
    groups,
    multithreaded_java,
    single_threaded_java,
)
from repro.workloads.characteristics import JvmBehavior, WorkloadCharacter

__all__ = [
    "BENCHMARKS",
    "BENCHMARKS_BY_NAME",
    "Benchmark",
    "Group",
    "JvmBehavior",
    "Language",
    "Suite",
    "WorkloadCharacter",
    "benchmark",
    "by_group",
    "by_suite",
    "group_sizes",
    "groups",
    "multithreaded_java",
    "single_threaded_java",
]
