"""PARSEC: the 11 Native Scalable benchmarks (§2.1).

Multithreaded C/C++ POSIX-threads codes, compiled with gcc -O3 in the
paper.  freqmine (no pthreads) and dedup (working set exceeds the Pentium
4 machine's memory) are excluded, exactly as in the paper.  Bienia et al.
show these scale to 8 hardware contexts; the paper measures an average 3.8x
speedup on the i7's eight contexts.

fluidanimate carries the study's highest measured power (89 W on the
stock i7, §2.5); canneal and streamcluster are the memory-bound members.
"""

from __future__ import annotations

from repro.workloads.benchmark import Benchmark, Group, Suite
from repro.workloads.characteristics import WorkloadCharacter


def _parsec(
    name: str,
    seconds: float,
    description: str,
    ilp: float,
    branch: float,
    memory: float,
    footprint: float,
    activity: float,
    parallel: float,
    sync: float = 0.004,
) -> Benchmark:
    return Benchmark(
        name=name,
        suite=Suite.PARSEC,
        group=Group.NATIVE_SCALABLE,
        description=description,
        reference_seconds=seconds,
        character=WorkloadCharacter(
            ilp=ilp,
            branch_mpki=branch,
            memory_mpki=memory,
            footprint_mb=footprint,
            activity=activity,
            parallel_fraction=parallel,
            sync_overhead=sync,
            software_threads=None,  # spawns one worker per hardware context
        ),
    )


#: All 11 Native Scalable benchmarks, Table 1 order.
BENCHMARKS: tuple[Benchmark, ...] = (
    _parsec("blackscholes", 482, "Prices options with Black-Scholes PDE",
            2.3, 0.8, 0.3, 2, 1.12, 0.955),
    _parsec("bodytrack", 471, "Tracks a markerless human body",
            2.0, 2.0, 1.0, 8, 1.05, 0.935),
    _parsec("canneal", 301, "Cache-aware simulated annealing for chip routing",
            1.3, 2.8, 14.0, 60, 0.72, 0.915, sync=0.008),
    _parsec("facesim", 1230, "Simulates human face motion",
            2.1, 1.0, 4.0, 40, 1.05, 0.945),
    _parsec("ferret", 738, "Image search",
            1.9, 2.2, 3.0, 20, 1.00, 0.955),
    _parsec("fluidanimate", 812, "SPH fluid dynamics for realtime animation",
            2.2, 0.8, 2.5, 30, 1.38, 0.955),
    _parsec("raytrace", 1970, "Physical simulation for visualisation",
            2.1, 1.5, 1.5, 16, 1.10, 0.935),
    _parsec("streamcluster", 629, "Online clustering of a data-point stream",
            1.7, 0.6, 10.0, 48, 0.88, 0.945, sync=0.007),
    _parsec("swaptions", 612, "Prices swaptions with Heath-Jarrow-Morton",
            2.4, 0.9, 0.2, 1, 1.20, 0.965),
    _parsec("vips", 297, "Applies transformations to an image",
            2.0, 1.6, 2.0, 16, 1.06, 0.945),
    _parsec("x264", 265, "MPEG-4 AVC / H.264 video encoder",
            2.3, 1.8, 1.5, 12, 1.22, 0.925),
)
