"""DaCapo 06-10-MR2 and DaCapo 9.12: the Java workloads' core (§2.1).

DaCapo benchmarks are diverse, forward-looking, non-trivial codes from
active open-source projects.  tradesoap is excluded (socket timeouts on the
slowest machines), exactly as in the paper.

The split between Java Non-scalable and Java Scalable follows the paper's
measured Fig. 1: sunflow, xalan, tomcat, lusearch, and eclipse scale
comparably to PARSEC on the i7 (average 3.4x over eight contexts) and form
Java Scalable; the remaining multithreaded codes (avrora, batik, fop, h2,
jython, pmd, tradebeans) do not scale well and join the single-threaded
codes in Java Non-scalable.  Parallel fractions below are chosen to land
each benchmark at its measured Fig. 1 / Fig. 6 ratio.
"""

from __future__ import annotations

from repro.workloads.benchmark import Benchmark, Group, Suite
from repro.workloads.characteristics import JvmBehavior, WorkloadCharacter


def _dacapo(
    name: str,
    suite: Suite,
    group: Group,
    seconds: float,
    description: str,
    character: WorkloadCharacter,
    jvm: JvmBehavior,
) -> Benchmark:
    return Benchmark(
        name=name,
        suite=suite,
        group=group,
        description=description,
        reference_seconds=seconds,
        character=character,
        jvm=jvm,
    )


#: DaCapo 06-10-MR2 members (both single-threaded, Java Non-scalable).
DACAPO_06: tuple[Benchmark, ...] = (
    _dacapo(
        "antlr", Suite.DACAPO_06, Group.JAVA_NONSCALABLE, 2.9,
        "Parser and translator generator",
        WorkloadCharacter(ilp=1.5, branch_mpki=4.0, memory_mpki=2.0,
                          footprint_mb=10, activity=0.98),
        # The paper singles out antlr: up to 50 % of its time is spent in
        # the JVM, and it gains ~55 % from a second core (§3.1, Fig. 6).
        JvmBehavior(service_fraction=0.47, displacement_mpki_factor=1.22,
                    code_pressure=0.8),
    ),
    _dacapo(
        "bloat", Suite.DACAPO_06, Group.JAVA_NONSCALABLE, 7.6,
        "Java bytecode optimization and analysis tool",
        WorkloadCharacter(ilp=1.5, branch_mpki=3.8, memory_mpki=2.2,
                          footprint_mb=14, activity=0.96),
        JvmBehavior(service_fraction=0.04, displacement_mpki_factor=1.05),
    ),
)

#: DaCapo 9.12 members that do not scale (Java Non-scalable).
DACAPO_9_NONSCALABLE: tuple[Benchmark, ...] = (
    _dacapo(
        "avrora", Suite.DACAPO_9, Group.JAVA_NONSCALABLE, 11.3,
        "Simulates the AVR microcontroller",
        WorkloadCharacter(ilp=1.4, branch_mpki=3.0, memory_mpki=0.8,
                          footprint_mb=4, activity=0.93,
                          parallel_fraction=0.30, software_threads=4,
                          sync_overhead=0.012),
        JvmBehavior(service_fraction=0.04, displacement_mpki_factor=1.06),
    ),
    _dacapo(
        "batik", Suite.DACAPO_9, Group.JAVA_NONSCALABLE, 4.0,
        "Scalable Vector Graphics (SVG) toolkit",
        WorkloadCharacter(ilp=1.7, branch_mpki=2.5, memory_mpki=1.5,
                          footprint_mb=12, activity=1.03,
                          parallel_fraction=0.12, software_threads=2),
        JvmBehavior(service_fraction=0.06, displacement_mpki_factor=1.08),
    ),
    _dacapo(
        "fop", Suite.DACAPO_9, Group.JAVA_NONSCALABLE, 1.8,
        "Output-independent print formatter",
        WorkloadCharacter(ilp=1.5, branch_mpki=3.5, memory_mpki=2.0,
                          footprint_mb=10, activity=0.98),
        JvmBehavior(service_fraction=0.09, displacement_mpki_factor=1.10),
    ),
    _dacapo(
        "h2", Suite.DACAPO_9, Group.JAVA_NONSCALABLE, 14.4,
        "An SQL relational database engine in Java",
        WorkloadCharacter(ilp=1.4, branch_mpki=2.8, memory_mpki=4.0,
                          footprint_mb=40, activity=0.90,
                          parallel_fraction=0.05, software_threads=4,
                          sync_overhead=0.015),
        JvmBehavior(service_fraction=0.05, displacement_mpki_factor=1.10),
    ),
    _dacapo(
        "jython", Suite.DACAPO_9, Group.JAVA_NONSCALABLE, 8.5,
        "Python interpreter in Java",
        WorkloadCharacter(ilp=1.5, branch_mpki=4.2, memory_mpki=1.2,
                          footprint_mb=12, activity=0.98,
                          parallel_fraction=0.28, software_threads=2),
        JvmBehavior(service_fraction=0.10, displacement_mpki_factor=1.08),
    ),
    _dacapo(
        "pmd", Suite.DACAPO_9, Group.JAVA_NONSCALABLE, 6.9,
        "Source code analyzer for Java",
        WorkloadCharacter(ilp=1.5, branch_mpki=3.2, memory_mpki=2.5,
                          footprint_mb=16, activity=0.96,
                          parallel_fraction=0.15, software_threads=4),
        JvmBehavior(service_fraction=0.07, displacement_mpki_factor=1.08),
    ),
    _dacapo(
        "tradebeans", Suite.DACAPO_9, Group.JAVA_NONSCALABLE, 18.4,
        "Tradebeans Daytrader benchmark",
        WorkloadCharacter(ilp=1.4, branch_mpki=2.8, memory_mpki=3.5,
                          footprint_mb=48, activity=0.93,
                          parallel_fraction=0.48, software_threads=8,
                          sync_overhead=0.010),
        JvmBehavior(service_fraction=0.08, displacement_mpki_factor=1.12),
    ),
    _dacapo(
        "luindex", Suite.DACAPO_9, Group.JAVA_NONSCALABLE, 2.4,
        "A text indexing tool",
        WorkloadCharacter(ilp=1.6, branch_mpki=2.8, memory_mpki=1.8,
                          footprint_mb=10, activity=1.00),
        JvmBehavior(service_fraction=0.10, displacement_mpki_factor=1.10),
    ),
)

#: DaCapo 9.12 members that scale like PARSEC (Java Scalable, Fig. 1).
DACAPO_9_SCALABLE: tuple[Benchmark, ...] = (
    _dacapo(
        "eclipse", Suite.DACAPO_9, Group.JAVA_SCALABLE, 50.5,
        "Integrated development environment",
        WorkloadCharacter(ilp=1.5, branch_mpki=3.0, memory_mpki=2.0,
                          footprint_mb=32, activity=1.05,
                          parallel_fraction=0.82, software_threads=None,
                          sync_overhead=0.008),
        JvmBehavior(service_fraction=0.12, displacement_mpki_factor=1.10),
    ),
    _dacapo(
        "lusearch", Suite.DACAPO_9, Group.JAVA_SCALABLE, 7.9,
        "Text search tool",
        WorkloadCharacter(ilp=1.6, branch_mpki=2.2, memory_mpki=4.0,
                          footprint_mb=24, activity=1.10,
                          parallel_fraction=0.93, software_threads=None),
        JvmBehavior(service_fraction=0.10, displacement_mpki_factor=1.12),
    ),
    _dacapo(
        "sunflow", Suite.DACAPO_9, Group.JAVA_SCALABLE, 19.4,
        "Photo-realistic rendering system",
        WorkloadCharacter(ilp=2.2, branch_mpki=1.5, memory_mpki=1.0,
                          footprint_mb=12, activity=1.30,
                          parallel_fraction=0.965, software_threads=None),
        JvmBehavior(service_fraction=0.06, displacement_mpki_factor=1.06),
    ),
    _dacapo(
        "tomcat", Suite.DACAPO_9, Group.JAVA_SCALABLE, 8.6,
        "Tomcat servlet container",
        WorkloadCharacter(ilp=1.5, branch_mpki=2.8, memory_mpki=2.5,
                          footprint_mb=24, activity=1.10,
                          parallel_fraction=0.945, software_threads=None),
        JvmBehavior(service_fraction=0.08, displacement_mpki_factor=1.08),
    ),
    _dacapo(
        "xalan", Suite.DACAPO_9, Group.JAVA_SCALABLE, 6.9,
        "XSLT processor for XML documents",
        WorkloadCharacter(ilp=1.6, branch_mpki=2.5, memory_mpki=3.0,
                          footprint_mb=20, activity=1.15,
                          parallel_fraction=0.955, software_threads=None),
        JvmBehavior(service_fraction=0.08, displacement_mpki_factor=1.10),
    ),
)

#: Every DaCapo benchmark in the study.
BENCHMARKS: tuple[Benchmark, ...] = (
    DACAPO_06 + DACAPO_9_NONSCALABLE + DACAPO_9_SCALABLE
)
