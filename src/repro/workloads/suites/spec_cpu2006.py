"""SPEC CPU2006: the 27 Native Non-scalable benchmarks (§2.1).

Twelve SPEC CINT2006 integer codes and fifteen SPEC CFP2006 floating-point
codes, all single-threaded, compiled ahead of time with icc -o3 in the
paper.  410.bwaves and 481.wrf are excluded (they failed to build with icc),
exactly as in the paper.

Signature values (ILP, miss rates, footprints, activity) follow the public
SPEC CPU2006 characterisation literature: mcf/omnetpp/lbm/milc are the
memory-bound outliers; hmmer/h264ref/gamess/namd/povray are the dense
compute codes.  Activity encodes the group's hallmark: SPEC CPU draws
noticeably *less* power than scalable or managed code on the i7/i5
(Workload Finding 3), with 471.omnetpp the documented 23 W minimum.
"""

from __future__ import annotations

from repro.workloads.benchmark import Benchmark, Group, Suite
from repro.workloads.characteristics import WorkloadCharacter


def _cint(
    name: str,
    seconds: float,
    description: str,
    ilp: float,
    branch: float,
    memory: float,
    footprint: float,
    activity: float,
) -> Benchmark:
    return Benchmark(
        name=name,
        suite=Suite.SPEC_CINT2006,
        group=Group.NATIVE_NONSCALABLE,
        description=description,
        reference_seconds=seconds,
        character=WorkloadCharacter(
            ilp=ilp,
            branch_mpki=branch,
            memory_mpki=memory,
            footprint_mb=footprint,
            activity=activity,
        ),
    )


def _cfp(
    name: str,
    seconds: float,
    description: str,
    ilp: float,
    branch: float,
    memory: float,
    footprint: float,
    activity: float,
) -> Benchmark:
    return Benchmark(
        name=name,
        suite=Suite.SPEC_CFP2006,
        group=Group.NATIVE_NONSCALABLE,
        description=description,
        reference_seconds=seconds,
        character=WorkloadCharacter(
            ilp=ilp,
            branch_mpki=branch,
            memory_mpki=memory,
            footprint_mb=footprint,
            activity=activity,
        ),
    )


CINT2006: tuple[Benchmark, ...] = (
    _cint("perlbench", 1037, "Perl programming language", 1.8, 4.5, 0.8, 8, 0.95),
    _cint("bzip2", 1563, "bzip2 compression", 1.6, 3.5, 2.5, 10, 0.92),
    _cint("gcc", 851, "C optimizing compiler", 1.7, 4.0, 3.0, 20, 0.88),
    _cint("mcf", 894, "Combinatorial opt / vehicle scheduling", 1.1, 2.5, 22.0, 60, 0.62),
    _cint("gobmk", 1113, "AI: Go game", 1.5, 6.5, 0.6, 3, 0.94),
    _cint("hmmer", 1024, "Search a gene sequence database", 2.4, 1.0, 0.4, 2, 1.05),
    _cint("sjeng", 1315, "AI: tree search & pattern recognition", 1.6, 6.0, 0.5, 4, 0.95),
    _cint("libquantum", 629, "Physics / quantum computing", 1.9, 1.0, 12.0, 32, 0.78),
    _cint("h264ref", 1533, "H.264/AVC video compression", 2.3, 2.0, 0.5, 4, 1.10),
    _cint("omnetpp", 905, "Ethernet network simulation (OMNeT++)", 1.15, 3.5, 13.0, 40, 0.55),
    _cint("astar", 1154, "Portable 2D path-finding library", 1.3, 3.8, 6.0, 25, 0.78),
    _cint("xalancbmk", 787, "XSLT processor for transforming XML", 1.4, 3.0, 5.0, 30, 0.82),
)

CFP2006: tuple[Benchmark, ...] = (
    _cfp("gamess", 3505, "Quantum chemical computations", 2.6, 0.7, 0.3, 2, 1.08),
    _cfp("milc", 640, "Physics / quantum chromodynamics (QCD)", 1.6, 0.3, 14.0, 64, 0.75),
    _cfp("zeusmp", 1541, "Physics / magnetohydrodynamics (ZEUS-MP)", 2.0, 0.5, 5.0, 40, 0.98),
    _cfp("gromacs", 983, "Molecular dynamics simulation", 2.4, 1.2, 0.7, 3, 1.10),
    _cfp("cactusADM", 1994, "Cactus / BenchADM relativity kernels", 2.0, 0.2, 6.0, 50, 0.96),
    _cfp("leslie3d", 1512, "Linear-Eddy Model 3D fluid dynamics", 2.0, 0.4, 8.0, 48, 0.95),
    _cfp("namd", 1225, "Parallel simulation of biomolecular systems", 2.5, 0.9, 0.4, 3, 1.12),
    _cfp("dealII", 832, "PDEs with adaptive finite elements", 2.2, 1.5, 2.5, 12, 1.00),
    _cfp("soplex", 1024, "Simplex linear program solver", 1.5, 2.5, 8.0, 40, 0.78),
    _cfp("povray", 636, "Ray-tracer", 2.2, 2.5, 0.2, 2, 1.12),
    _cfp("calculix", 1130, "Finite element 3D structural applications", 2.3, 1.2, 1.5, 8, 1.05),
    _cfp("GemsFDTD", 1648, "Maxwell equations in 3D, time domain", 1.9, 0.4, 10.0, 60, 0.85),
    _cfp("tonto", 1439, "Quantum crystallography", 2.2, 1.5, 1.0, 6, 1.05),
    _cfp("lbm", 1298, "Lattice Boltzmann incompressible fluids", 2.0, 0.1, 16.0, 64, 0.80),
    _cfp("sphinx3", 2007, "Speech recognition", 1.9, 1.8, 6.0, 20, 0.92),
)

#: All 27 Native Non-scalable benchmarks, Table 1 order.
BENCHMARKS: tuple[Benchmark, ...] = CINT2006 + CFP2006
