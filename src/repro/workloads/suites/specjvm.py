"""SPECjvm98: seven Java Non-scalable benchmarks (§2.1).

Client-side Java codes, over a decade old at the time of the study, with
small instruction-cache and data footprints (Blackburn et al.).  All are
single-threaded except mtrt's dual-threaded raytracer, which the paper
places in Java Non-scalable because it does not scale past two threads.

db is the paper's worked example of JVM-induced parallelism: despite
spending 95 % of its instructions in single-threaded application code it
speeds up ~30 % with a second core because the collector stops displacing
its data — DTLB misses drop by 2.5x (§3.1).
"""

from __future__ import annotations

from repro.workloads.benchmark import Benchmark, Group, Suite
from repro.workloads.characteristics import JvmBehavior, WorkloadCharacter


def _specjvm(
    name: str,
    seconds: float,
    description: str,
    character: WorkloadCharacter,
    jvm: JvmBehavior,
) -> Benchmark:
    return Benchmark(
        name=name,
        suite=Suite.SPECJVM,
        group=Group.JAVA_NONSCALABLE,
        description=description,
        reference_seconds=seconds,
        character=character,
        jvm=jvm,
    )


#: All seven SPECjvm benchmarks, Table 1 order.
BENCHMARKS: tuple[Benchmark, ...] = (
    _specjvm(
        "compress", 5.3, "Lempel-Ziv compression",
        WorkloadCharacter(ilp=1.9, branch_mpki=2.0, memory_mpki=1.5,
                          footprint_mb=8, activity=1.02),
        JvmBehavior(service_fraction=0.02, displacement_mpki_factor=1.04),
    ),
    _specjvm(
        "jess", 1.4, "Java expert system shell",
        WorkloadCharacter(ilp=1.6, branch_mpki=3.5, memory_mpki=1.0,
                          footprint_mb=6, activity=0.99),
        JvmBehavior(service_fraction=0.06, displacement_mpki_factor=1.10),
    ),
    _specjvm(
        "db", 6.8, "Small data management program",
        WorkloadCharacter(ilp=1.4, branch_mpki=2.5, memory_mpki=6.0,
                          footprint_mb=24, activity=0.88, dtlb_mpki=8.0),
        # 95% of instructions are application code, yet collector
        # displacement costs ~30% when co-located (§3.1).
        JvmBehavior(service_fraction=0.05, displacement_mpki_factor=1.75),
    ),
    _specjvm(
        "javac", 3.0, "The JDK 1.0.2 Java compiler",
        WorkloadCharacter(ilp=1.5, branch_mpki=4.0, memory_mpki=2.0,
                          footprint_mb=12, activity=0.97),
        JvmBehavior(service_fraction=0.08, displacement_mpki_factor=1.08),
    ),
    _specjvm(
        "mpegaudio", 3.1, "MPEG-3 audio stream decoder",
        WorkloadCharacter(ilp=2.2, branch_mpki=1.2, memory_mpki=0.3,
                          footprint_mb=2, activity=1.12),
        JvmBehavior(service_fraction=0.01, displacement_mpki_factor=1.01),
    ),
    _specjvm(
        "mtrt", 0.8, "Dual-threaded raytracer",
        WorkloadCharacter(ilp=1.8, branch_mpki=2.0, memory_mpki=1.2,
                          footprint_mb=10, activity=1.08,
                          parallel_fraction=0.58, software_threads=2),
        JvmBehavior(service_fraction=0.08, displacement_mpki_factor=1.10),
    ),
    _specjvm(
        "jack", 2.4, "Parser generator with lexical analysis",
        WorkloadCharacter(ilp=1.5, branch_mpki=4.5, memory_mpki=1.5,
                          footprint_mb=8, activity=0.95),
        JvmBehavior(service_fraction=0.09, displacement_mpki_factor=1.12),
    ),
)
