"""Benchmark suite definitions, one module per source suite (Table 1)."""
