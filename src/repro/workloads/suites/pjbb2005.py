"""pjbb2005: fixed-workload transaction processing (§2.1).

A variant of SPECjbb2005 that holds the workload constant (8 warehouses,
10,000 transactions per warehouse) instead of running for fixed time, so
execution time is a meaningful metric.  Multithreaded, but it does not
scale well on eight contexts (Fig. 1 places it around 2.2x), so it belongs
to Java Non-scalable.
"""

from __future__ import annotations

from repro.workloads.benchmark import Benchmark, Group, Suite
from repro.workloads.characteristics import JvmBehavior, WorkloadCharacter

WAREHOUSES = 8
TRANSACTIONS_PER_WAREHOUSE = 10_000

PJBB2005 = Benchmark(
    name="pjbb2005",
    suite=Suite.PJBB2005,
    group=Group.JAVA_NONSCALABLE,
    description="Transaction processing, based on SPECjbb2005",
    reference_seconds=10.6,
    character=WorkloadCharacter(
        ilp=1.5,
        branch_mpki=2.5,
        memory_mpki=3.0,
        footprint_mb=64,
        activity=1.00,
        parallel_fraction=0.62,
        software_threads=WAREHOUSES,
        sync_overhead=0.010,
    ),
    jvm=JvmBehavior(service_fraction=0.10, displacement_mpki_factor=1.15,
                    gc_threads=4),
)

BENCHMARKS: tuple[Benchmark, ...] = (PJBB2005,)
