"""Synthetic workloads: model *your* application on the study's machines.

The catalog covers the paper's 61 benchmarks, but a downstream user of
this library usually wants to ask "how would my service behave across
these design points?".  This module builds valid
:class:`~repro.workloads.benchmark.Benchmark` objects from high-level
descriptors — compute- or memory-bound, branchy or regular, serial or
scaling — without hand-picking a dozen signature rates.

Example::

    from repro.workloads.synthetic import synthetic

    svc = synthetic(
        "my-service",
        boundness=0.7,          # fairly memory-bound
        branchiness=0.4,
        parallelism=0.9,        # scales to most contexts
        managed=True,
        reference_seconds=12.0,
    )
    study.measure(svc, stock(processor("i7_45")))
"""

from __future__ import annotations

from typing import Optional

from repro.workloads.benchmark import Benchmark, Group, Suite
from repro.workloads.characteristics import JvmBehavior, WorkloadCharacter

#: Signature extremes the descriptors interpolate between.
_ILP_RANGE = (2.6, 1.1)  # compute-bound .. memory-bound
_MPKI_RANGE = (0.2, 20.0)
_FOOTPRINT_RANGE = (2.0, 64.0)
_BRANCH_RANGE = (0.3, 6.5)
_ACTIVITY_RANGE = (1.25, 0.60)  # dense FP .. pointer chasing


def _lerp(low: float, high: float, t: float) -> float:
    return low + (high - low) * t


def synthetic(
    name: str,
    boundness: float = 0.3,
    branchiness: float = 0.3,
    parallelism: float = 0.0,
    managed: bool = False,
    reference_seconds: float = 10.0,
    service_fraction: Optional[float] = None,
    threads: Optional[int] = None,
) -> Benchmark:
    """Build a benchmark from high-level descriptors, each in [0, 1].

    * ``boundness`` — 0 is pure compute, 1 is pathologically memory-bound
      (mcf-like);
    * ``branchiness`` — 0 is straight-line numeric code, 1 is AI-search
      control flow;
    * ``parallelism`` — the Amdahl parallel fraction; 0 means
      single-threaded.  ``threads`` fixes a software thread count; the
      default scales to the hardware when ``parallelism > 0``.
    * ``managed`` — run under the JVM model with ``service_fraction``
      runtime-service work (default 8 %, the catalog's typical value).

    The result is a fully valid catalog-style benchmark: the engine
    calibrates its work so its mean reference-machine run time equals
    ``reference_seconds``, and every experiment/measure API accepts it.
    """
    for label, value in (
        ("boundness", boundness),
        ("branchiness", branchiness),
    ):
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{label} must be in [0, 1]")
    if not 0.0 <= parallelism < 1.0:
        raise ValueError("parallelism must be in [0, 1)")

    scalable = parallelism >= 0.85
    if threads is None:
        software_threads = None if parallelism > 0.0 else 1
    else:
        software_threads = threads

    character = WorkloadCharacter(
        ilp=_lerp(*_ILP_RANGE, boundness),
        branch_mpki=_lerp(*_BRANCH_RANGE, branchiness),
        memory_mpki=_lerp(*_MPKI_RANGE, boundness),
        footprint_mb=_lerp(*_FOOTPRINT_RANGE, boundness),
        activity=_lerp(*_ACTIVITY_RANGE, boundness),
        parallel_fraction=parallelism,
        software_threads=software_threads,
    )

    if managed:
        group = Group.JAVA_SCALABLE if scalable else Group.JAVA_NONSCALABLE
        jvm = JvmBehavior(
            service_fraction=0.08 if service_fraction is None else service_fraction
        )
        suite = Suite.DACAPO_9  # closest real-world analogue
    else:
        group = Group.NATIVE_SCALABLE if scalable else Group.NATIVE_NONSCALABLE
        jvm = None
        suite = Suite.PARSEC if scalable else Suite.SPEC_CINT2006

    if group.scalable and character.software_threads == 1:
        raise ValueError(
            "parallelism this high needs threads: pass threads>1 or leave "
            "threads unset"
        )

    return Benchmark(
        name=name,
        suite=suite,
        group=group,
        description=f"synthetic workload ({name})",
        reference_seconds=reference_seconds,
        character=character,
        jvm=jvm,
    )
