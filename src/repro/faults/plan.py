"""Declarative, seeded fault plans.

A :class:`FaultPlan` says *what* can go wrong and *how often*; the
injector (:mod:`repro.faults.injector`) decides, deterministically, *when*
it actually does.  Every draw is keyed by ``(plan seed, fault kind, site,
attempt)`` through the same SHA-256 seeding the rest of the library uses,
so a plan reproduces the identical failure sequence on every run — the
property the paper's authors did *not* have when their physical rig
misbehaved.

Fault kinds (the taxonomy in :mod:`docs/robustness.md`):

========================  ====================================================
``invocation.crash``      the benchmark process dies before producing a run
``invocation.hang``       the invocation exceeds its timeout budget
``logger.disconnect``     the AVR stick drops off the USB bus mid-run
``logger.gap``            a contiguous window of samples is lost
``sensor.glitch``         isolated full-scale spikes in the code stream
``sensor.drift``          a slow additive ramp across the run's codes
``sensor.stuck``          the ADC reports one frozen code for the whole run
``meter.saturation``      a burst of samples pinned to the sensor rail
``worker.crash``          a fleet worker process dies mid-chunk
``worker.hang``           a fleet worker wedges and stops heartbeating
``worker.slow``           a fleet worker's heartbeats stall, then recover
``coordinator.crash``     the serving coordinator dies at a pipeline phase
``coordinator.stall``     the coordinator wedges briefly at a pipeline phase
========================  ====================================================

The first three are *fail-stop*: the run aborts and a retry re-measures
it from scratch (reproducing the fault-free result exactly, because
measurement noise is keyed by site alone while fault draws are keyed by
site *and* attempt).  The rest are *corrupting*: the run completes but
its samples are wrong, which is what the study's MAD outlier screen and
the meter's clamp telemetry exist to catch.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Mapping

#: Every kind the injector knows how to fire, by pipeline stage.
FAIL_STOP_KINDS = (
    "invocation.crash",
    "invocation.hang",
    "logger.disconnect",
)
CORRUPTING_KINDS = (
    "logger.gap",
    "sensor.glitch",
    "sensor.drift",
    "sensor.stuck",
    "meter.saturation",
)
#: Process-level faults against the supervised worker fleet.  They kill
#: (or wedge) a whole worker process rather than one invocation, so the
#: supervisor — not the retry loop — recovers from them, by requeueing
#: the in-flight chunk onto a respawned worker.  Like the fail-stop
#: kinds they can never corrupt a completed sample: the replacement
#: worker re-measures the chunk from scratch with noise keyed by site
#: alone, reproducing the fault-free bytes.
PROCESS_KINDS = (
    "worker.crash",
    "worker.hang",
    "worker.slow",
)
#: Faults against the *coordinator* itself — the ``repro serve`` process
#: that owns the request journal.  A ``coordinator.crash`` fires
#: ``os._exit`` at a named pipeline phase (admit/schedule/batch/store);
#: a ``coordinator.stall`` wedges that phase for ``magnitude`` seconds.
#: Recovery is the journal's job, not a retry loop's: a restarted server
#: with ``--recover`` replays every journaled-but-unfinished request, so
#: these kinds are excluded from per-request plans (``fail_stop_only``)
#: and from the canned ``demo`` plan — arming one kills the process that
#: armed it.
COORDINATOR_KINDS = (
    "coordinator.crash",
    "coordinator.stall",
)
#: The pipeline phases at which the coordinator exposes a fault point
#: (sites are ``coordinator/<phase>/<ordinal>``).
COORDINATOR_PHASES = ("admit", "schedule", "batch", "store")
KNOWN_KINDS = FAIL_STOP_KINDS + CORRUPTING_KINDS + PROCESS_KINDS + COORDINATOR_KINDS

#: Default kind-specific magnitudes, in each kind's natural unit.
DEFAULT_MAGNITUDES: Mapping[str, float] = {
    "invocation.hang": 300.0,  # simulated seconds hung before giving up
    "logger.disconnect": 0.0,  # fraction of the run logged before the drop
    "logger.gap": 0.25,  # fraction of samples lost
    "sensor.glitch": 0.02,  # fraction of samples spiked
    "sensor.drift": 40.0,  # codes of ramp across the run
    "sensor.stuck": 0.0,  # unused (the stuck code is drawn per fault)
    "meter.saturation": 0.3,  # fraction of the run railed
    "worker.hang": 3600.0,  # seconds wedged (supervisor kills long before)
    "worker.slow": 1.0,  # seconds of heartbeat silence before recovering
    "coordinator.stall": 0.25,  # seconds the coordinator phase wedges
}


@dataclass(frozen=True)
class FaultSpec:
    """One kind of fault, how likely it is, and where it may fire.

    ``probability`` is per *opportunity* — one engine invocation for
    invocation faults, one logged run for sensor/logger/meter faults.
    ``scope`` is an ``fnmatch`` pattern over the site key
    (``config/benchmark/invocation``), so a spec can target one machine
    (``"i7_45*"``), one benchmark (``"*/db/*"``), or everything (``"*"``).
    ``magnitude`` overrides the kind's default severity.
    """

    kind: str
    probability: float
    scope: str = "*"
    magnitude: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in KNOWN_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {', '.join(KNOWN_KINDS)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1]: {self.probability}")
        if self.magnitude is not None and not math.isfinite(self.magnitude):
            raise ValueError("magnitude must be finite")

    @property
    def severity(self) -> float:
        if self.magnitude is not None:
            return self.magnitude
        return DEFAULT_MAGNITUDES.get(self.kind, 0.0)

    def applies_to(self, site: str) -> bool:
        return fnmatchcase(site, self.scope)

    def as_dict(self) -> dict[str, object]:
        out: dict[str, object] = {"kind": self.kind, "probability": self.probability}
        if self.scope != "*":
            out["scope"] = self.scope
        if self.magnitude is not None:
            out["magnitude"] = self.magnitude
        return out


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible failure schedule for a whole campaign.

    ``seed`` re-rolls every fault decision at once without touching the
    measurement noise streams (they derive from the library root seed,
    not the plan's).
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: str = "faultplan"

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def specs_for_stage(self, stage: str) -> tuple[FaultSpec, ...]:
        """Specs whose kind lives in ``stage`` (the prefix before the dot)."""
        return tuple(s for s in self.specs if s.kind.split(".")[0] == stage)

    @property
    def fingerprint(self) -> str:
        """Stable short digest of the plan's *content* (seed and specs).

        Two plans with the same fingerprint produce the same fault
        decisions at every site, so the fingerprint is the right identity
        for anything that must not mix results across plans: checkpoint
        compatibility sidecars and the campaign server's coalescing keys
        both use it."""
        canonical = json.dumps(self.as_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]

    @property
    def fail_stop_only(self) -> bool:
        """True when no spec can corrupt a completed run's samples —
        the regime in which retries reproduce fault-free results exactly.
        Worker-process faults qualify: a killed worker's chunk is
        requeued and re-measured whole, never merged partially."""
        allowed = FAIL_STOP_KINDS + PROCESS_KINDS
        return all(s.kind in allowed for s in self.specs)

    def as_dict(self) -> dict[str, object]:
        return {"seed": self.seed, "faults": [s.as_dict() for s in self.specs]}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FaultPlan":
        try:
            raw_specs = data.get("faults", ())
            specs = tuple(
                FaultSpec(
                    kind=str(entry["kind"]),
                    probability=float(entry["probability"]),
                    scope=str(entry.get("scope", "*")),
                    magnitude=(
                        float(entry["magnitude"])
                        if entry.get("magnitude") is not None
                        else None
                    ),
                )
                for entry in raw_specs  # type: ignore[union-attr]
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed fault plan: {exc}") from exc
        return cls(specs=specs, seed=str(data.get("seed", "faultplan")))

    @classmethod
    def from_json(cls, path: str | Path) -> "FaultPlan":
        with Path(path).open("r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def to_json(self, path: str | Path) -> Path:
        out = Path(path)
        out.write_text(json.dumps(self.as_dict(), indent=2) + "\n", encoding="utf-8")
        return out


def demo_plan(probability: float = 0.05, seed: str = "demo") -> FaultPlan:
    """A plan that exercises every stage — crashes, hangs, disconnects,
    gaps, glitches, drift, and saturation bursts — at ``probability``.

    Coordinator kinds are deliberately excluded: ``demo`` is meant to be
    armable on a live ``repro serve`` process, and a coordinator fault
    would kill (or wedge) the very process serving the requests."""
    kinds = tuple(k for k in KNOWN_KINDS if k not in COORDINATOR_KINDS)
    return FaultPlan(
        specs=tuple(FaultSpec(kind=kind, probability=probability) for kind in kinds),
        seed=seed,
    )


def fail_stop_plan(probability: float = 0.02, seed: str = "ci") -> FaultPlan:
    """Fail-stop faults only: safe to run under golden-value test suites,
    because every retried run reproduces its fault-free measurement."""
    return FaultPlan(
        specs=tuple(
            FaultSpec(kind=kind, probability=probability) for kind in FAIL_STOP_KINDS
        ),
        seed=seed,
    )


def worker_chaos_plan(seed: str = "chaos") -> FaultPlan:
    """Kill every fleet worker on its *first* chunk dispatch.

    The scope ``fleet/*/0`` matches attempt 0 of every chunk, so each
    chunk's first assignee crashes deterministically and the attempt-1
    requeue (fresh site, fresh dice) succeeds — guaranteeing at least
    one crash + respawn per supervised sweep while the merged bytes stay
    identical to a clean run."""
    return FaultPlan(
        specs=(FaultSpec(kind="worker.crash", probability=1.0, scope="fleet/*/0"),),
        seed=seed,
    )


def coordinator_crash_plan(phase: str = "batch", seed: str = "coordinator") -> FaultPlan:
    """Kill the coordinator the first time it reaches ``phase``.

    The scope ``coordinator/<phase>/*`` matches every ordinal at that
    phase, so with probability 1.0 the first opportunity fires.  The
    chaos harness arms this on one server incarnation only — the
    ``--recover`` restart runs without it, so recovery completes instead
    of crash-looping."""
    if phase not in COORDINATOR_PHASES:
        raise ValueError(
            f"unknown coordinator phase {phase!r}; "
            f"known: {', '.join(COORDINATOR_PHASES)}"
        )
    return FaultPlan(
        specs=(
            FaultSpec(
                kind="coordinator.crash",
                probability=1.0,
                scope=f"coordinator/{phase}/*",
            ),
        ),
        seed=seed,
    )


def plan_from_arg(arg: str) -> FaultPlan:
    """Resolve a CLI ``--inject`` argument: the name of a canned plan
    (``demo``, ``ci``, ``chaos``) or a path to a JSON plan file."""
    if arg == "demo":
        return demo_plan()
    if arg == "ci":
        return fail_stop_plan()
    if arg == "chaos":
        return worker_chaos_plan()
    return FaultPlan.from_json(arg)
