"""Deterministic fault injection into the measurement pipeline.

The injector is *ambient*: :func:`install` (or the :func:`injected`
context manager) arms a :class:`~repro.faults.plan.FaultPlan` for the
whole process, and each instrumented stage — the execution engine, the
Hall sensor, the 50 Hz logger, the power meter — asks the active injector
whether a fault fires at its *site* (the ``config/benchmark/invocation``
key).  With no injector installed every hook is a single ``None`` check,
so the fault layer costs nothing when disarmed.

Fault decisions are drawn from ``rng_for(kind/site/attempt)`` rooted at
the plan's seed: independent of the measurement noise streams (which are
rooted at the library seed and do **not** include the attempt), so

* the same plan reproduces the same failures run after run, and
* a retried invocation draws fresh fault dice but identical measurement
  noise — a recovered fail-stop fault yields the byte-identical result a
  fault-free campaign would have produced.

The ``attempt`` is threaded through a contextvar by the study's retry
loop rather than through every stage signature.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import sys
import time
from collections import defaultdict
from contextlib import contextmanager
from typing import Iterator, Optional

import numpy as np

from repro.core.seeding import rng_for, run_key
from repro.faults.errors import (
    InvocationCrash,
    InvocationTimeout,
    LoggerDropout,
    MeterSaturation,
)
from repro.faults.plan import FaultPlan, FaultSpec
from repro.obs.metrics import default_registry

_REGISTRY = default_registry()
_INJECTED = _REGISTRY.counter(
    "repro_faults_injected_total",
    "Faults fired by the injector, by kind",
)

_ATTEMPT: contextvars.ContextVar[int] = contextvars.ContextVar(
    "repro_faults_attempt", default=0
)

_SHIELDED: contextvars.ContextVar[bool] = contextvars.ContextVar(
    "repro_faults_shielded", default=False
)


def current_attempt() -> int:
    """The retry attempt the surrounding harness is on (0 = first try)."""
    return _ATTEMPT.get()


@contextmanager
def attempt_scope(attempt: int) -> Iterator[None]:
    """Mark every fault decision inside the block as belonging to
    ``attempt`` — how the study's retry loop re-rolls the fault dice
    without perturbing measurement noise."""
    token = _ATTEMPT.set(attempt)
    try:
        yield
    finally:
        _ATTEMPT.reset(token)


class FaultInjector:
    """Evaluates one :class:`FaultPlan` against pipeline sites."""

    def __init__(self, plan: FaultPlan) -> None:
        self._plan = plan
        self._invocation_specs = plan.specs_for_stage("invocation")
        self._sensor_specs = plan.specs_for_stage("sensor")
        self._logger_specs = plan.specs_for_stage("logger")
        self._meter_specs = plan.specs_for_stage("meter")
        self._worker_specs = plan.specs_for_stage("worker")
        self._coordinator_specs = plan.specs_for_stage("coordinator")

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    # -- decision core -------------------------------------------------------

    def _fires(self, spec: FaultSpec, site: str) -> bool:
        if spec.probability <= 0.0 or not spec.applies_to(site):
            return False
        rng = rng_for(
            run_key("fault", spec.kind, site, _ATTEMPT.get()),
            root=f"faultplan::{self._plan.seed}",
        )
        if rng.random() >= spec.probability:
            return False
        _INJECTED.labels(kind=spec.kind).inc()
        return True

    def _rng(self, kind: str, site: str) -> np.random.Generator:
        """Severity draws for a fault that already fired (separate stream
        from the fire/no-fire decision)."""
        return rng_for(
            run_key("fault-shape", kind, site, _ATTEMPT.get()),
            root=f"faultplan::{self._plan.seed}",
        )

    def may_fault_pair(
        self, config_key: str, benchmark_name: str, invocations: int
    ) -> bool:
        """Could any measurement-pipeline fault fire somewhere inside
        this pair's invocation loop?

        The compiled-kernel path (:mod:`repro.execution.kernels`) asks
        this before vectorising a pair: a pair with any *armed* site must
        take the scalar path, which walks the per-invocation hooks.  The
        check is conservative by scope, not by dice — it never draws RNG
        (so it cannot perturb fault decisions) and returns True whenever
        a positive-probability invocation/sensor/logger/meter spec's
        scope matches any of the pair's sites, whether or not the dice
        would actually fire.  Worker/coordinator specs are process-level
        and do not gate vectorisation.
        """
        specs = [
            spec
            for stage_specs in (
                self._invocation_specs,
                self._sensor_specs,
                self._logger_specs,
                self._meter_specs,
            )
            for spec in stage_specs
            if spec.probability > 0.0
        ]
        if not specs:
            return False
        return any(
            spec.applies_to(f"{config_key}/{benchmark_name}/{invocation}")
            for invocation in range(invocations)
            for spec in specs
        )

    # -- stage hooks ---------------------------------------------------------

    def check_invocation(self, site: str) -> None:
        """Engine hook: may abort the invocation before it runs."""
        for spec in self._invocation_specs:
            if not self._fires(spec, site):
                continue
            if spec.kind == "invocation.crash":
                raise InvocationCrash(
                    f"injected crash: invocation {site} died before completing",
                    site=site,
                )
            raise InvocationTimeout(
                f"injected hang: invocation {site} exceeded its timeout "
                f"budget after {spec.severity:g}s (simulated)",
                site=site,
                elapsed_s=spec.severity,
            )

    def check_worker(self, site: str) -> Optional[FaultSpec]:
        """Fleet hook: does a process-level fault fire for this dispatch?

        Unlike the pipeline hooks this one only *decides*; the worker
        loop enacts the spec (``os._exit`` for a crash, heartbeat
        silence for a hang/slow-down), because the injector cannot kill
        its own caller cleanly.  ``site`` is ``fleet/<chunk>/<attempt>``
        — the attempt lives in the site itself so a probability-1.0 spec
        scoped to attempt 0 fires exactly once per chunk."""
        for spec in self._worker_specs:
            if self._fires(spec, site):
                return spec
        return None

    def check_coordinator(self, site: str) -> Optional[FaultSpec]:
        """Coordinator hook: does a coordinator fault fire at this phase?

        Decide-only, like :meth:`check_worker` — the caller (via
        :func:`coordinator_fault_point`) enacts the spec, because a
        ``coordinator.crash`` is ``os._exit`` on the serving process and
        the injector cannot usefully unwind from that.  ``site`` is
        ``coordinator/<phase>/<ordinal>``."""
        for spec in self._coordinator_specs:
            if self._fires(spec, site):
                return spec
        return None

    def corrupt_sensor_codes(
        self, site: str, codes: np.ndarray, max_code: int
    ) -> np.ndarray:
        """Sensor hook: glitch bursts, drift ramps, stuck-at streams."""
        for spec in self._sensor_specs:
            if not self._fires(spec, site):
                continue
            if spec.kind == "sensor.stuck":
                codes = np.full_like(codes, codes[0])
                continue
            rng = self._rng(spec.kind, site)
            if spec.kind == "sensor.glitch":
                count = max(1, round(spec.severity * len(codes)))
                idx = rng.choice(len(codes), size=min(count, len(codes)),
                                 replace=False)
                spikes = rng.integers(0, 2, size=len(idx)) * max_code
                codes = codes.copy()
                codes[idx] = spikes
            elif spec.kind == "sensor.drift":
                ramp = np.rint(
                    np.linspace(0.0, spec.severity, num=len(codes))
                ).astype(codes.dtype)
                codes = np.clip(codes + ramp, 0, max_code)
        return codes

    def filter_logged_samples(
        self, site: str, times: np.ndarray, codes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Logger hook: sample gaps and mid-run disconnects."""
        for spec in self._logger_specs:
            if not self._fires(spec, site):
                continue
            if spec.kind == "logger.disconnect":
                logged_fraction = spec.severity
                raise LoggerDropout(
                    f"injected disconnect: logger left the bus after "
                    f"{logged_fraction:.0%} of run {site}; partial record "
                    "discarded",
                    site=site,
                )
            # logger.gap: a contiguous window of samples never arrives.
            fraction = min(max(spec.severity, 0.0), 1.0)
            lost = round(fraction * len(codes))
            if lost >= len(codes):
                raise LoggerDropout(
                    f"injected gap swallowed every sample of run {site}",
                    site=site,
                )
            if lost:
                rng = self._rng(spec.kind, site)
                start = int(rng.integers(0, len(codes) - lost + 1))
                keep = np.ones(len(codes), dtype=bool)
                keep[start:start + lost] = False
                times, codes = times[keep], codes[keep]
        return times, codes

    def saturate_meter_codes(
        self, site: str, codes: np.ndarray, rail_code: int
    ) -> np.ndarray:
        """Meter hook: a burst of samples pinned at the sensor rail."""
        for spec in self._meter_specs:
            if not self._fires(spec, site):
                continue
            fraction = min(max(spec.severity, 0.0), 1.0)
            burst = round(fraction * len(codes))
            if burst >= len(codes):
                raise MeterSaturation(
                    f"injected saturation railed every sample of run {site}",
                    site=site,
                )
            if burst:
                rng = self._rng(spec.kind, site)
                start = int(rng.integers(0, len(codes) - burst + 1))
                codes = codes.copy()
                codes[start:start + burst] = rail_code
        return codes


_ACTIVE: Optional[FaultInjector] = None


def active() -> Optional[FaultInjector]:
    """The armed injector, or ``None`` (the common, zero-cost case, and
    always ``None`` inside a :func:`shielded` block)."""
    if _SHIELDED.get():
        return None
    return _ACTIVE


@contextmanager
def shielded() -> Iterator[None]:
    """Suppress fault injection for a block.

    Analytical paths that reuse the measurement machinery — reference
    energy derivation, sensor calibration sweeps — model the library's
    platonic baseline, not a run of the physical rig, so they must never
    draw fault dice (and must not *consume* dice that would change which
    campaign runs fail)."""
    token = _SHIELDED.set(True)
    try:
        yield
    finally:
        _SHIELDED.reset(token)


def install(plan: FaultPlan) -> FaultInjector:
    """Arm ``plan`` process-wide; returns the injector for inspection."""
    global _ACTIVE
    _ACTIVE = FaultInjector(plan)
    return _ACTIVE


def uninstall() -> None:
    """Disarm fault injection."""
    global _ACTIVE
    _ACTIVE = None


#: Exit status of a coordinator killed by an injected ``coordinator.crash``
#: — distinct from the fleet's worker crash code so the chaos harness can
#: tell "the server self-killed at the armed phase" from a worker death.
COORDINATOR_CRASH_EXIT_CODE = 86

#: Per-phase ordinal counters behind :func:`coordinator_fault_point`.
#: The ordinal makes each opportunity a distinct site (fresh dice), so a
#: probabilistic stall plan doesn't fire identically at every admit.
_COORDINATOR_ORDINALS: defaultdict[str, itertools.count] = defaultdict(itertools.count)


def reset_coordinator_sites() -> None:
    """Restart the per-phase ordinal counters (test isolation)."""
    _COORDINATOR_ORDINALS.clear()


def coordinator_fault_point(phase: str) -> None:
    """Service hook: evaluate — and *enact* — coordinator faults at
    ``phase`` (one of ``admit``/``schedule``/``batch``/``store``).

    A ``coordinator.crash`` terminates the process immediately via
    ``os._exit`` (no flush, no atexit — the point is to model SIGKILL,
    so anything not already durable is lost); a ``coordinator.stall``
    sleeps for the spec's magnitude and then continues.  With no armed
    injector (or no coordinator specs) this is a ``None`` check plus a
    tuple scan — effectively free on the hot path."""
    injector = active()
    if injector is None or not injector._coordinator_specs:
        return
    site = f"coordinator/{phase}/{next(_COORDINATOR_ORDINALS[phase])}"
    spec = injector.check_coordinator(site)
    if spec is None:
        return
    if spec.kind == "coordinator.crash":
        print(
            f"repro: injected coordinator.crash at {site}; exiting "
            f"{COORDINATOR_CRASH_EXIT_CODE}",
            file=sys.stderr,
            flush=True,
        )
        os._exit(COORDINATOR_CRASH_EXIT_CODE)
    # coordinator.stall: wedge the phase, then carry on.
    time.sleep(max(spec.severity, 0.0))


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultInjector]:
    """Arm ``plan`` for the duration of a block (restores the previous
    injector on exit, so tests can nest safely)."""
    global _ACTIVE
    previous = _ACTIVE
    injector = FaultInjector(plan)
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = previous
