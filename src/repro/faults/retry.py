"""Retry policy for the campaign harness.

The paper's authors simply re-ran invocations that crashed or hung on the
physical rig; :class:`RetryPolicy` makes that recovery explicit and
bounded.  Retries happen at the *invocation* level (the unit that fails
physically), with exponential backoff plus deterministic jitter, a
cumulative simulated-timeout budget per invocation, and an optional
MAD-based outlier screen that re-measures suspect invocations instead of
silently averaging a corrupted sample in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.seeding import rng_for, run_key


@dataclass(frozen=True)
class RetryPolicy:
    """How the study reacts when the rig misbehaves.

    ``max_retries`` bounds re-runs per invocation (0 = fail fast).
    ``backoff_s`` is the base delay before the first retry, doubled (by
    ``backoff_factor``) per subsequent attempt and capped at
    ``max_backoff_s``; the default of 0 keeps simulated campaigns from
    sleeping.  ``jitter`` spreads each delay by up to that fraction,
    drawn deterministically per site so campaigns stay reproducible.
    ``timeout_budget_s`` caps the *cumulative* simulated seconds an
    invocation may spend hung across all its attempts before the pair is
    given up.  ``outlier_threshold`` (a modified z-score over the
    invocation samples; 3.5 is the classic Iglewicz-Hoaglin cut) enables
    re-measurement of suspect invocations, at most ``max_remeasures`` per
    (benchmark, configuration) pair; ``None`` disables the screen, which
    keeps fault-free campaigns byte-identical to the unscreened protocol.
    """

    max_retries: int = 3
    backoff_s: float = 0.0
    backoff_factor: float = 2.0
    max_backoff_s: float = 2.0
    jitter: float = 0.25
    timeout_budget_s: float = 900.0
    outlier_threshold: float | None = None
    max_remeasures: int = 2

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        if self.backoff_s < 0 or not math.isfinite(self.backoff_s):
            raise ValueError("backoff_s must be finite and non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.timeout_budget_s <= 0:
            raise ValueError("timeout_budget_s must be positive")
        if self.outlier_threshold is not None and self.outlier_threshold <= 0:
            raise ValueError("outlier_threshold must be positive")
        if self.max_remeasures < 0:
            raise ValueError("max_remeasures cannot be negative")

    def delay_for(self, attempt: int, site: str) -> float:
        """Seconds to wait before retry ``attempt`` (1-based) of ``site``.

        Exponential in the attempt, capped, with deterministic jitter so
        two runs of the same campaign pause identically.
        """
        if self.backoff_s <= 0.0:
            return 0.0
        base = min(
            self.backoff_s * self.backoff_factor ** (attempt - 1),
            self.max_backoff_s,
        )
        if self.jitter == 0.0:
            return base
        rng = rng_for(run_key("retry-jitter", site, attempt))
        return base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


#: The harness default: bounded retries, no sleeping, no outlier screen —
#: behaviourally identical to the pre-fault harness when nothing fails.
DEFAULT_RETRY_POLICY = RetryPolicy()
