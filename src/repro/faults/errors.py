"""Typed failure taxonomy of the measurement rig.

The paper's dataset came from a physical setup — Hall-effect sensors, an
AVR logging stick, BIOS-configured machines — and every stage of that rig
can fail: sensors drift or rail, the logger drops samples or disconnects,
a JVM invocation crashes or hangs.  This module names those failures as a
typed hierarchy so the campaign harness can react per class (retry a
crash, quarantine a persistently railing sensor) instead of pattern
matching on strings.

Every error carries the ``site`` that failed — the same
``config/benchmark/invocation`` key the seeding layer uses — so a failure
is attributable to one specific invocation of one benchmark on one
machine.
"""

from __future__ import annotations


class MeasurementError(RuntimeError):
    """Base class for every failure of the simulated measurement rig."""

    #: Stage of the pipeline this class belongs to (sensor/logger/
    #: invocation/meter/campaign); subclasses override.
    stage = "measurement"

    def __init__(self, message: str, site: str = "") -> None:
        super().__init__(message)
        self.site = site


class SensorFault(MeasurementError):
    """The Hall-effect sensor misbehaved (glitch burst, drift, stuck-at)."""

    stage = "sensor"


class LoggerDropout(MeasurementError):
    """The AVR logging stick lost samples or disconnected mid-run."""

    stage = "logger"


class MeterSaturation(MeasurementError):
    """The metered rail saturated hard enough that no usable samples remain."""

    stage = "meter"


class InvocationCrash(MeasurementError):
    """A benchmark invocation died before producing a run (JVM crash,
    OOM kill, segfault in a native binary)."""

    stage = "invocation"


class InvocationTimeout(MeasurementError):
    """A benchmark invocation exceeded its timeout budget (simulated hang).

    ``elapsed_s`` is the simulated wall time spent before the harness gave
    up; no real time passes when the fault is injected.
    """

    stage = "invocation"

    def __init__(self, message: str, site: str = "", elapsed_s: float = 0.0) -> None:
        super().__init__(message, site=site)
        self.elapsed_s = elapsed_s


class RetriesExhausted(MeasurementError):
    """A site kept failing through every allowed retry.

    Carries the final underlying error as ``last_error``; the study turns
    this into a quarantine entry rather than aborting the campaign.
    """

    stage = "campaign"

    def __init__(
        self, message: str, site: str = "", last_error: MeasurementError | None = None
    ) -> None:
        super().__init__(message, site=site)
        self.last_error = last_error


class CheckpointError(MeasurementError):
    """A checkpoint file could not be parsed or applied."""

    stage = "campaign"
