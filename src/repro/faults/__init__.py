"""Fault injection and recovery for the measurement campaign.

The paper's dataset survived a rig that really failed — sensors drifted,
the AVR logging stick dropped samples, JVM invocations crashed and hung —
because the authors quietly re-ran things.  This package makes both
halves of that story explicit and reproducible:

* :mod:`repro.faults.errors` — the typed failure taxonomy
  (:class:`MeasurementError` and its per-stage subclasses);
* :mod:`repro.faults.plan` — declarative, seeded :class:`FaultPlan`
  schedules (what can fail, how often, where);
* :mod:`repro.faults.injector` — the ambient injector the engine, logger,
  and meter consult; deterministic per (seed, kind, site, attempt);
* :mod:`repro.faults.retry` — the :class:`RetryPolicy` the study uses to
  survive it all (bounded retries, backoff + jitter, timeout budgets,
  MAD outlier re-measurement).

See ``docs/robustness.md`` for the full taxonomy and semantics.
"""

from repro.faults.errors import (
    CheckpointError,
    InvocationCrash,
    InvocationTimeout,
    LoggerDropout,
    MeasurementError,
    MeterSaturation,
    RetriesExhausted,
    SensorFault,
)
from repro.faults.injector import (
    COORDINATOR_CRASH_EXIT_CODE,
    FaultInjector,
    active,
    attempt_scope,
    coordinator_fault_point,
    current_attempt,
    injected,
    install,
    shielded,
    uninstall,
)
from repro.faults.plan import (
    COORDINATOR_KINDS,
    COORDINATOR_PHASES,
    CORRUPTING_KINDS,
    FAIL_STOP_KINDS,
    KNOWN_KINDS,
    FaultPlan,
    FaultSpec,
    coordinator_crash_plan,
    demo_plan,
    fail_stop_plan,
    plan_from_arg,
)
from repro.faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy

__all__ = [
    "COORDINATOR_CRASH_EXIT_CODE",
    "COORDINATOR_KINDS",
    "COORDINATOR_PHASES",
    "CORRUPTING_KINDS",
    "CheckpointError",
    "DEFAULT_RETRY_POLICY",
    "FAIL_STOP_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InvocationCrash",
    "InvocationTimeout",
    "KNOWN_KINDS",
    "LoggerDropout",
    "MeasurementError",
    "MeterSaturation",
    "RetriesExhausted",
    "RetryPolicy",
    "SensorFault",
    "active",
    "attempt_scope",
    "coordinator_crash_plan",
    "coordinator_fault_point",
    "current_attempt",
    "demo_plan",
    "fail_stop_plan",
    "injected",
    "install",
    "plan_from_arg",
    "shielded",
    "uninstall",
]
