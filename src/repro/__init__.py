"""repro — a reproduction of "Looking Back on the Language and Hardware
Revolutions: Measured Power, Performance, and Scaling" (ASPLOS 2011).

The library layers as the physical study did:

* :mod:`repro.hardware` — the eight Intel processors (Table 3), their
  structural models, and the 45-point BIOS configuration space;
* :mod:`repro.workloads` — the 61 benchmarks of Table 1 in four
  equally-weighted groups;
* :mod:`repro.runtime` / :mod:`repro.native` — the managed-runtime and
  ahead-of-time toolchain substrates;
* :mod:`repro.execution` — the engine that runs a benchmark on a
  configuration, producing ground-truth time, power phases, and counters;
* :mod:`repro.measurement` — the Hall-effect sensor pipeline (calibration,
  50 Hz logging) through which all power is observed;
* :mod:`repro.core` — the paper's methodology: normalisation, group
  aggregation, confidence intervals, the study harness, Pareto analysis;
* :mod:`repro.experiments` — one module per paper table/figure plus the
  thirteen findings as executable checks.

Quick start::

    from repro import Study, stock, processor

    study = Study(invocation_scale=0.2)          # quick protocol
    results = study.run_config(stock(processor("i7_45")))
    print(results.values("watts"))
"""

from repro.core.normalization import References
from repro.core.results import CampaignHealth, QuarantineEntry, ResultSet, RunResult
from repro.core.study import Study, reset_shared_study, shared_study
from repro.execution.engine import Execution, ExecutionEngine, default_engine
from repro.faults import FaultPlan, FaultSpec, MeasurementError, RetryPolicy
from repro.hardware.catalog import PROCESSORS, processor
from repro.hardware.config import Configuration, stock
from repro.hardware.configurations import (
    all_configurations,
    node_45nm_configurations,
    stock_configurations,
)
from repro.measurement.meter import PowerMeter, meter_for
from repro.workloads.benchmark import Benchmark, Group
from repro.workloads.catalog import BENCHMARKS, benchmark, by_group

__version__ = "1.0.0"

__all__ = [
    "BENCHMARKS",
    "Benchmark",
    "CampaignHealth",
    "Configuration",
    "Execution",
    "ExecutionEngine",
    "FaultPlan",
    "FaultSpec",
    "Group",
    "MeasurementError",
    "PROCESSORS",
    "PowerMeter",
    "QuarantineEntry",
    "References",
    "ResultSet",
    "RetryPolicy",
    "RunResult",
    "Study",
    "all_configurations",
    "benchmark",
    "by_group",
    "default_engine",
    "meter_for",
    "node_45nm_configurations",
    "processor",
    "reset_shared_study",
    "shared_study",
    "stock",
    "stock_configurations",
    "__version__",
]
