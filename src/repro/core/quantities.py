"""Unit-safe scalar quantities used throughout the reproduction.

The paper reasons in four physical dimensions — time, power, energy, and
frequency — plus dimensionless ratios.  Mixing them up (e.g. averaging energy
as if it were power) is the classic failure mode of measurement code, so the
library wraps each dimension in a small value type that permits only the
arithmetic that makes dimensional sense:

* ``Watts * Seconds -> Joules``  (energy = power x time)
* ``Joules / Seconds -> Watts``
* ``Joules / Watts  -> Seconds``
* same-type ``+``/``-``; scaling by plain numbers; same-type ``/`` -> float

The types are deliberately lightweight (frozen dataclasses around a float)
rather than a full units framework: the library needs safety at module
boundaries, not general unit algebra.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

Number = Union[int, float]


@dataclass(frozen=True, slots=True, order=True)
class _Scalar:
    """Shared behaviour for one-dimensional physical quantities."""

    value: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", float(self.value))
        if not self.value == self.value:  # NaN guard
            raise ValueError(f"{type(self).__name__} cannot be NaN")

    def __add__(self, other: "_Scalar") -> "_Scalar":
        self._require_same(other, "add")
        return type(self)(self.value + other.value)

    def __sub__(self, other: "_Scalar") -> "_Scalar":
        self._require_same(other, "subtract")
        return type(self)(self.value - other.value)

    def __mul__(self, factor: Number) -> "_Scalar":
        if isinstance(factor, _Scalar):
            raise TypeError(
                f"cannot multiply {type(self).__name__} by "
                f"{type(factor).__name__}; use the dedicated helpers"
            )
        return type(self)(self.value * float(factor))

    __rmul__ = __mul__

    def __truediv__(self, other: Union["_Scalar", Number]):
        if isinstance(other, type(self)):
            return self.value / other.value
        if isinstance(other, _Scalar):
            raise TypeError(
                f"cannot divide {type(self).__name__} by {type(other).__name__}"
            )
        return type(self)(self.value / float(other))

    def __float__(self) -> float:
        return self.value

    def __bool__(self) -> bool:
        return self.value != 0.0

    def _require_same(self, other: "_Scalar", verb: str) -> None:
        if type(other) is not type(self):
            raise TypeError(
                f"cannot {verb} {type(other).__name__} and {type(self).__name__}"
            )

    def require_positive(self) -> "_Scalar":
        """Return ``self``, raising ``ValueError`` unless strictly positive."""
        if self.value <= 0.0:
            raise ValueError(f"{type(self).__name__} must be positive: {self}")
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.value:g})"


class Seconds(_Scalar):
    """A duration in seconds."""


class Watts(_Scalar):
    """Average or instantaneous power in watts."""


class Joules(_Scalar):
    """Energy in joules."""


class Hertz(_Scalar):
    """Frequency in hertz."""

    @classmethod
    def from_ghz(cls, ghz: Number) -> "Hertz":
        return cls(float(ghz) * 1e9)

    @property
    def ghz(self) -> float:
        return self.value / 1e9

    def cycles_over(self, duration: Seconds) -> float:
        """Number of clock cycles elapsed over ``duration``."""
        return self.value * duration.value


class Volts(_Scalar):
    """Electric potential in volts."""


class Amperes(_Scalar):
    """Electric current in amperes."""


def energy(power: Watts, duration: Seconds) -> Joules:
    """Energy = power x time, the paper's §1 definition."""
    return Joules(power.value * duration.value)


def average_power(total: Joules, duration: Seconds) -> Watts:
    """Average power over a run of known energy and duration."""
    if duration.value <= 0.0:
        raise ValueError("duration must be positive to average power")
    return Watts(total.value / duration.value)


def duration_of(total: Joules, power: Watts) -> Seconds:
    """How long a budget of energy lasts at constant power."""
    if power.value <= 0.0:
        raise ValueError("power must be positive")
    return Seconds(total.value / power.value)


def electrical_power(voltage: Volts, current: Amperes) -> Watts:
    """P = V x I, the conversion done at the 12 V sense point (§2.5)."""
    return Watts(voltage.value * current.value)
