"""Statistics used by the paper's methodology (§2.1, §2.5, §2.6).

The paper reports arithmetic means over repeated executions, 95 % confidence
intervals on time and power (Table 2), and least-squares linear fits with an
R² quality criterion for sensor calibration (§2.5).  This module implements
those primitives on plain sequences of floats so every substrate can share
them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as _scipy_stats


def mean(samples: Sequence[float]) -> float:
    """Arithmetic mean; raises on an empty sample set."""
    if len(samples) == 0:
        raise ValueError("mean of empty sample set")
    return float(np.mean(np.asarray(samples, dtype=float)))


def sample_std(samples: Sequence[float]) -> float:
    """Unbiased (n-1) sample standard deviation; zero for a single sample."""
    if len(samples) == 0:
        raise ValueError("std of empty sample set")
    if len(samples) == 1:
        return 0.0
    return float(np.std(np.asarray(samples, dtype=float), ddof=1))


@dataclass(frozen=True, slots=True)
class ConfidenceInterval:
    """A two-sided confidence interval around a sample mean."""

    mean: float
    half_width: float
    confidence: float
    n: int

    @property
    def lower(self) -> float:
        return self.mean - self.half_width

    @property
    def upper(self) -> float:
        return self.mean + self.half_width

    @property
    def relative_error(self) -> float:
        """Half-width as a fraction of the mean — the quantity in Table 2."""
        if self.mean == 0.0:
            return 0.0
        return abs(self.half_width / self.mean)

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper


def confidence_interval(
    samples: Sequence[float], confidence: float = 0.95
) -> ConfidenceInterval:
    """Student-t confidence interval for the mean of ``samples``.

    The paper reports 95 % intervals aggregated over benchmarks and
    configurations (Table 2).  With a single sample the half-width is zero by
    convention (no dispersion information).
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1): {confidence}")
    n = len(samples)
    centre = mean(samples)
    if n == 1:
        return ConfidenceInterval(mean=centre, half_width=0.0, confidence=confidence, n=1)
    std_err = sample_std(samples) / math.sqrt(n)
    t_crit = float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    return ConfidenceInterval(
        mean=centre, half_width=t_crit * std_err, confidence=confidence, n=n
    )


@dataclass(frozen=True, slots=True)
class LinearFit:
    """A least-squares line ``y = slope * x + intercept`` with fit quality."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept

    def invert(self, y: float) -> float:
        """Solve ``y = slope * x + intercept`` for ``x``.

        Used by sensor calibration to map logged codes back to current.
        """
        if abs(self.slope) < 1e-12:
            raise ValueError("cannot invert a flat fit")
        return (y - self.intercept) / self.slope


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Least-squares linear fit, as used for sensor calibration (§2.5).

    The paper records 28 reference currents and their sensor codes, fits a
    line per sensor, and requires R² of 0.999 or better.
    """
    if len(xs) != len(ys):
        raise ValueError("x and y sample counts differ")
    if len(xs) < 2:
        raise ValueError("need at least two points for a linear fit")
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    r_squared = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot
    return LinearFit(slope=float(slope), intercept=float(intercept), r_squared=r_squared)


def median_abs_deviation(samples: Sequence[float]) -> float:
    """Median absolute deviation from the median (unscaled)."""
    if len(samples) == 0:
        raise ValueError("MAD of empty sample set")
    arr = np.asarray(samples, dtype=float)
    return float(np.median(np.abs(arr - np.median(arr))))


#: Consistency constant mapping MAD to the normal sigma (Iglewicz-Hoaglin).
_MAD_TO_SIGMA = 0.6745


def mad_outlier_indices(
    samples: Sequence[float], threshold: float = 3.5
) -> tuple[int, ...]:
    """Indices whose modified z-score ``0.6745 * |x - med| / MAD`` exceeds
    ``threshold`` — the robust screen the study uses to spot invocations a
    sensor glitch or saturation burst has corrupted.

    A zero MAD (at least half the samples identical) yields no outliers:
    with the majority in exact agreement there is no robust scale to
    judge deviation against, and flagging everything else would turn the
    screen into a trigger-happy re-measure loop.  Fewer than four samples
    also yield none (the median of three is too easily dragged).
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    if len(samples) < 4:
        return ()
    arr = np.asarray(samples, dtype=float)
    mad = median_abs_deviation(arr)
    if mad == 0.0:
        return ()
    scores = _MAD_TO_SIGMA * np.abs(arr - np.median(arr)) / mad
    return tuple(int(i) for i in np.flatnonzero(scores > threshold))


def geometric_mean(samples: Sequence[float]) -> float:
    """Geometric mean of strictly positive samples.

    Not used for the paper's headline aggregates (which are arithmetic over
    normalised scores) but provided for sensitivity analyses.
    """
    if len(samples) == 0:
        raise ValueError("geometric mean of empty sample set")
    arr = np.asarray(samples, dtype=float)
    if np.any(arr <= 0.0):
        raise ValueError("geometric mean requires positive samples")
    return float(np.exp(np.mean(np.log(arr))))


def relative_range(samples: Sequence[float]) -> float:
    """(max - min) / min — e.g. the ~30 % min-to-max power spread on Atom."""
    if len(samples) == 0:
        raise ValueError("relative range of empty sample set")
    low = min(samples)
    if low <= 0.0:
        raise ValueError("relative range requires positive samples")
    return (max(samples) - low) / low
