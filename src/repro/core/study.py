"""Campaign orchestration: running the paper's measurement study.

A :class:`Study` binds the execution engine, the per-machine power meters,
and the normalisation references, and runs benchmarks over configurations
following the paper's measurement protocol (3/5 executions for native,
20 JVM invocations reporting the fifth iteration for Java), producing a
:class:`~repro.core.results.ResultSet`.

Results are cached per (benchmark, configuration), so experiments that
share configurations (most of §3's feature analyses share the stock
settings) pay for each measurement once.  The cache keys by the benchmark
*value* — not its name — for the same reason the engine's instruction
cache does: synthetic workloads may share a name while differing in
signature, and a name-keyed cache would silently hand one workload the
other's measurements.

The study is the natural place to account for the campaign, so it is
instrumented: cache hits/misses and invocations feed the process metrics
registry, each uncached measurement runs under a ``study.measure`` span,
and an optional :class:`~repro.obs.progress.ProgressReporter` receives one
tick per invocation (scaled counts under ``invocation_scale``).
"""

from __future__ import annotations

import math
import time
from typing import Iterable, Optional, Sequence

from repro.core.normalization import References
from repro.core.results import ResultSet, RunResult
from repro.core.statistics import confidence_interval
from repro.execution.engine import ExecutionEngine
from repro.hardware.config import Configuration
from repro.hardware.processor import ProcessorSpec
from repro.measurement.meter import PowerMeter, meter_for
from repro.obs.metrics import default_registry
from repro.obs.progress import ProgressReporter
from repro.obs.tracing import default_tracer
from repro.runtime.methodology import MeasurementProtocol, protocol_for
from repro.workloads.benchmark import Benchmark
from repro.workloads.catalog import BENCHMARKS

_REGISTRY = default_registry()
_CACHE_HITS = _REGISTRY.counter(
    "repro_study_cache_hits_total",
    "Measurements answered from the study's result cache",
)
_CACHE_MISSES = _REGISTRY.counter(
    "repro_study_cache_misses_total",
    "Measurements that had to be performed",
)
_INVOCATIONS = _REGISTRY.counter(
    "repro_study_invocations_total",
    "Individual benchmark invocations executed and metered",
)
_MEASURE_SECONDS = _REGISTRY.histogram(
    "repro_measure_seconds",
    "Latency of one uncached Study.measure (all invocations)",
)


class Study:
    """The measurement campaign harness.

    ``invocation_scale`` proportionally reduces the protocol's repetition
    counts (floored at one) for quick exploratory sweeps; the default of
    1.0 is the paper's full protocol.  ``progress`` receives one tick per
    invocation; ``instrument=False`` takes a telemetry-free path through
    ``measure`` — no counters, spans, or clock reads — which is what the
    overhead benchmark baselines against.
    """

    def __init__(
        self,
        engine: Optional[ExecutionEngine] = None,
        references: Optional[References] = None,
        invocation_scale: float = 1.0,
        benchmarks: Sequence[Benchmark] = BENCHMARKS,
        progress: Optional[ProgressReporter] = None,
        instrument: bool = True,
    ) -> None:
        if invocation_scale <= 0:
            raise ValueError("invocation scale must be positive")
        self._references = references or References(engine)
        self._engine = self._references.engine
        self._scale = invocation_scale
        self._benchmarks = tuple(benchmarks)
        self._progress = progress
        self._instrument = instrument
        self._cache: dict[tuple[Benchmark, str], RunResult] = {}
        # Memoised per-benchmark protocol and per-machine meter lookups:
        # a 61x45 sweep re-derives neither inside the measurement loop.
        self._protocols: dict[Benchmark, MeasurementProtocol] = {}
        self._meters: dict[str, PowerMeter] = {}

    @property
    def engine(self) -> ExecutionEngine:
        return self._engine

    @property
    def references(self) -> References:
        return self._references

    @property
    def benchmarks(self) -> tuple[Benchmark, ...]:
        return self._benchmarks

    @property
    def progress(self) -> Optional[ProgressReporter]:
        return self._progress

    # -- caching / planning ----------------------------------------------------

    def clear_cache(self) -> None:
        """Evict every cached result (measurements are pure, so a re-run
        reproduces the identical dataset)."""
        self._cache.clear()

    def is_cached(self, benchmark: Benchmark, config: Configuration) -> bool:
        return (benchmark, config.key) in self._cache

    def scaled_invocations(self, benchmark: Benchmark) -> int:
        """Protocol repetitions after ``invocation_scale`` (floored at 1)."""
        protocol = self._protocol(benchmark)
        return max(1, math.ceil(protocol.invocations * self._scale))

    def planned_invocations(
        self,
        configurations: Iterable[Configuration],
        benchmarks: Optional[Sequence[Benchmark]] = None,
    ) -> int:
        """Invocations a sweep would actually execute (uncached pairs only)."""
        chosen = tuple(benchmarks) if benchmarks is not None else self._benchmarks
        return sum(
            self.scaled_invocations(benchmark)
            for config in configurations
            for benchmark in chosen
            if not self.is_cached(benchmark, config)
        )

    def _protocol(self, benchmark: Benchmark) -> MeasurementProtocol:
        protocol = self._protocols.get(benchmark)
        if protocol is None:
            protocol = protocol_for(benchmark)
            self._protocols[benchmark] = protocol
        return protocol

    def _meter(self, spec: ProcessorSpec) -> PowerMeter:
        meter = self._meters.get(spec.key)
        if meter is None:
            meter = meter_for(spec)
            self._meters[spec.key] = meter
        return meter

    # -- measurement ----------------------------------------------------------

    def measure(self, benchmark: Benchmark, config: Configuration) -> RunResult:
        """Measure one benchmark on one configuration (cached)."""
        cache_key = (benchmark, config.key)
        cached = self._cache.get(cache_key)
        if cached is not None:
            if self._instrument:
                _CACHE_HITS.inc()
            return cached
        if not self._instrument:
            # The uninstrumented-equivalent path: no counters, no span, no
            # clock reads — what the overhead benchmark baselines against.
            result = self._measure_uncached(benchmark, config)
            self._cache[cache_key] = result
            return result
        _CACHE_MISSES.inc()
        with default_tracer().span(
            "study.measure", benchmark=benchmark.name, config=config.key
        ) as span:
            started = time.perf_counter()
            result = self._measure_uncached(benchmark, config)
            span.set_attribute("invocations", result.invocations)
            span.set_attribute("seconds", round(result.seconds, 6))
            _MEASURE_SECONDS.observe(time.perf_counter() - started)
        self._cache[cache_key] = result
        return result

    def _measure_uncached(
        self, benchmark: Benchmark, config: Configuration
    ) -> RunResult:
        protocol = self._protocol(benchmark)
        invocations = self.scaled_invocations(benchmark)
        meter = self._meter(config.spec)

        times: list[float] = []
        powers: list[float] = []
        for invocation in range(invocations):
            execution = self._engine.execute(
                benchmark, config,
                invocation=invocation,
                iteration=protocol.iteration,
            )
            measurement = meter.measure(
                execution,
                run_salt=f"{config.key}/{benchmark.name}/{invocation}",
            )
            times.append(execution.seconds.value)
            powers.append(measurement.average_watts)
            if self._progress is not None:
                self._progress.advance()
        if self._instrument:
            _INVOCATIONS.inc(invocations)

        time_ci = confidence_interval(times)
        power_ci = confidence_interval(powers)
        seconds = time_ci.mean
        watts = power_ci.mean
        return RunResult(
            benchmark_name=benchmark.name,
            group=benchmark.group,
            processor_key=config.spec.key,
            config_key=config.key,
            seconds=seconds,
            watts=watts,
            speedup=self._references.speedup(benchmark, seconds),
            normalized_energy=self._references.normalized_energy(
                benchmark, seconds * watts
            ),
            time_ci=time_ci,
            power_ci=power_ci,
            invocations=invocations,
        )

    def run(
        self,
        configurations: Iterable[Configuration],
        benchmarks: Optional[Sequence[Benchmark]] = None,
    ) -> ResultSet:
        """Measure every benchmark on every configuration.

        Cached pairs take a fast path that touches nothing but the cache
        dict (no protocol/meter derivation, no span); only actual misses
        enter :meth:`measure`'s measurement machinery.
        """
        chosen = tuple(benchmarks) if benchmarks is not None else self._benchmarks
        pairs = [
            (benchmark, config)
            for config in configurations
            for benchmark in chosen
        ]
        if self._progress is not None:
            self._progress.extend_total(
                sum(
                    self.scaled_invocations(b)
                    for b, c in pairs
                    if not self.is_cached(b, c)
                )
            )
        results: list[RunResult] = []
        for benchmark, config in pairs:
            cached = self._cache.get((benchmark, config.key))
            if cached is not None:
                if self._instrument:
                    _CACHE_HITS.inc()
                results.append(cached)
            else:
                results.append(self.measure(benchmark, config))
        return ResultSet(results)

    def run_config(
        self,
        configuration: Configuration,
        benchmarks: Optional[Sequence[Benchmark]] = None,
    ) -> ResultSet:
        """Measure one configuration across benchmarks."""
        return self.run((configuration,), benchmarks)


_SHARED_STUDY: Optional[Study] = None


def shared_study() -> Study:
    """A process-wide full-protocol study (shared cache across
    experiments, exactly like the paper's single physical dataset)."""
    global _SHARED_STUDY
    if _SHARED_STUDY is None:
        _SHARED_STUDY = Study()
    return _SHARED_STUDY
