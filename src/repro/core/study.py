"""Campaign orchestration: running the paper's measurement study.

A :class:`Study` binds the execution engine, the per-machine power meters,
and the normalisation references, and runs benchmarks over configurations
following the paper's measurement protocol (3/5 executions for native,
20 JVM invocations reporting the fifth iteration for Java), producing a
:class:`~repro.core.results.ResultSet`.

Results are cached per (benchmark, configuration), so experiments that
share configurations (most of §3's feature analyses share the stock
settings) pay for each measurement once.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

from repro.core.normalization import References
from repro.core.results import ResultSet, RunResult
from repro.core.statistics import confidence_interval
from repro.execution.engine import ExecutionEngine
from repro.hardware.config import Configuration
from repro.measurement.meter import meter_for
from repro.runtime.methodology import protocol_for
from repro.workloads.benchmark import Benchmark
from repro.workloads.catalog import BENCHMARKS


class Study:
    """The measurement campaign harness.

    ``invocation_scale`` proportionally reduces the protocol's repetition
    counts (floored at one) for quick exploratory sweeps; the default of
    1.0 is the paper's full protocol.
    """

    def __init__(
        self,
        engine: Optional[ExecutionEngine] = None,
        references: Optional[References] = None,
        invocation_scale: float = 1.0,
        benchmarks: Sequence[Benchmark] = BENCHMARKS,
    ) -> None:
        if invocation_scale <= 0:
            raise ValueError("invocation scale must be positive")
        self._references = references or References(engine)
        self._engine = self._references.engine
        self._scale = invocation_scale
        self._benchmarks = tuple(benchmarks)
        self._cache: dict[tuple[str, str], RunResult] = {}

    @property
    def engine(self) -> ExecutionEngine:
        return self._engine

    @property
    def references(self) -> References:
        return self._references

    @property
    def benchmarks(self) -> tuple[Benchmark, ...]:
        return self._benchmarks

    # -- measurement ----------------------------------------------------------

    def measure(self, benchmark: Benchmark, config: Configuration) -> RunResult:
        """Measure one benchmark on one configuration (cached)."""
        cache_key = (benchmark.name, config.key)
        cached = self._cache.get(cache_key)
        if cached is not None:
            return cached

        protocol = protocol_for(benchmark)
        invocations = max(1, math.ceil(protocol.invocations * self._scale))
        meter = meter_for(config.spec)

        times: list[float] = []
        powers: list[float] = []
        for invocation in range(invocations):
            execution = self._engine.execute(
                benchmark, config,
                invocation=invocation,
                iteration=protocol.iteration,
            )
            measurement = meter.measure(
                execution,
                run_salt=f"{config.key}/{benchmark.name}/{invocation}",
            )
            times.append(execution.seconds.value)
            powers.append(measurement.average_watts)

        time_ci = confidence_interval(times)
        power_ci = confidence_interval(powers)
        seconds = time_ci.mean
        watts = power_ci.mean
        result = RunResult(
            benchmark_name=benchmark.name,
            group=benchmark.group,
            processor_key=config.spec.key,
            config_key=config.key,
            seconds=seconds,
            watts=watts,
            speedup=self._references.speedup(benchmark, seconds),
            normalized_energy=self._references.normalized_energy(
                benchmark, seconds * watts
            ),
            time_ci=time_ci,
            power_ci=power_ci,
            invocations=invocations,
        )
        self._cache[cache_key] = result
        return result

    def run(
        self,
        configurations: Iterable[Configuration],
        benchmarks: Optional[Sequence[Benchmark]] = None,
    ) -> ResultSet:
        """Measure every benchmark on every configuration."""
        chosen = tuple(benchmarks) if benchmarks is not None else self._benchmarks
        results = [
            self.measure(benchmark, config)
            for config in configurations
            for benchmark in chosen
        ]
        return ResultSet(results)

    def run_config(
        self,
        configuration: Configuration,
        benchmarks: Optional[Sequence[Benchmark]] = None,
    ) -> ResultSet:
        """Measure one configuration across benchmarks."""
        return self.run((configuration,), benchmarks)


_SHARED_STUDY: Optional[Study] = None


def shared_study() -> Study:
    """A process-wide full-protocol study (shared cache across
    experiments, exactly like the paper's single physical dataset)."""
    global _SHARED_STUDY
    if _SHARED_STUDY is None:
        _SHARED_STUDY = Study()
    return _SHARED_STUDY
