"""Campaign orchestration: running the paper's measurement study.

A :class:`Study` binds the execution engine, the per-machine power meters,
and the normalisation references, and runs benchmarks over configurations
following the paper's measurement protocol (3/5 executions for native,
20 JVM invocations reporting the fifth iteration for Java), producing a
:class:`~repro.core.results.ResultSet`.

Results are cached per (benchmark, configuration), so experiments that
share configurations (most of §3's feature analyses share the stock
settings) pay for each measurement once.  The cache keys by the benchmark
*value* — not its name — for the same reason the engine's instruction
cache does: synthetic workloads may share a name while differing in
signature, and a name-keyed cache would silently hand one workload the
other's measurements.

The study is also the campaign's *survival* layer.  The paper's physical
rig really failed — invocations crashed and hung, the logger disconnected
— and the authors silently re-ran them; here that recovery is explicit:
each invocation runs under a bounded :class:`~repro.faults.RetryPolicy`
(exponential backoff + jitter, a cumulative simulated-timeout budget),
suspect invocations can be re-measured via a MAD outlier screen, pairs
that exhaust their retries are quarantined instead of aborting the sweep,
``run()`` returns a partial :class:`ResultSet` carrying a
:class:`~repro.core.results.CampaignHealth` report, and an optional JSONL
checkpoint lets an interrupted campaign resume where it stopped.

The study is the natural place to account for the campaign, so it is
instrumented: cache hits/misses, invocations, retries, quarantines, and
checkpoint restores feed the process metrics registry, each uncached
measurement runs under a ``study.measure`` span, and an optional
:class:`~repro.obs.progress.ProgressReporter` receives one tick per
invocation (scaled counts under ``invocation_scale``).
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path
from typing import Iterable, Mapping, Optional, Sequence, Union

from repro.core.normalization import References
from repro.core.results import (
    CampaignHealth,
    QuarantineEntry,
    ResultSet,
    RunResult,
)
from repro.core.statistics import confidence_interval, mad_outlier_indices
from repro.execution import kernels as _kernels
from repro.execution.engine import ExecutionEngine
from repro.faults.errors import (
    InvocationTimeout,
    MeasurementError,
    RetriesExhausted,
)
from repro.faults.injector import active as _faults_active, attempt_scope
from repro.faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.hardware.config import Configuration
from repro.hardware.processor import ProcessorSpec
from repro.measurement.meter import PowerMeter, meter_for
from repro.obs.metrics import default_registry, enabled as _metrics_enabled
from repro.obs.progress import ProgressReporter
from repro.obs.tracing import current_span_id, default_tracer
from repro.runtime.methodology import MeasurementProtocol, protocol_for
from repro.workloads.benchmark import Benchmark
from repro.workloads.catalog import BENCHMARKS, BENCHMARKS_BY_NAME

_REGISTRY = default_registry()
_CACHE_HITS = _REGISTRY.counter(
    "repro_study_cache_hits_total",
    "Measurements answered from the study's result cache",
)
_CACHE_MISSES = _REGISTRY.counter(
    "repro_study_cache_misses_total",
    "Measurements that had to be performed",
)
_INVOCATIONS = _REGISTRY.counter(
    "repro_study_invocations_total",
    "Individual benchmark invocations executed and metered",
)
_MEASURE_SECONDS = _REGISTRY.histogram(
    "repro_measure_seconds",
    "Latency of one uncached Study.measure (all invocations)",
)
_RETRIES = _REGISTRY.counter(
    "repro_study_retries_total",
    "Invocation retries after a measurement-pipeline failure",
)
_QUARANTINED = _REGISTRY.counter(
    "repro_study_quarantined_pairs_total",
    "(benchmark, configuration) pairs quarantined after exhausting retries",
)
_REMEASURES = _REGISTRY.counter(
    "repro_study_outlier_remeasures_total",
    "Invocations re-measured after the MAD outlier screen flagged them",
)
_RESTORED = _REGISTRY.counter(
    "repro_study_checkpoint_restores_total",
    "Cache entries restored from a checkpoint file",
)
_CACHE_EVICTIONS = _REGISTRY.counter(
    "repro_study_cache_evictions_total",
    "Results evicted from a capacity-bounded study cache (LRU order)",
)


class _Stats:
    """Lifetime failure accounting for one study; ``run`` snapshots it to
    build per-campaign :class:`CampaignHealth` deltas.

    ``events`` keeps every failure's type name in observation order: pool
    workers slice it per pair so the parent can replay failures at each
    pair's position and reproduce the sequential campaign's failure-dict
    insertion order exactly."""

    __slots__ = ("retries", "remeasures", "failures", "events")

    def __init__(self) -> None:
        self.retries = 0
        self.remeasures = 0
        self.failures: dict[str, int] = {}
        self.events: list[str] = []

    def record_failure(self, error: MeasurementError) -> None:
        self.record_failure_name(type(error).__name__)

    def record_failure_name(self, name: str) -> None:
        self.failures[name] = self.failures.get(name, 0) + 1
        self.events.append(name)

    def snapshot(self) -> tuple[int, int, dict[str, int]]:
        return self.retries, self.remeasures, dict(self.failures)


class Study:
    """The measurement campaign harness.

    ``invocation_scale`` proportionally reduces the protocol's repetition
    counts (floored at one) for quick exploratory sweeps; the default of
    1.0 is the paper's full protocol.  ``progress`` receives one tick per
    invocation; ``instrument=False`` takes a telemetry-free path through
    ``measure`` — no counters, spans, or clock reads — which is what the
    overhead benchmark baselines against.  ``retry`` governs recovery
    from measurement failures (the default retries each invocation up to
    three times without sleeping); ``checkpoint_path`` appends every new
    result to a JSONL file so a killed campaign can
    :meth:`restore_checkpoint` and continue where it stopped.

    ``jobs`` shards sweeps across a process pool: ``None`` (the default)
    runs in-process, an integer pins the worker count, and ``"auto"``
    (or 0) uses the machine's CPU count.  Because every measurement is
    pure and keyed by deterministic per-site seeds, a parallel ``run()``
    returns results, health, and checkpoint bytes identical to the
    sequential path at any worker count (see docs/performance.md).

    ``cache_capacity`` bounds the in-memory result cache: once more than
    that many pairs are cached, the least-recently-used result is
    evicted (and counted in ``repro_study_cache_evictions_total``).
    Because measurements are pure, an evicted pair re-measures to the
    byte-identical result; the cap trades repeat work for bounded memory
    in long-lived processes such as the campaign server.  ``None`` (the
    default) keeps the cache unbounded, exactly as before.

    ``reuse_pool`` keeps the parallel sweep's worker pool alive between
    ``run()``/``run_pairs()`` calls instead of tearing it down per sweep
    — again a long-lived-process affordance; call :meth:`close_pool`
    (or rely on process exit) to release the workers.

    ``supervised`` routes parallel sweeps through the
    :class:`~repro.service.fleet.FleetSupervisor` instead of the plain
    process pool: long-lived workers with ``heartbeat_s``-spaced
    heartbeats, declared dead after ``liveness_misses`` missed beats,
    respawned, and their in-flight chunk requeued — same bytes as the
    pool and sequential paths, but the sweep survives worker crashes,
    hangs, and slow-death.  Falls back to the pool path when no fleet
    can be spawned.
    """

    def __init__(
        self,
        engine: Optional[ExecutionEngine] = None,
        references: Optional[References] = None,
        invocation_scale: float = 1.0,
        benchmarks: Sequence[Benchmark] = BENCHMARKS,
        progress: Optional[ProgressReporter] = None,
        instrument: bool = True,
        retry: Optional[RetryPolicy] = None,
        checkpoint_path: Optional[Path | str] = None,
        jobs: Optional[Union[int, str]] = None,
        cache_capacity: Optional[int] = None,
        reuse_pool: bool = False,
        supervised: bool = False,
        heartbeat_s: float = 0.25,
        liveness_misses: int = 4,
        vectorize: Optional[bool] = None,
    ) -> None:
        if not math.isfinite(invocation_scale) or invocation_scale <= 0:
            raise ValueError(
                f"invocation scale must be positive and finite, "
                f"got {invocation_scale!r}"
            )
        if cache_capacity is not None and cache_capacity < 1:
            raise ValueError(
                f"cache capacity must be >= 1 (or None for unbounded), "
                f"got {cache_capacity!r}"
            )
        self._references = references or References(engine)
        self._engine = self._references.engine
        self._scale = invocation_scale
        self._benchmarks = tuple(benchmarks)
        self._progress = progress
        self._instrument = instrument
        self._retry = retry or DEFAULT_RETRY_POLICY
        self._checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        self._jobs = jobs
        self._cache_capacity = cache_capacity
        self._reuse_pool = reuse_pool
        self._pool = None  # lazily created when reuse_pool is set
        self._supervised = supervised
        self._heartbeat_s = heartbeat_s
        self._liveness_misses = liveness_misses
        self._fleet = None  # lazily created on the supervised path
        # ``vectorize`` routes fault-free pairs through compiled sweep
        # kernels (:mod:`repro.execution.kernels`) — byte-identical
        # results, one numpy pass per pair.  ``None`` defers to the
        # REPRO_SWEEP_KERNELS env switch (on unless explicitly "0"/"off"/
        # "false"/"no"), so CI and the benchmark can pin either path.
        if vectorize is None:
            env = os.environ.get("REPRO_SWEEP_KERNELS", "").strip().lower()
            vectorize = env not in ("0", "off", "false", "no")
        self._vectorize = bool(vectorize)
        self._cache: dict[tuple[Benchmark, str], RunResult] = {}
        self._restored_keys: set[tuple[Benchmark, str]] = set()
        self._quarantine: dict[tuple[Benchmark, str], QuarantineEntry] = {}
        self._stats = _Stats()
        # Memoised per-benchmark protocol and per-machine meter lookups:
        # a 61x45 sweep re-derives neither inside the measurement loop.
        self._protocols: dict[Benchmark, MeasurementProtocol] = {}
        self._meters: dict[str, PowerMeter] = {}

    @property
    def engine(self) -> ExecutionEngine:
        return self._engine

    @property
    def references(self) -> References:
        return self._references

    @property
    def benchmarks(self) -> tuple[Benchmark, ...]:
        return self._benchmarks

    @property
    def progress(self) -> Optional[ProgressReporter]:
        return self._progress

    @property
    def retry_policy(self) -> RetryPolicy:
        return self._retry

    @property
    def vectorize(self) -> bool:
        """Whether fault-free pairs run through compiled sweep kernels."""
        return self._vectorize

    @property
    def quarantined(self) -> tuple[QuarantineEntry, ...]:
        """Pairs that exhausted their retries, in quarantine order."""
        return tuple(self._quarantine.values())

    # -- caching / planning ----------------------------------------------------

    @property
    def cache_capacity(self) -> Optional[int]:
        return self._cache_capacity

    @property
    def cached_pairs(self) -> int:
        """Results currently held in the in-memory cache."""
        return len(self._cache)

    def clear_cache(self) -> None:
        """Evict every cached result (measurements are pure, so a re-run
        reproduces the identical dataset)."""
        self._cache.clear()
        self._restored_keys.clear()

    def _cache_get(
        self, key: tuple[Benchmark, str]
    ) -> Optional[RunResult]:
        """Cache lookup that refreshes LRU recency on a hit.

        The cache dict's insertion order doubles as the recency order:
        re-inserting a hit key moves it to the far (young) end, so
        eviction can always take the dict's first key."""
        result = self._cache.get(key)
        if result is not None and self._cache_capacity is not None:
            self._cache[key] = self._cache.pop(key)
        return result

    def _cache_store(self, key: tuple[Benchmark, str], result: RunResult) -> None:
        """Insert one result, evicting the least-recently-used entries
        past ``cache_capacity`` (unbounded when the capacity is None)."""
        self._cache[key] = result
        if self._cache_capacity is None:
            return
        while len(self._cache) > self._cache_capacity:
            oldest = next(iter(self._cache))
            del self._cache[oldest]
            self._restored_keys.discard(oldest)
            if self._instrument:
                _CACHE_EVICTIONS.inc()

    def clear_quarantine(self) -> None:
        """Give quarantined pairs another chance on the next sweep."""
        self._quarantine.clear()

    def is_cached(self, benchmark: Benchmark, config: Configuration) -> bool:
        return (benchmark, config.key) in self._cache

    def is_quarantined(self, benchmark: Benchmark, config: Configuration) -> bool:
        return (benchmark, config.key) in self._quarantine

    def scaled_invocations(self, benchmark: Benchmark) -> int:
        """Protocol repetitions after ``invocation_scale`` (floored at 1)."""
        protocol = self._protocol(benchmark)
        return max(1, math.ceil(protocol.invocations * self._scale))

    def planned_invocations(
        self,
        configurations: Iterable[Configuration],
        benchmarks: Optional[Sequence[Benchmark]] = None,
    ) -> int:
        """Invocations a sweep would actually execute (uncached,
        unquarantined pairs only)."""
        chosen = tuple(benchmarks) if benchmarks is not None else self._benchmarks
        return sum(
            self.scaled_invocations(benchmark)
            for config in configurations
            for benchmark in chosen
            if not self.is_cached(benchmark, config)
            and not self.is_quarantined(benchmark, config)
        )

    def _protocol(self, benchmark: Benchmark) -> MeasurementProtocol:
        protocol = self._protocols.get(benchmark)
        if protocol is None:
            protocol = protocol_for(benchmark)
            self._protocols[benchmark] = protocol
        return protocol

    def _meter(self, spec: ProcessorSpec) -> PowerMeter:
        meter = self._meters.get(spec.key)
        if meter is None:
            meter = meter_for(spec)
            self._meters[spec.key] = meter
        return meter

    # -- checkpointing ---------------------------------------------------------

    def enable_checkpoint(self, path: Path | str) -> None:
        """Start appending every newly measured result to ``path``."""
        self._checkpoint_path = Path(path)

    def save_checkpoint(self, path: Path | str) -> Path:
        """Write the entire result cache as one JSONL checkpoint.

        Records are emitted in sorted (benchmark, configuration) order,
        so the file's bytes are independent of the order the cache was
        populated in — the same dataset produces the same checkpoint
        whether it was measured sequentially, in parallel, or resumed."""
        out = Path(path)
        ordered = sorted(self._cache, key=lambda key: (key[0].name, key[1]))
        with out.open("w", encoding="utf-8") as fh:
            for key in ordered:
                fh.write(json.dumps(self._cache[key].as_record()) + "\n")
        return out

    def restore_checkpoint(self, path: Path | str) -> int:
        """Load a JSONL checkpoint into the result cache.

        Returns the number of entries restored.  Records for benchmarks
        this study does not know (e.g. synthetics from another session)
        and malformed trailing lines — the expected residue of a campaign
        killed mid-write — are skipped, not fatal: a checkpoint is a
        cache, and the worst a skipped line costs is one re-measurement.
        """
        results = []
        with Path(path).open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    results.append(RunResult.from_record(json.loads(line)))
                except (ValueError, KeyError, TypeError):
                    continue  # truncated / malformed line: re-measure instead
        return self.restore_records(results)

    def restore_records(self, records: Iterable[RunResult]) -> int:
        """Load pre-measured results straight into the result cache.

        The warm-start primitive shared by :meth:`restore_checkpoint` and
        the campaign server's persistent store: records for unknown
        benchmarks are skipped, already-cached pairs keep their existing
        result, and restored pairs are accounted as ``restored`` (not
        ``cached``) in later campaign health reports.  Returns the number
        of entries actually restored."""
        by_name = {b.name: b for b in self._benchmarks}
        restored = 0
        for result in records:
            benchmark = by_name.get(result.benchmark_name) or (
                BENCHMARKS_BY_NAME.get(result.benchmark_name)
            )
            if benchmark is None:
                continue
            key = (benchmark, result.config_key)
            if key not in self._cache:
                self._cache_store(key, result)
                self._restored_keys.add(key)
                restored += 1
        if self._instrument and restored:
            _RESTORED.inc(restored)
        return restored

    def _checkpoint_append(self, result: RunResult) -> None:
        if self._checkpoint_path is None:
            return
        with self._checkpoint_path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(result.as_record()) + "\n")

    # -- measurement ----------------------------------------------------------

    def measure(self, benchmark: Benchmark, config: Configuration) -> RunResult:
        """Measure one benchmark on one configuration (cached).

        Raises :class:`~repro.faults.RetriesExhausted` if an invocation
        keeps failing through the retry policy, or immediately if the
        pair is already quarantined; ``run()`` turns both into quarantine
        entries instead of propagating.
        """
        cache_key = (benchmark, config.key)
        cached = self._cache_get(cache_key)
        if cached is not None:
            if self._instrument:
                _CACHE_HITS.inc()
            return cached
        entry = self._quarantine.get(cache_key)
        if entry is not None:
            raise RetriesExhausted(
                f"{benchmark.name} @ {config.key} is quarantined: {entry.reason}",
                site=f"{config.key}/{benchmark.name}",
            )
        if not self._instrument:
            # The uninstrumented-equivalent path: no counters, no span, no
            # clock reads — what the overhead benchmark baselines against.
            result = self._measure_uncached(benchmark, config)
            self._cache_store(cache_key, result)
            self._checkpoint_append(result)
            return result
        _CACHE_MISSES.inc()
        retries_before = self._stats.retries
        remeasures_before = self._stats.remeasures
        with default_tracer().span(
            "study.measure", benchmark=benchmark.name, config=config.key
        ) as span:
            started = time.perf_counter()
            result = self._measure_uncached(benchmark, config)
            span.set_attribute("invocations", result.invocations)
            span.set_attribute("seconds", round(result.seconds, 6))
            retries = self._stats.retries - retries_before
            remeasures = self._stats.remeasures - remeasures_before
            if retries:
                span.set_attribute("retries", retries)
            if remeasures:
                span.set_attribute("outlier_remeasures", remeasures)
            _MEASURE_SECONDS.observe(time.perf_counter() - started)
        self._cache_store(cache_key, result)
        self._checkpoint_append(result)
        return result

    def _metered_invocation(
        self,
        benchmark: Benchmark,
        config: Configuration,
        index: int,
        protocol: MeasurementProtocol,
        meter: PowerMeter,
    ) -> tuple[float, float]:
        """One invocation through engine and meter, with bounded retries.

        The site key doubles as the run salt, so measurement noise is a
        function of the site alone while injected-fault decisions also see
        the attempt (via :func:`~repro.faults.injector.attempt_scope`):
        a recovered fail-stop fault reproduces the fault-free measurement
        exactly.  Returns ``(seconds, average_watts)``.
        """
        site = f"{config.key}/{benchmark.name}/{index}"
        policy = self._retry
        hung_s = 0.0
        attempt = 0
        while True:
            try:
                with attempt_scope(attempt):
                    execution = self._engine.execute(
                        benchmark, config,
                        invocation=index,
                        iteration=protocol.iteration,
                    )
                    measurement = meter.measure(execution, run_salt=site)
                return execution.seconds.value, measurement.average_watts
            except RetriesExhausted:
                raise
            except MeasurementError as exc:
                self._stats.record_failure(exc)
                if isinstance(exc, InvocationTimeout):
                    hung_s += exc.elapsed_s
                if attempt >= policy.max_retries:
                    raise RetriesExhausted(
                        f"{site} failed {attempt + 1} attempts "
                        f"(last: {exc})",
                        site=site,
                        last_error=exc,
                    ) from exc
                if hung_s > policy.timeout_budget_s:
                    raise RetriesExhausted(
                        f"{site} spent a simulated {hung_s:g}s hung, past "
                        f"its {policy.timeout_budget_s:g}s budget "
                        f"(last: {exc})",
                        site=site,
                        last_error=exc,
                    ) from exc
                attempt += 1
                self._stats.retries += 1
                if self._instrument:
                    _RETRIES.inc()
                delay = policy.delay_for(attempt, site)
                if delay > 0.0:
                    time.sleep(delay)

    def _measure_uncached(
        self, benchmark: Benchmark, config: Configuration
    ) -> RunResult:
        protocol = self._protocol(benchmark)
        invocations = self.scaled_invocations(benchmark)
        meter = self._meter(config.spec)

        injector = _faults_active()
        # A pair vectorises when kernels are enabled and no armed fault
        # spec's scope reaches any of its sites — the scalar path is the
        # only one that walks the per-invocation fault hooks.  The scope
        # check draws no RNG, and an unarmed pair's hooks are no-ops that
        # also draw none, so skipping them is behaviour-identical.
        use_kernel = self._vectorize and (
            injector is None
            or not injector.may_fault_pair(
                config.key, benchmark.name, invocations
            )
        )
        if self._vectorize and not use_kernel:
            _kernels.note_fallback("faults")
        with default_tracer().span(
            "engine.execute",
            benchmark=benchmark.name,
            config=config.key,
            invocations=invocations,
        ):
            kernel_result = None
            if use_kernel:
                # One compiled numpy pass over the whole invocation loop;
                # ``None`` means the plan's shape isn't compilable and the
                # pair follows the scalar route below.
                kernel_result = _kernels.measure_pair(
                    self._engine, meter, benchmark, config, protocol,
                    invocations,
                )
            if kernel_result is not None:
                times, powers = kernel_result
                if self._progress is not None:
                    self._progress.advance(invocations)
            elif injector is None:
                # Nothing can fail without an armed injector, so the retry
                # loop degenerates: run all invocations through the engine,
                # then push the whole batch through the logger/calibration
                # pipeline in one vectorised pass.  Bit-identical to the
                # per-invocation path (the batch transfer is elementwise and
                # the code mean is an exact integer sum).
                times, powers = self._measure_batched(
                    benchmark, config, invocations, protocol, meter
                )
            else:
                times = []
                powers = []
                for invocation in range(invocations):
                    seconds, watts = self._metered_invocation(
                        benchmark, config, invocation, protocol, meter
                    )
                    times.append(seconds)
                    powers.append(watts)
                    if self._progress is not None:
                        self._progress.advance()
        if self._instrument:
            _INVOCATIONS.inc(invocations)

        self._remeasure_outliers(
            benchmark, config, protocol, meter, times, powers, invocations
        )

        time_ci = confidence_interval(times)
        power_ci = confidence_interval(powers)
        seconds = time_ci.mean
        watts = power_ci.mean
        return RunResult(
            benchmark_name=benchmark.name,
            group=benchmark.group,
            processor_key=config.spec.key,
            config_key=config.key,
            seconds=seconds,
            watts=watts,
            speedup=self._references.speedup(benchmark, seconds),
            normalized_energy=self._references.normalized_energy(
                benchmark, seconds * watts
            ),
            time_ci=time_ci,
            power_ci=power_ci,
            invocations=invocations,
        )

    def _measure_batched(
        self,
        benchmark: Benchmark,
        config: Configuration,
        invocations: int,
        protocol: MeasurementProtocol,
        meter: PowerMeter,
    ) -> tuple[list[float], list[float]]:
        """All of a pair's invocations through one vectorised meter pass.

        Only taken with no fault injector armed: each site's run salt and
        noise streams are exactly those of :meth:`_metered_invocation`,
        so the batch reproduces the per-invocation measurements bit for
        bit while paying the numpy dispatch cost once per pair instead of
        once per invocation."""
        executions = []
        salts = []
        for index in range(invocations):
            executions.append(
                self._engine.execute(
                    benchmark, config,
                    invocation=index,
                    iteration=protocol.iteration,
                )
            )
            salts.append(f"{config.key}/{benchmark.name}/{index}")
        measurements = meter.measure_batch(executions, salts)
        if self._progress is not None:
            self._progress.advance(invocations)
        times = [execution.seconds.value for execution in executions]
        powers = [measurement.average_watts for measurement in measurements]
        return times, powers

    def _remeasure_outliers(
        self,
        benchmark: Benchmark,
        config: Configuration,
        protocol: MeasurementProtocol,
        meter: PowerMeter,
        times: list[float],
        powers: list[float],
        invocations: int,
    ) -> None:
        """MAD outlier screen: re-measure suspect invocations in place.

        Replacement runs use salt indices past the protocol's range, so
        they draw fresh noise (re-running the same salt would reproduce
        the same glitch) without disturbing the other invocations'
        streams.  Off unless the policy sets ``outlier_threshold``, which
        keeps the default protocol byte-identical to the unscreened one.
        """
        threshold = self._retry.outlier_threshold
        if threshold is None or self._retry.max_remeasures <= 0:
            return
        suspects = sorted(
            set(mad_outlier_indices(powers, threshold))
            | set(mad_outlier_indices(times, threshold))
        )
        for index in suspects[: self._retry.max_remeasures]:
            seconds, watts = self._metered_invocation(
                benchmark, config, invocations + index, protocol, meter
            )
            times[index] = seconds
            powers[index] = watts
            self._stats.remeasures += 1
            if self._instrument:
                _REMEASURES.inc()

    def run(
        self,
        configurations: Iterable[Configuration],
        benchmarks: Optional[Sequence[Benchmark]] = None,
        jobs: Optional[Union[int, str]] = None,
    ) -> ResultSet:
        """Measure every benchmark on every configuration, resiliently.

        Pairs that exhaust the retry policy are quarantined — recorded in
        the returned set's :class:`CampaignHealth` and skipped by later
        sweeps — instead of aborting the campaign, so one pathological
        (benchmark, configuration) cell cannot take down a 61x45 sweep.
        Every pair funnels through :meth:`measure`, whose cache-hit fast
        path touches nothing but the cache dict and one counter, so hit
        and miss accounting cannot diverge between entry points.

        ``jobs`` overrides the study-level worker count for this sweep
        (``None`` inherits the study's setting).  The parallel path
        shards uncached pairs across a process pool and merges worker
        results deterministically, producing the byte-identical
        :class:`ResultSet`, health report, and checkpoint bytes the
        sequential path would have — see :mod:`repro.core.executor`.
        """
        chosen = tuple(benchmarks) if benchmarks is not None else self._benchmarks
        pairs = [
            (benchmark, config)
            for config in configurations
            for benchmark in chosen
        ]
        return self.run_pairs(pairs, jobs=jobs)

    def run_pairs(
        self,
        pairs: Sequence[tuple[Benchmark, Configuration]],
        jobs: Optional[Union[int, str]] = None,
    ) -> ResultSet:
        """Measure an explicit (benchmark, configuration) pair list.

        The primitive under :meth:`run` — same resilience, caching,
        parallel dispatch, and deterministic merge — but without the
        cross-product, so callers that accumulate *heterogeneous* work
        (the campaign server batches whatever requests arrived together)
        can dispatch it as one sweep.  Duplicate pairs are measured once
        and each occurrence reported, exactly as ``run`` treats a repeated
        configuration."""
        pairs = list(pairs)
        if self._progress is not None:
            self._progress.extend_total(
                sum(
                    self.scaled_invocations(b)
                    for b, c in pairs
                    if not self.is_cached(b, c) and not self.is_quarantined(b, c)
                )
            )
        workers = self._resolve_jobs(jobs)
        if workers is not None:
            pending: list[tuple[Benchmark, Configuration]] = []
            seen: set[tuple[Benchmark, str]] = set()
            for benchmark, config in pairs:
                key = (benchmark, config.key)
                if (
                    key in self._cache
                    or key in self._quarantine
                    or key in seen
                ):
                    continue
                seen.add(key)
                pending.append((benchmark, config))
            if pending:
                chunks = self._dispatch_parallel(pending, workers)
                if chunks is not None:
                    return self._merge_parallel(pairs, pending, chunks)
        retries_0, remeasures_0, failures_0 = self._stats.snapshot()
        measured = cached = restored = 0
        quarantined: list[QuarantineEntry] = []
        results: list[RunResult] = []
        for benchmark, config in pairs:
            key = (benchmark, config.key)
            entry = self._quarantine.get(key)
            if entry is not None:
                quarantined.append(entry)
                continue
            was_cached = key in self._cache
            try:
                results.append(self.measure(benchmark, config))
            except MeasurementError as exc:
                entry = QuarantineEntry(
                    benchmark_name=benchmark.name,
                    config_key=config.key,
                    reason=str(exc),
                )
                self._quarantine[key] = entry
                quarantined.append(entry)
                if self._instrument:
                    _QUARANTINED.inc()
                continue
            if was_cached:
                if key in self._restored_keys:
                    restored += 1
                else:
                    cached += 1
            else:
                measured += 1
        retries_1, remeasures_1, failures_1 = self._stats.snapshot()
        failures = {
            name: count - failures_0.get(name, 0)
            for name, count in failures_1.items()
            if count - failures_0.get(name, 0) > 0
        }
        health = CampaignHealth(
            attempted_pairs=len(pairs),
            measured_pairs=measured,
            cached_pairs=cached,
            restored_pairs=restored,
            retries=retries_1 - retries_0,
            remeasured_outliers=remeasures_1 - remeasures_0,
            failures=failures,
            quarantined=tuple(quarantined),
        )
        return ResultSet(results, health=health)

    # -- parallel sweeps -------------------------------------------------------

    def _resolve_jobs(
        self, override: Optional[Union[int, str]]
    ) -> Optional[int]:
        """Worker count for a sweep, or ``None`` for the in-process path.

        ``"auto"`` (or 0) uses the CPU count and degrades to sequential
        on a single-core machine; an explicit integer always takes the
        pool path — even ``jobs=1``, which is how the equivalence tests
        exercise the full dispatch/merge machinery."""
        jobs = override if override is not None else self._jobs
        if jobs is None:
            return None
        if jobs == "auto":
            jobs = 0
        jobs = int(jobs)
        if jobs < 0:
            raise ValueError(f"jobs must be >= 0 (0 = auto), got {jobs}")
        if jobs == 0:
            jobs = os.cpu_count() or 1
            if jobs <= 1:
                return None
        return jobs

    def _dispatch_parallel(
        self,
        pending: Sequence[tuple[Benchmark, Configuration]],
        workers: int,
    ):
        """Shard ``pending`` across a worker pool; ``None`` if no pool
        can be created (the caller falls back to the sequential loop)."""
        from repro.core.executor import (
            ExecutorUnavailable,
            SweepPool,
            WorkerSetup,
            run_pairs,
        )

        # Warm the references (and, through their probe runs, the
        # engine's instruction calibration) in the parent so workers
        # inherit both instead of re-deriving them per process.  The
        # derivations are deterministic either way; warming just moves
        # the cost out of the fan-out.
        for benchmark in dict.fromkeys(b for b, _ in pending):
            self._references.energy_joules(benchmark)
        injector = _faults_active()
        setup = WorkerSetup(
            references=self._references,
            calibration=self._engine.calibration_snapshot(),
            invocation_scale=self._scale,
            retry=self._retry,
            instrument=self._instrument,
            metrics_enabled=_metrics_enabled(),
            fault_plan=injector.plan if injector is not None else None,
            trace_enabled=default_tracer().is_enabled,
            kernels=self._engine.kernel_snapshot() or None,
            vectorize=self._vectorize,
        )
        indexed = tuple(
            (benchmark, config, index)
            for index, (benchmark, config) in enumerate(pending)
        )
        if self._supervised:
            chunks = self._dispatch_fleet(setup, indexed, workers)
            if chunks is not None:
                return chunks
            # FleetUnavailable: fall through to the pool path (and from
            # there, if need be, to the sequential loop) — safe because
            # nothing merges until a dispatch path returns every chunk.
        pool = None
        if self._reuse_pool:
            if self._pool is not None and not self._pool.compatible_with(setup):
                self.close_pool()
            if self._pool is None:
                try:
                    self._pool = SweepPool(setup, workers)
                except ExecutorUnavailable:
                    return None
            pool = self._pool
        try:
            return run_pairs(
                setup, indexed, jobs=workers, progress=self._progress,
                pool=pool,
            )
        except ExecutorUnavailable:
            if pool is not None:
                # The kept-alive pool broke mid-sweep: drop it so the
                # next dispatch starts a fresh one.
                self.close_pool()
            return None

    def _dispatch_fleet(
        self,
        setup,
        indexed,
        workers: int,
    ):
        """Shard ``indexed`` pairs across the supervised worker fleet.

        ``None`` means no fleet could be built (or the kept one died
        beyond repair) — the caller falls back to the plain pool.  The
        fleet is kept alive across sweeps exactly like the reuse pool:
        the campaign server dispatches many small batches and amortises
        worker start-up (plus the heartbeat channel) across them."""
        from repro.service.fleet import FleetSupervisor, FleetUnavailable

        owned = not self._reuse_pool
        fleet = None
        try:
            if self._fleet is not None and not self._fleet.compatible_with(setup):
                self.close_fleet()
            if self._fleet is None:
                self._fleet = FleetSupervisor(
                    setup,
                    workers if not owned else (min(workers, len(indexed)) or 1),
                    heartbeat_s=self._heartbeat_s,
                    liveness_misses=self._liveness_misses,
                )
            fleet = self._fleet
            return fleet.run(indexed, progress=self._progress)
        except FleetUnavailable:
            self.close_fleet()
            return None
        finally:
            if owned and self._fleet is not None:
                self.close_fleet()

    def fleet_snapshot(self):
        """Per-worker health of the kept-alive fleet (``None`` when the
        study is not running one) — the ``/healthz`` worker table."""
        if self._fleet is None:
            return None
        self._fleet.poll()
        return self._fleet.snapshot()

    def close_fleet(self) -> None:
        """Shut down the kept-alive supervised fleet, if one exists."""
        if self._fleet is not None:
            self._fleet.close()
            self._fleet = None

    def close_pool(self) -> None:
        """Shut down the kept-alive worker pool and fleet, if they exist.

        Only meaningful for ``reuse_pool=True`` studies (the campaign
        server calls this on drain); a no-op otherwise."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self.close_fleet()

    def _merge_parallel(
        self,
        pairs: Sequence[tuple[Benchmark, Configuration]],
        pending: Sequence[tuple[Benchmark, Configuration]],
        chunks,
    ) -> ResultSet:
        """Fold worker outcomes back in, reproducing the sequential path.

        Worker metric deltas merge in chunk order; then the full pair
        list replays in sweep order, so cache inserts, checkpoint
        appends, failure-dict insertion order, hit/miss accounting, and
        quarantine decisions all land exactly where the sequential loop
        would have put them."""
        retries_0, remeasures_0, failures_0 = self._stats.snapshot()
        for chunk in chunks:
            _REGISTRY.apply_snapshot(chunk.metrics_delta)
        outcome_by_index = {
            outcome.index: outcome
            for chunk in chunks
            for outcome in chunk.outcomes
        }
        tracer = default_tracer()
        if tracer.is_enabled:
            # Adopt worker span subtrees in sweep (pending) order — the
            # span analogue of the metric-delta merge above: IDs are
            # re-issued from the parent tracer in a deterministic order,
            # so the merged trace is identical at any worker count and
            # every subtree hangs off the span that dispatched the sweep.
            parent = current_span_id()
            for index in range(len(pending)):
                outcome = outcome_by_index.get(index)
                if outcome is not None and outcome.spans:
                    tracer.adopt(outcome.spans, parent_id=parent)
        pending_index = {
            (benchmark, config.key): index
            for index, (benchmark, config) in enumerate(pending)
        }
        measured = cached = restored = 0
        quarantined: list[QuarantineEntry] = []
        results: list[RunResult] = []
        for benchmark, config in pairs:
            key = (benchmark, config.key)
            entry = self._quarantine.get(key)
            if entry is not None:
                quarantined.append(entry)
                continue
            cached_result = self._cache_get(key)
            if cached_result is not None:
                if self._instrument:
                    _CACHE_HITS.inc()
                results.append(cached_result)
                if key in self._restored_keys:
                    restored += 1
                else:
                    cached += 1
                continue
            outcome = outcome_by_index[pending_index[key]]
            self._stats.retries += outcome.retries
            self._stats.remeasures += outcome.remeasures
            for name in outcome.failure_events:
                self._stats.record_failure_name(name)
            if outcome.result is not None:
                self._cache_store(key, outcome.result)
                self._checkpoint_append(outcome.result)
                results.append(outcome.result)
                measured += 1
            else:
                entry = QuarantineEntry(
                    benchmark_name=benchmark.name,
                    config_key=config.key,
                    reason=outcome.failure or "worker failure",
                )
                self._quarantine[key] = entry
                quarantined.append(entry)
                if self._instrument:
                    _QUARANTINED.inc()
        retries_1, remeasures_1, failures_1 = self._stats.snapshot()
        failures = {
            name: count - failures_0.get(name, 0)
            for name, count in failures_1.items()
            if count - failures_0.get(name, 0) > 0
        }
        health = CampaignHealth(
            attempted_pairs=len(pairs),
            measured_pairs=measured,
            cached_pairs=cached,
            restored_pairs=restored,
            retries=retries_1 - retries_0,
            remeasured_outliers=remeasures_1 - remeasures_0,
            failures=failures,
            quarantined=tuple(quarantined),
        )
        return ResultSet(results, health=health)

    def run_config(
        self,
        configuration: Configuration,
        benchmarks: Optional[Sequence[Benchmark]] = None,
    ) -> ResultSet:
        """Measure one configuration across benchmarks."""
        return self.run((configuration,), benchmarks)


# -- checkpoint fingerprints -------------------------------------------------
#
# A JSONL checkpoint is a cache of measured records, and the records are
# only valid for the run parameters that produced them: the library root
# seed, the protocol's invocation scale, and the armed fault plan.  The
# fingerprint lives in a *sidecar* file (``<checkpoint>.meta``) so the
# checkpoint itself stays pure JSONL with bytes identical across
# sequential, parallel, and resumed campaigns.

CHECKPOINT_META_VERSION = 1


def checkpoint_meta_path(path: Path | str) -> Path:
    """Sidecar metadata path for a JSONL checkpoint (``<path>.meta``)."""
    path = Path(path)
    return path.with_name(path.name + ".meta")


def run_fingerprint(
    invocation_scale: float = 1.0, plan: Optional[object] = None
) -> dict[str, object]:
    """The parameters that make two campaigns byte-comparable.

    Worker count, checkpointing, and telemetry never affect result
    bytes, so they are deliberately absent; ``plan`` is the armed
    :class:`~repro.faults.plan.FaultPlan` (or None when disarmed), whose
    content fingerprint — not just its seed — is recorded."""
    from repro.core.seeding import ROOT_SEED

    return {
        "version": CHECKPOINT_META_VERSION,
        "root_seed": ROOT_SEED,
        "invocation_scale": invocation_scale,
        "fault_plan": plan.fingerprint if plan is not None else None,
    }


def write_checkpoint_meta(
    path: Path | str, fingerprint: Mapping[str, object]
) -> Path:
    meta = checkpoint_meta_path(path)
    meta.write_text(
        json.dumps(dict(fingerprint), sort_keys=True) + "\n", encoding="utf-8"
    )
    return meta


def read_checkpoint_meta(path: Path | str) -> Optional[dict]:
    """The fingerprint recorded beside a checkpoint, or ``None`` for
    checkpoints without a readable sidecar (every pre-sidecar one)."""
    try:
        data = json.loads(
            checkpoint_meta_path(path).read_text(encoding="utf-8")
        )
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


def fingerprint_mismatch(
    saved: Mapping[str, object],
    current: Mapping[str, object],
    fields: tuple[str, ...] = ("root_seed", "invocation_scale", "fault_plan"),
) -> Optional[str]:
    """One-line description of the first differing fingerprint field, or
    ``None`` when the checkpoint is compatible with the current run.

    ``fields`` narrows the comparison: checkpoints compare everything
    (a fault plan changes *which pairs* a checkpoint holds), while the
    result store skips ``fault_plan`` (stored bytes are plan-invariant,
    and crash recovery restarts without the plan that killed the
    coordinator)."""
    for field in fields:
        if saved.get(field) != current.get(field):
            return (
                f"{field}: saved run had {saved.get(field)!r}, "
                f"this run has {current.get(field)!r}"
            )
    return None


_SHARED_STUDY: Optional[Study] = None


def shared_study() -> Study:
    """A process-wide full-protocol study (shared cache across
    experiments, exactly like the paper's single physical dataset)."""
    global _SHARED_STUDY
    if _SHARED_STUDY is None:
        _SHARED_STUDY = Study()
    return _SHARED_STUDY


def reset_shared_study() -> None:
    """Drop the process-wide study so the next :func:`shared_study` call
    builds a fresh one — test fixtures use this to stop one test's cached
    campaign (or quarantine list) leaking into the next."""
    global _SHARED_STUDY
    _SHARED_STUDY = None
