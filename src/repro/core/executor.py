"""Parallel campaign execution: sharding a sweep across worker processes.

The paper's headline artifact is a 61-benchmark x 45-configuration
campaign, and every cell of it is *pure*: measurement noise is keyed by
the (configuration, benchmark, invocation) site, fault dice by the site
plus the retry attempt, and nothing else in the pipeline reads ambient
state that differs between processes.  That invariant makes a process
pool safe in the strongest sense — not "statistically equivalent" but
**byte-identical**: a worker measuring a pair produces exactly the floats
the parent would have, so the only work left in the parent is to fold the
outcomes back in a deterministic order.

The protocol:

* the parent pre-warms the normalisation references (which also warms the
  engine's instruction calibration) and ships them to each worker once,
  via the pool initializer, together with the retry policy, the armed
  :class:`~repro.faults.plan.FaultPlan` (fault decisions must survive the
  process boundary), and the metrics-enabled flag;
* uncached pairs are dealt round-robin into chunks (a few per worker, so
  a slow chunk cannot straggle the whole sweep);
* each worker measures its chunk through an ordinary
  :class:`~repro.core.study.Study` and returns the
  :class:`~repro.core.results.RunResult` records plus health deltas —
  retries, MAD re-measures, and the ordered failure-event names — and a
  :func:`~repro.obs.metrics.snapshot_delta` of its metrics registry;
* the parent applies metric deltas in chunk order and replays the pair
  list in sweep order, so the merged result set, campaign health,
  failure-dict insertion order, and checkpoint bytes are identical to a
  sequential run regardless of worker count or completion order.

Workers prefer the ``fork`` start method (the setup rides along for
free); on platforms without it the default context is used and the setup
is pickled — every field is a frozen dataclass or a plain dict, so both
paths work.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.core.results import RunResult
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.hardware.config import Configuration
from repro.obs.metrics import RegistrySnapshot
from repro.workloads.benchmark import Benchmark

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (study imports us)
    from repro.core.normalization import References

#: Chunks dealt per worker: enough that an unlucky chunk of slow pairs
#: cannot straggle the sweep, few enough that per-chunk overhead (metrics
#: snapshots, pickling) stays negligible.
CHUNKS_PER_WORKER = 4


class ExecutorUnavailable(RuntimeError):
    """No worker pool could be created; the caller should fall back to
    the sequential path (same results, just slower)."""


@dataclass(frozen=True)
class WorkerSetup:
    """Everything a worker process needs, shipped once at pool init."""

    references: "References"
    calibration: dict[Benchmark, float]
    invocation_scale: float
    retry: RetryPolicy
    instrument: bool
    metrics_enabled: bool
    fault_plan: Optional[FaultPlan]
    #: Arm the worker's tracer so each pair ships its span subtree home
    #: (defaulted so pickled setups from older callers keep working).
    trace_enabled: bool = False
    #: Compiled sweep kernels to preload (an engine ``kernel_snapshot``),
    #: a warm-start hint like ``calibration`` — workers compile missing
    #: entries deterministically.  ``None`` ships nothing.
    kernels: Optional[dict] = None
    #: Route fault-free pairs through compiled kernels in the worker
    #: study (result bytes are identical either way; this only pins
    #: which code path produces them).
    vectorize: bool = True


@dataclass(frozen=True)
class PairOutcome:
    """One pair's result (or failure) plus its health deltas.

    ``failure_events`` lists the failure type names the pair observed in
    order, so the parent can replay them at the pair's position in the
    sweep and reproduce the sequential failure-dict insertion order."""

    index: int
    result: Optional[RunResult]
    failure: Optional[str]
    retries: int
    remeasures: int
    failure_events: tuple[str, ...]
    #: The pair's finished span subtree (``Span.as_dict`` payloads, in
    #: the worker's finish order) when tracing is armed, else empty.
    spans: tuple[dict, ...] = ()


@dataclass(frozen=True)
class ChunkResult:
    """One chunk's outcomes and its telemetry movement."""

    chunk_index: int
    outcomes: tuple[PairOutcome, ...]
    metrics_delta: RegistrySnapshot
    invocations: int


_WORKER_STUDY = None


def _init_worker(setup: WorkerSetup) -> None:
    """Pool initializer: arm faults, preload calibration, build the
    worker's study.  Self-sufficient under both fork and spawn."""
    global _WORKER_STUDY
    from repro.core.study import Study
    from repro.faults import injector
    from repro.obs.metrics import set_enabled
    from repro.obs.tracing import default_tracer

    set_enabled(setup.metrics_enabled)
    # A forked child inherits the parent tracer's ID base and finished
    # spans; reseed into a fresh ID range and drop the inherited spans so
    # worker span IDs can never alias the coordinator's (or a sibling's).
    tracer = default_tracer()
    tracer.reseed()
    tracer.clear()
    if setup.trace_enabled:
        tracer.enable()
    else:
        tracer.disable()
    # The parent's fault state at dispatch time wins over anything a
    # forked child inherited (or a spawned child's clean slate).
    if setup.fault_plan is not None:
        injector.install(setup.fault_plan)
    else:
        injector.uninstall()
    setup.references.engine.preload_calibration(setup.calibration)
    if setup.kernels:
        setup.references.engine.preload_kernels(setup.kernels)
    _WORKER_STUDY = Study(
        references=setup.references,
        invocation_scale=setup.invocation_scale,
        retry=setup.retry,
        instrument=setup.instrument,
        vectorize=setup.vectorize,
    )


def _measure_chunk(
    chunk_index: int,
    chunk: Sequence[tuple[Benchmark, Configuration, int]],
) -> ChunkResult:
    """Measure one chunk of pairs in the worker's study.

    Runs exclusively in a pool process; the registry snapshots bracket
    exactly this chunk's work, so the delta contains the chunk's own
    telemetry movement and nothing else."""
    from repro.core.study import Study  # noqa: F401 - ensures module import
    from repro.faults.errors import MeasurementError
    from repro.obs.metrics import default_registry, snapshot_delta
    from repro.obs.tracing import default_tracer

    study = _WORKER_STUDY
    if study is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker study was never initialised")
    registry = default_registry()
    before = registry.snapshot()
    tracer = default_tracer()
    tracing = tracer.is_enabled
    stats = study._stats
    outcomes: list[PairOutcome] = []
    invocations = 0
    for benchmark, config, index in chunk:
        retries_0 = stats.retries
        remeasures_0 = stats.remeasures
        events_0 = len(stats.events)
        spans_0 = len(tracer.finished)
        result: Optional[RunResult] = None
        failure: Optional[str] = None
        # Each pair's spans nest under one executor.chunk root; the
        # parent adopts that subtree (in sweep order) when it merges.
        with tracer.span(
            "executor.chunk",
            chunk=chunk_index,
            pair=index,
            pid=os.getpid(),
            benchmark=benchmark.name,
            config=config.key,
        ):
            try:
                result = study.measure(benchmark, config)
                invocations += result.invocations
            except MeasurementError as exc:
                failure = str(exc)
        outcomes.append(
            PairOutcome(
                index=index,
                result=result,
                failure=failure,
                retries=stats.retries - retries_0,
                remeasures=stats.remeasures - remeasures_0,
                failure_events=tuple(stats.events[events_0:]),
                spans=tuple(
                    span.as_dict() for span in tracer.finished[spans_0:]
                )
                if tracing
                else (),
            )
        )
    delta = snapshot_delta(registry.snapshot(), before)
    return ChunkResult(
        chunk_index=chunk_index,
        outcomes=tuple(outcomes),
        metrics_delta=delta,
        invocations=invocations,
    )


def _pool_context():
    """Prefer ``fork`` (cheap worker start, setup inherited for free);
    fall back to the platform default where fork does not exist."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class SweepPool:
    """A keep-alive worker pool for long-lived processes.

    A one-shot sweep builds its pool, measures, and tears it down; the
    campaign server instead dispatches many small batches over hours, so
    it keeps one pool warm (:class:`~repro.core.study.Study` with
    ``reuse_pool=True``) and amortises worker start-up across batches.

    The pool is bound to the :class:`WorkerSetup` its workers were
    initialised with.  :meth:`compatible_with` gates reuse on the fields
    that affect result bytes — scale, retry policy, instrumentation, and
    the armed fault plan; the calibration snapshot is only a warm-start
    hint (workers re-derive missing entries deterministically), so a
    grown snapshot does not force a new pool.
    """

    def __init__(self, setup: WorkerSetup, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.setup = setup
        self.workers = workers
        try:
            self.executor = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=_pool_context(),
                initializer=_init_worker,
                initargs=(setup,),
            )
        except (OSError, ValueError, PermissionError) as exc:
            raise ExecutorUnavailable(
                f"cannot create worker pool: {exc}"
            ) from exc

    def compatible_with(self, setup: WorkerSetup) -> bool:
        mine = self.setup
        return (
            mine.references is setup.references
            and mine.invocation_scale == setup.invocation_scale
            and mine.retry == setup.retry
            and mine.instrument == setup.instrument
            and mine.metrics_enabled == setup.metrics_enabled
            and mine.fault_plan == setup.fault_plan
            and mine.trace_enabled == setup.trace_enabled
            # Like calibration, ``kernels`` is only a warm-start hint and
            # never gates reuse; the path flag does, so a sweep that pins
            # scalar measurement is really measured on the scalar path.
            and mine.vectorize == setup.vectorize
        )

    def close(self) -> None:
        self.executor.shutdown(wait=True, cancel_futures=True)


def run_pairs(
    setup: WorkerSetup,
    pending: Sequence[tuple[Benchmark, Configuration, int]],
    jobs: int,
    progress=None,
    pool: Optional[SweepPool] = None,
) -> list[ChunkResult]:
    """Measure ``pending`` pairs across ``jobs`` worker processes.

    Returns chunk results sorted by chunk index — completion order only
    affects progress ticks, never the merge.  Raises
    :class:`ExecutorUnavailable` if no pool can be created (sandboxed
    environments without process spawning) or if the pool breaks
    mid-sweep; the caller falls back to the sequential path, which is
    safe because nothing is merged until every chunk has returned.

    ``pool`` reuses a caller-owned :class:`SweepPool` instead of building
    (and tearing down) a fresh one; the caller keeps ownership — on
    :class:`ExecutorUnavailable` it should close and drop the pool.
    """
    if jobs < 1:
        raise ValueError(f"need at least one worker, got {jobs}")
    owned = pool is None
    if owned:
        pool = SweepPool(setup, min(jobs, len(pending)) or 1)
    workers = min(pool.workers, len(pending)) or 1
    chunk_count = min(len(pending), workers * CHUNKS_PER_WORKER)
    # Round-robin deal: neighbouring pairs usually share a benchmark (the
    # inner loop of the sweep), so striding spreads each benchmark's
    # protocol cost evenly across chunks.
    chunks = [tuple(pending[i::chunk_count]) for i in range(chunk_count)]
    results: list[ChunkResult] = []
    try:
        futures = [
            pool.executor.submit(_measure_chunk, index, chunk)
            for index, chunk in enumerate(chunks)
        ]
        try:
            for future in as_completed(futures):
                chunk_result = future.result()
                if progress is not None and chunk_result.invocations:
                    progress.advance(chunk_result.invocations)
                results.append(chunk_result)
        except BrokenProcessPool as exc:
            raise ExecutorUnavailable(
                f"worker pool died mid-sweep: {exc}"
            ) from exc
    finally:
        if owned:
            pool.close()
    results.sort(key=lambda chunk_result: chunk_result.chunk_index)
    return results
