"""Core methodology: the paper's actual contribution.

Reference normalisation (§2.6), group aggregation, confidence intervals
(Table 2), the study harness, the result dataset, and the Pareto analysis
(§4.2) — all substrate-independent: point :class:`~repro.core.study.Study`
at a different engine/meter pair (e.g. real RAPL readings) and the
methodology runs unchanged.
"""

from repro.core.aggregation import (
    benchmark_average,
    full_aggregate,
    group_means,
    per_group_ratio,
    ratio_of_aggregates,
    weighted_average,
)
from repro.core.normalization import References
from repro.core.pareto import (
    FrontierCurve,
    TradeoffPoint,
    fit_frontier,
    pareto_efficient,
)
from repro.core.quantities import Hertz, Joules, Seconds, Watts, energy
from repro.core.results import ResultSet, RunResult
from repro.core.statistics import ConfidenceInterval, LinearFit, confidence_interval, linear_fit
from repro.core.study import Study, shared_study

__all__ = [
    "ConfidenceInterval",
    "FrontierCurve",
    "Hertz",
    "Joules",
    "LinearFit",
    "References",
    "ResultSet",
    "RunResult",
    "Seconds",
    "Study",
    "TradeoffPoint",
    "Watts",
    "benchmark_average",
    "confidence_interval",
    "energy",
    "fit_frontier",
    "full_aggregate",
    "group_means",
    "linear_fit",
    "pareto_efficient",
    "per_group_ratio",
    "ratio_of_aggregates",
    "shared_study",
    "weighted_average",
]
