"""Deterministic seeding for every stochastic component in the library.

The paper's measurements contain three sources of randomness: sensor noise,
JVM nondeterminism (adaptive JIT and GC scheduling), and generic run-to-run
jitter.  To keep the whole reproduction bit-for-bit stable, every random draw
in this library comes from a :class:`numpy.random.Generator` obtained through
:func:`rng_for`, which derives a seed from a stable string key rather than
from global process state.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Root seed for the whole library.  Changing it re-rolls every stochastic
#: component at once while keeping each component internally consistent.
ROOT_SEED = "asplos2011-power-perf-scaling"


def seed_from_key(key: str, root: str = ROOT_SEED) -> int:
    """Return a stable 64-bit seed derived from ``key``.

    The derivation uses SHA-256 over ``root || key`` so that seeds are
    independent of Python's per-process hash randomisation and of the order
    in which components are constructed.
    """
    digest = hashlib.sha256(f"{root}::{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def rng_for(key: str, root: str = ROOT_SEED) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` dedicated to ``key``.

    Two calls with the same ``key`` return independent generators that
    produce identical streams, so callers never need to share generator
    objects to get reproducibility.
    """
    return np.random.default_rng(seed_from_key(key, root=root))


def run_key(*parts: object) -> str:
    """Build a seeding key from heterogeneous identifying parts.

    Example::

        rng = rng_for(run_key("sensor", processor.key, benchmark.name, 3))
    """
    return "/".join(str(part) for part in parts)
