"""Pareto-efficiency analysis (§4.2).

"The set of Pareto efficient choices is determined by plotting all choices
on an energy / performance scatter graph, and then identifying those
choices that are not dominated in performance or energy efficiency by any
other choice."

Points are (performance, normalised energy): higher performance is better,
lower energy is better.  The frontier curve the paper draws through the
efficient points (Fig. 12) is a least-squares polynomial in performance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True, slots=True)
class TradeoffPoint:
    """One candidate design: a configuration's aggregate outcome."""

    key: str
    performance: float
    energy: float

    def __post_init__(self) -> None:
        if self.performance <= 0 or self.energy <= 0:
            raise ValueError("performance and energy must be positive")

    def dominates(self, other: "TradeoffPoint") -> bool:
        """True if this point is at least as good on both axes and
        strictly better on one."""
        at_least = (
            self.performance >= other.performance and self.energy <= other.energy
        )
        strictly = (
            self.performance > other.performance or self.energy < other.energy
        )
        return at_least and strictly


def pareto_efficient(points: Sequence[TradeoffPoint]) -> tuple[TradeoffPoint, ...]:
    """The non-dominated subset, ordered by increasing performance.

    O(n^2) dominance scan — the study's configuration space is tens of
    points, so clarity beats cleverness.  Edge cases are pinned down so the
    result is a pure function of the point *set*:

    * a single point is trivially efficient;
    * exact duplicates neither dominate each other (dominance is strict on
      one axis) so all copies survive;
    * exact ties on one axis break by the other axis and then by key, so
      the returned order is identical under any permutation of the input.
    """
    efficient = [
        p
        for p in points
        if not any(q.dominates(p) for q in points if q is not p)
    ]
    return tuple(sorted(efficient, key=lambda p: (p.performance, p.energy, p.key)))


@dataclass(frozen=True, slots=True)
class FrontierCurve:
    """Polynomial energy-versus-performance frontier (Fig. 12's curves)."""

    coefficients: tuple[float, ...]
    performance_range: tuple[float, float]

    def energy_at(self, performance: float) -> float:
        return float(np.polyval(self.coefficients, performance))

    def series(self, samples: int = 50) -> list[tuple[float, float]]:
        """Evenly spaced (performance, energy) pairs along the frontier."""
        if samples < 2:
            raise ValueError("need at least two samples")
        low, high = self.performance_range
        xs = np.linspace(low, high, samples)
        return [(float(x), self.energy_at(float(x))) for x in xs]


def fit_frontier(
    efficient: Sequence[TradeoffPoint], degree: int = 2
) -> FrontierCurve:
    """Fit the paper's polynomial curve through Pareto-efficient points."""
    if len(efficient) < 2:
        raise ValueError("need at least two efficient points to fit a curve")
    degree = min(degree, len(efficient) - 1)
    xs = [p.performance for p in efficient]
    ys = [p.energy for p in efficient]
    coefficients = np.polyfit(xs, ys, degree)
    return FrontierCurve(
        coefficients=tuple(float(c) for c in coefficients),
        performance_range=(min(xs), max(xs)),
    )
