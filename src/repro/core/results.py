"""Result records and datasets.

The paper publishes its dataset as CSV in the ACM Digital Library; this
module is that dataset's schema: one :class:`RunResult` per (benchmark,
configuration), with measured time and power, confidence intervals, and
the normalised metrics every analysis consumes, plus a queryable
:class:`ResultSet` container with CSV export.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, Mapping

from repro.core.statistics import ConfidenceInterval
from repro.workloads.benchmark import Benchmark, Group
from repro.workloads.catalog import BENCHMARKS_BY_NAME

CSV_COLUMNS = (
    "benchmark",
    "group",
    "processor",
    "configuration",
    "seconds",
    "watts",
    "energy_joules",
    "speedup",
    "normalized_energy",
    "time_ci_relative",
    "power_ci_relative",
    "invocations",
)


@dataclass(frozen=True, slots=True)
class RunResult:
    """Measured outcome of one benchmark on one configuration."""

    benchmark_name: str
    group: Group
    processor_key: str
    config_key: str
    seconds: float
    watts: float
    speedup: float
    normalized_energy: float
    time_ci: ConfidenceInterval
    power_ci: ConfidenceInterval
    invocations: int

    @property
    def energy_joules(self) -> float:
        return self.seconds * self.watts

    @property
    def benchmark(self) -> Benchmark:
        return BENCHMARKS_BY_NAME[self.benchmark_name]

    def metric(self, name: str) -> float:
        """Access a numeric field by the names analyses use."""
        if name in ("seconds", "watts", "speedup", "normalized_energy"):
            return getattr(self, name)
        if name == "energy_joules":
            return self.energy_joules
        raise KeyError(f"unknown metric {name!r}")

    def as_row(self) -> dict[str, object]:
        return {
            "benchmark": self.benchmark_name,
            "group": self.group.value,
            "processor": self.processor_key,
            "configuration": self.config_key,
            "seconds": f"{self.seconds:.6g}",
            "watts": f"{self.watts:.6g}",
            "energy_joules": f"{self.energy_joules:.6g}",
            "speedup": f"{self.speedup:.6g}",
            "normalized_energy": f"{self.normalized_energy:.6g}",
            "time_ci_relative": f"{self.time_ci.relative_error:.6g}",
            "power_ci_relative": f"{self.power_ci.relative_error:.6g}",
            "invocations": self.invocations,
        }


class ResultSet:
    """An immutable queryable collection of :class:`RunResult`."""

    def __init__(self, results: Iterable[RunResult]) -> None:
        self._results = tuple(results)

    def __iter__(self) -> Iterator[RunResult]:
        return iter(self._results)

    def __len__(self) -> int:
        return len(self._results)

    def __bool__(self) -> bool:
        return bool(self._results)

    # -- selection ------------------------------------------------------------

    def where(self, predicate: Callable[[RunResult], bool]) -> "ResultSet":
        return ResultSet(r for r in self._results if predicate(r))

    def for_config(self, config_key: str) -> "ResultSet":
        return self.where(lambda r: r.config_key == config_key)

    def for_processor(self, processor_key: str) -> "ResultSet":
        return self.where(lambda r: r.processor_key == processor_key)

    def for_group(self, group: Group) -> "ResultSet":
        return self.where(lambda r: r.group is group)

    def for_benchmark(self, name: str) -> "ResultSet":
        return self.where(lambda r: r.benchmark_name == name)

    def single(self) -> RunResult:
        """The only result, asserting there is exactly one."""
        if len(self._results) != 1:
            raise ValueError(f"expected exactly one result, got {len(self._results)}")
        return self._results[0]

    # -- projection -----------------------------------------------------------

    def values(self, metric: str) -> dict[str, float]:
        """``benchmark name -> metric`` for this (usually filtered) set.

        Raises if a benchmark appears twice — callers must narrow to one
        configuration per benchmark before projecting.
        """
        projected: dict[str, float] = {}
        for result in self._results:
            if result.benchmark_name in projected:
                raise ValueError(
                    f"{result.benchmark_name} appears more than once; filter "
                    "to a single configuration before projecting values"
                )
            projected[result.benchmark_name] = result.metric(metric)
        return projected

    def benchmarks(self) -> tuple[Benchmark, ...]:
        seen: dict[str, Benchmark] = {}
        for result in self._results:
            seen.setdefault(result.benchmark_name, result.benchmark)
        return tuple(seen.values())

    def config_keys(self) -> tuple[str, ...]:
        ordered: dict[str, None] = {}
        for result in self._results:
            ordered.setdefault(result.config_key)
        return tuple(ordered)

    # -- combination ----------------------------------------------------------

    def merged_with(self, other: "ResultSet") -> "ResultSet":
        return ResultSet((*self._results, *other._results))

    # -- export ----------------------------------------------------------------

    def to_csv(self, path: Path | str) -> Path:
        """Write the dataset in the companion-CSV shape."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=CSV_COLUMNS)
            writer.writeheader()
            for result in self._results:
                writer.writerow(result.as_row())
        return path


def from_csv(path: Path | str) -> list[Mapping[str, str]]:
    """Read back an exported dataset as raw string records."""
    path = Path(path)
    with path.open(newline="") as handle:
        return list(csv.DictReader(handle))
