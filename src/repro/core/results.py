"""Result records and datasets.

The paper publishes its dataset as CSV in the ACM Digital Library; this
module is that dataset's schema: one :class:`RunResult` per (benchmark,
configuration), with measured time and power, confidence intervals, and
the normalised metrics every analysis consumes, plus a queryable
:class:`ResultSet` container with CSV export.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Mapping, Optional

from repro.core.statistics import ConfidenceInterval
from repro.workloads.benchmark import Benchmark, Group
from repro.workloads.catalog import BENCHMARKS_BY_NAME

CSV_COLUMNS = (
    "benchmark",
    "group",
    "processor",
    "configuration",
    "seconds",
    "watts",
    "energy_joules",
    "speedup",
    "normalized_energy",
    "time_ci_relative",
    "power_ci_relative",
    "invocations",
)


@dataclass(frozen=True, slots=True)
class RunResult:
    """Measured outcome of one benchmark on one configuration."""

    benchmark_name: str
    group: Group
    processor_key: str
    config_key: str
    seconds: float
    watts: float
    speedup: float
    normalized_energy: float
    time_ci: ConfidenceInterval
    power_ci: ConfidenceInterval
    invocations: int

    @property
    def energy_joules(self) -> float:
        return self.seconds * self.watts

    @property
    def benchmark(self) -> Benchmark:
        return BENCHMARKS_BY_NAME[self.benchmark_name]

    def metric(self, name: str) -> float:
        """Access a numeric field by the names analyses use."""
        if name in ("seconds", "watts", "speedup", "normalized_energy"):
            return getattr(self, name)
        if name == "energy_joules":
            return self.energy_joules
        raise KeyError(f"unknown metric {name!r}")

    def as_row(self) -> dict[str, object]:
        return {
            "benchmark": self.benchmark_name,
            "group": self.group.value,
            "processor": self.processor_key,
            "configuration": self.config_key,
            "seconds": f"{self.seconds:.6g}",
            "watts": f"{self.watts:.6g}",
            "energy_joules": f"{self.energy_joules:.6g}",
            "speedup": f"{self.speedup:.6g}",
            "normalized_energy": f"{self.normalized_energy:.6g}",
            "time_ci_relative": f"{self.time_ci.relative_error:.6g}",
            "power_ci_relative": f"{self.power_ci.relative_error:.6g}",
            "invocations": self.invocations,
        }

    # -- checkpoint round-trip ------------------------------------------------

    def as_record(self) -> dict[str, object]:
        """A JSON-safe record that reconstructs this result *exactly* —
        full-precision floats, unlike the ``%.6g``-rounded CSV row — so a
        resumed campaign is byte-identical to an uninterrupted one."""
        return {
            "benchmark": self.benchmark_name,
            "group": self.group.value,
            "processor": self.processor_key,
            "configuration": self.config_key,
            "seconds": self.seconds,
            "watts": self.watts,
            "speedup": self.speedup,
            "normalized_energy": self.normalized_energy,
            "time_ci": _ci_record(self.time_ci),
            "power_ci": _ci_record(self.power_ci),
            "invocations": self.invocations,
        }

    @classmethod
    def from_record(cls, record: Mapping[str, object]) -> "RunResult":
        return cls(
            benchmark_name=str(record["benchmark"]),
            group=Group(record["group"]),
            processor_key=str(record["processor"]),
            config_key=str(record["configuration"]),
            seconds=float(record["seconds"]),  # type: ignore[arg-type]
            watts=float(record["watts"]),  # type: ignore[arg-type]
            speedup=float(record["speedup"]),  # type: ignore[arg-type]
            normalized_energy=float(record["normalized_energy"]),  # type: ignore[arg-type]
            time_ci=_ci_from_record(record["time_ci"]),  # type: ignore[arg-type]
            power_ci=_ci_from_record(record["power_ci"]),  # type: ignore[arg-type]
            invocations=int(record["invocations"]),  # type: ignore[arg-type]
        )


def _ci_record(ci: ConfidenceInterval) -> dict[str, object]:
    return {
        "mean": ci.mean,
        "half_width": ci.half_width,
        "confidence": ci.confidence,
        "n": ci.n,
    }


def _ci_from_record(record: Mapping[str, object]) -> ConfidenceInterval:
    return ConfidenceInterval(
        mean=float(record["mean"]),  # type: ignore[arg-type]
        half_width=float(record["half_width"]),  # type: ignore[arg-type]
        confidence=float(record["confidence"]),  # type: ignore[arg-type]
        n=int(record["n"]),  # type: ignore[arg-type]
    )


@dataclass(frozen=True, slots=True)
class QuarantineEntry:
    """One (benchmark, configuration) pair the campaign gave up on."""

    benchmark_name: str
    config_key: str
    reason: str

    def as_row(self) -> dict[str, object]:
        return {
            "benchmark": self.benchmark_name,
            "configuration": self.config_key,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class CampaignHealth:
    """What it took to produce a :class:`ResultSet`.

    The paper silently re-ran failing invocations; this report makes the
    recovery auditable: how many pairs were measured, answered from cache
    or a checkpoint, how many invocation retries and outlier
    re-measurements happened, which failure types were seen, and which
    pairs exhausted their retries and were quarantined.
    """

    attempted_pairs: int = 0
    measured_pairs: int = 0
    cached_pairs: int = 0
    restored_pairs: int = 0
    retries: int = 0
    remeasured_outliers: int = 0
    failures: Mapping[str, int] = field(default_factory=dict)
    quarantined: tuple[QuarantineEntry, ...] = ()

    @property
    def ok(self) -> bool:
        """True when every attempted pair produced a result."""
        return not self.quarantined

    @property
    def total_failures(self) -> int:
        return sum(self.failures.values())

    def merged(self, other: "CampaignHealth") -> "CampaignHealth":
        failures = dict(self.failures)
        for name, count in other.failures.items():
            failures[name] = failures.get(name, 0) + count
        return CampaignHealth(
            attempted_pairs=self.attempted_pairs + other.attempted_pairs,
            measured_pairs=self.measured_pairs + other.measured_pairs,
            cached_pairs=self.cached_pairs + other.cached_pairs,
            restored_pairs=self.restored_pairs + other.restored_pairs,
            retries=self.retries + other.retries,
            remeasured_outliers=self.remeasured_outliers + other.remeasured_outliers,
            failures=failures,
            quarantined=(*self.quarantined, *other.quarantined),
        )

    def summary(self) -> str:
        """A one-paragraph human summary for CLI output."""
        lines = [
            f"campaign health: {self.measured_pairs} measured, "
            f"{self.cached_pairs} cached, {self.restored_pairs} restored "
            f"from checkpoint of {self.attempted_pairs} pairs",
            f"  retries: {self.retries}; outliers re-measured: "
            f"{self.remeasured_outliers}; failures seen: {self.total_failures}",
        ]
        for name in sorted(self.failures):
            lines.append(f"    {name}: {self.failures[name]}")
        if self.quarantined:
            lines.append(f"  quarantined ({len(self.quarantined)}):")
            for entry in self.quarantined:
                lines.append(
                    f"    {entry.benchmark_name} @ {entry.config_key}: "
                    f"{entry.reason}"
                )
        else:
            lines.append("  quarantined: none")
        return "\n".join(lines)


class ResultSet:
    """An immutable queryable collection of :class:`RunResult`.

    A set produced by a resilient campaign carries the
    :class:`CampaignHealth` that produced it; filtered views do not (a
    subset is no longer the campaign the health report describes).
    """

    def __init__(
        self,
        results: Iterable[RunResult],
        health: Optional[CampaignHealth] = None,
    ) -> None:
        self._results = tuple(results)
        self._health = health

    @property
    def health(self) -> Optional[CampaignHealth]:
        return self._health

    def __iter__(self) -> Iterator[RunResult]:
        return iter(self._results)

    def __len__(self) -> int:
        return len(self._results)

    def __bool__(self) -> bool:
        return bool(self._results)

    # -- selection ------------------------------------------------------------

    def where(self, predicate: Callable[[RunResult], bool]) -> "ResultSet":
        return ResultSet(r for r in self._results if predicate(r))

    def for_config(self, config_key: str) -> "ResultSet":
        return self.where(lambda r: r.config_key == config_key)

    def for_processor(self, processor_key: str) -> "ResultSet":
        return self.where(lambda r: r.processor_key == processor_key)

    def for_group(self, group: Group) -> "ResultSet":
        return self.where(lambda r: r.group is group)

    def for_benchmark(self, name: str) -> "ResultSet":
        return self.where(lambda r: r.benchmark_name == name)

    def single(self) -> RunResult:
        """The only result, asserting there is exactly one."""
        if len(self._results) != 1:
            raise ValueError(f"expected exactly one result, got {len(self._results)}")
        return self._results[0]

    # -- projection -----------------------------------------------------------

    def values(self, metric: str) -> dict[str, float]:
        """``benchmark name -> metric`` for this (usually filtered) set.

        Raises if a benchmark appears twice — callers must narrow to one
        configuration per benchmark before projecting.
        """
        projected: dict[str, float] = {}
        for result in self._results:
            if result.benchmark_name in projected:
                raise ValueError(
                    f"{result.benchmark_name} appears more than once; filter "
                    "to a single configuration before projecting values"
                )
            projected[result.benchmark_name] = result.metric(metric)
        return projected

    def benchmarks(self) -> tuple[Benchmark, ...]:
        seen: dict[str, Benchmark] = {}
        for result in self._results:
            seen.setdefault(result.benchmark_name, result.benchmark)
        return tuple(seen.values())

    def config_keys(self) -> tuple[str, ...]:
        ordered: dict[str, None] = {}
        for result in self._results:
            ordered.setdefault(result.config_key)
        return tuple(ordered)

    # -- combination ----------------------------------------------------------

    def merged_with(self, other: "ResultSet") -> "ResultSet":
        health = self._health
        if health is not None and other._health is not None:
            health = health.merged(other._health)
        elif health is None:
            health = other._health
        return ResultSet((*self._results, *other._results), health=health)

    # -- export ----------------------------------------------------------------

    def to_csv(self, path: Path | str) -> Path:
        """Write the dataset in the companion-CSV shape."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=CSV_COLUMNS)
            writer.writeheader()
            for result in self._results:
                writer.writerow(result.as_row())
        return path


def from_csv(path: Path | str) -> list[Mapping[str, str]]:
    """Read back an exported dataset as raw string records."""
    path = Path(path)
    with path.open(newline="") as handle:
        return list(csv.DictReader(handle))
