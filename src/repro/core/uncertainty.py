"""Uncertainty propagation for derived quantities.

The study measures time and power with their own confidence intervals
(Table 2); derived quantities — energy, speedup ratios, energy ratios —
inherit uncertainty from both.  This module provides first-order (delta
method) propagation for the products and quotients the analyses use, so
a result's error bars survive arithmetic instead of being dropped.
"""

from __future__ import annotations

import math

from repro.core.results import RunResult
from repro.core.statistics import ConfidenceInterval


def product_interval(
    a: ConfidenceInterval, b: ConfidenceInterval
) -> ConfidenceInterval:
    """CI of ``a x b`` for independent measurements (delta method).

    Relative variances add: ``(dz/z)^2 = (da/a)^2 + (db/b)^2``, valid for
    the few-percent errors this study deals in.
    """
    _require_compatible(a, b)
    mean = a.mean * b.mean
    relative = math.hypot(a.relative_error, b.relative_error)
    return ConfidenceInterval(
        mean=mean,
        half_width=abs(mean) * relative,
        confidence=a.confidence,
        n=min(a.n, b.n),
    )


def quotient_interval(
    numerator: ConfidenceInterval, denominator: ConfidenceInterval
) -> ConfidenceInterval:
    """CI of ``numerator / denominator`` for independent measurements."""
    _require_compatible(numerator, denominator)
    if denominator.mean == 0.0:
        raise ValueError("cannot divide by a zero-mean measurement")
    mean = numerator.mean / denominator.mean
    relative = math.hypot(
        numerator.relative_error, denominator.relative_error
    )
    return ConfidenceInterval(
        mean=mean,
        half_width=abs(mean) * relative,
        confidence=numerator.confidence,
        n=min(numerator.n, denominator.n),
    )


def energy_interval(result: RunResult) -> ConfidenceInterval:
    """Energy CI of one run: time CI x power CI.

    Time and power are measured on the same runs so they are not strictly
    independent, but their noise sources differ (OS jitter versus sensor/
    activity noise), making the independent-product bound the standard
    conservative choice.
    """
    return product_interval(result.time_ci, result.power_ci)


def ratio_interval(numerator: RunResult, denominator: RunResult, metric: str) -> ConfidenceInterval:
    """CI of a feature-experiment ratio between two measured runs.

    ``metric`` selects which per-run interval to ratio: ``"seconds"``,
    ``"watts"``, or ``"energy_joules"``.
    """
    pick = {
        "seconds": lambda r: r.time_ci,
        "watts": lambda r: r.power_ci,
        "energy_joules": energy_interval,
    }
    try:
        chooser = pick[metric]
    except KeyError:
        raise KeyError(f"unknown metric {metric!r}; choose from {sorted(pick)}") from None
    return quotient_interval(chooser(numerator), chooser(denominator))


def _require_compatible(a: ConfidenceInterval, b: ConfidenceInterval) -> None:
    if a.confidence != b.confidence:
        raise ValueError(
            "cannot combine intervals at different confidence levels"
        )
