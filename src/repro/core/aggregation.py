"""Aggregation over benchmarks and workload groups (§2.6).

"We report results for each group by taking the arithmetic mean of the
benchmarks within the group.  We use the mean of the four groups for the
overall average.  This aggregation avoids bias due to the varying number
of benchmarks within each group (from 5 to 27)."

Table 4 also reports the simple benchmark mean (Avg_b) next to the
group-weighted mean (Avg_w); both are provided here.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from repro.core.statistics import mean
from repro.workloads.benchmark import Benchmark, Group
from repro.workloads.catalog import groups


def group_means(
    values: Mapping[str, float],
    benchmarks: Iterable[Benchmark],
) -> dict[Group, float]:
    """Arithmetic mean of ``values`` (keyed by benchmark name) per group.

    Groups with no benchmark present in ``values`` are omitted rather than
    reported as zero.
    """
    by_group: dict[Group, list[float]] = {}
    for benchmark in benchmarks:
        if benchmark.name in values:
            by_group.setdefault(benchmark.group, []).append(values[benchmark.name])
    return {group: mean(samples) for group, samples in by_group.items()}


def weighted_average(per_group: Mapping[Group, float]) -> float:
    """The paper's Avg_w: the unweighted mean of the (equal-weight) group
    means, computed over the groups present."""
    if not per_group:
        raise ValueError("no groups to average")
    return mean(list(per_group.values()))


def benchmark_average(values: Mapping[str, float]) -> float:
    """The paper's Avg_b: plain mean over individual benchmarks."""
    if not values:
        raise ValueError("no benchmarks to average")
    return mean(list(values.values()))


def full_aggregate(
    values: Mapping[str, float],
    benchmarks: Iterable[Benchmark],
) -> dict[str, float]:
    """Table 4's row shape: per-group means, Avg_w, Avg_b, min, and max."""
    benchmarks = list(benchmarks)
    per_group = group_means(values, benchmarks)
    row: dict[str, float] = {group.value: value for group, value in per_group.items()}
    row["Avg_w"] = weighted_average(per_group)
    row["Avg_b"] = benchmark_average(values)
    row["Min"] = min(values.values())
    row["Max"] = max(values.values())
    return row


def ratio_of_aggregates(
    numerator: Mapping[str, float],
    denominator: Mapping[str, float],
    benchmarks: Iterable[Benchmark],
    combine: Callable[[Mapping[Group, float]], float] = weighted_average,
) -> float:
    """Aggregate ratio used by the feature analyses (§3).

    The paper's feature charts (e.g. "2 cores / 1 core") aggregate
    per-benchmark ratios into group means and then average the groups.
    """
    benchmarks = list(benchmarks)
    ratios = {
        name: numerator[name] / denominator[name]
        for name in numerator
        if name in denominator
    }
    if not ratios:
        raise ValueError("no overlapping benchmarks between the two sides")
    return combine(group_means(ratios, benchmarks))


def per_group_ratio(
    numerator: Mapping[str, float],
    denominator: Mapping[str, float],
    benchmarks: Iterable[Benchmark],
) -> dict[Group, float]:
    """Group-mean of per-benchmark ratios (the §3 per-workload panels)."""
    benchmarks = list(benchmarks)
    ratios = {
        name: numerator[name] / denominator[name]
        for name in numerator
        if name in denominator
    }
    return group_means(ratios, benchmarks)


def canonical_groups() -> tuple[Group, ...]:
    """Re-export of the canonical group order for presentation code."""
    return groups()
