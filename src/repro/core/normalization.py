"""Reference execution time and reference energy (§2.6).

"To avoid biasing performance measurements to the strengths or weaknesses
of one architecture, we normalize individual benchmark execution times to
its average execution time executing on four architectures ... The
reference energy is the average power on these four processors times the
average runtime."

The four reference machines — Pentium 4 (130), Core 2D (65), Atom (45),
i5 (32) — cover all four microarchitectures and all four technology
generations.
"""

from __future__ import annotations

from typing import Optional

from repro.execution.engine import ExecutionEngine, default_engine
from repro.faults.injector import shielded
from repro.hardware.catalog import reference_processors
from repro.hardware.config import stock
from repro.measurement.meter import meter_for
from repro.workloads.benchmark import Benchmark


class References:
    """Per-benchmark reference time and energy for normalisation.

    Reference *time* is Table 1's value by construction (the engine
    calibrates each benchmark's work so its mean stock run time across the
    four reference machines equals the table).  Reference *energy* is
    derived the paper's way: mean measured power on the four reference
    machines times the reference time.
    """

    def __init__(self, engine: Optional[ExecutionEngine] = None) -> None:
        self._engine = engine or default_engine()
        self._energy_cache: dict[str, float] = {}

    @property
    def engine(self) -> ExecutionEngine:
        return self._engine

    def time_seconds(self, benchmark: Benchmark) -> float:
        """Reference execution time (Table 1's "Time" column)."""
        return benchmark.reference_seconds

    def power_watts(self, benchmark: Benchmark) -> float:
        """Mean measured stock power across the four reference machines."""
        return self.energy_joules(benchmark) / self.time_seconds(benchmark)

    def energy_joules(self, benchmark: Benchmark) -> float:
        """Reference energy: mean reference power x reference time."""
        cached = self._energy_cache.get(benchmark.name)
        if cached is not None:
            return cached
        powers = []
        # The reference baseline is analytical (ideal executions), not a
        # campaign run: shield it from any armed fault injector.
        with shielded():
            for spec in reference_processors():
                execution = self._engine.ideal(benchmark, stock(spec))
                measurement = meter_for(spec).measure(
                    execution, run_salt=f"reference/{benchmark.name}"
                )
                powers.append(measurement.average_watts)
        mean_power = sum(powers) / len(powers)
        energy = mean_power * self.time_seconds(benchmark)
        self._energy_cache[benchmark.name] = energy
        return energy

    def speedup(self, benchmark: Benchmark, seconds: float) -> float:
        """Performance relative to reference (the paper's x-axes)."""
        if seconds <= 0:
            raise ValueError("run time must be positive")
        return self.time_seconds(benchmark) / seconds

    def normalized_energy(self, benchmark: Benchmark, joules: float) -> float:
        """Energy relative to reference energy (the paper's y-axes)."""
        if joules < 0:
            raise ValueError("energy cannot be negative")
        return joules / self.energy_joules(benchmark)
