"""BIOS-style processor configuration (§2.8).

The paper controls architectural variables by configuring each processor at
the BIOS: disabling cores, disabling SMT, down-clocking, and disabling Turbo
Boost.  :class:`Configuration` captures one such setting and validates it
against the processor's capabilities, exactly as the firmware would refuse
an unsupported combination.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.quantities import Hertz, Volts
from repro.hardware.processor import ProcessorSpec


class UnsupportedConfigurationError(ValueError):
    """Raised for a configuration the processor cannot express."""


@dataclass(frozen=True, slots=True)
class Configuration:
    """One experimental processor configuration.

    ``threads_per_core`` is 1 (SMT disabled) or the processor's native SMT
    width; ``clock_ghz`` must be one of the part's selectable operating
    points; ``turbo_enabled`` is only meaningful at the top clock, matching
    §3.6 ("Turbo Boost is only enabled when the processor executes at its
    default highest clock setting").
    """

    spec: ProcessorSpec
    active_cores: int
    threads_per_core: int
    clock_ghz: float
    turbo_enabled: bool = False

    def __post_init__(self) -> None:
        spec = self.spec
        if not 1 <= self.active_cores <= spec.cores:
            raise UnsupportedConfigurationError(
                f"{spec.label} has {spec.cores} cores; cannot enable "
                f"{self.active_cores}"
            )
        if self.threads_per_core not in (1, spec.threads_per_core):
            raise UnsupportedConfigurationError(
                f"{spec.label} supports 1 or {spec.threads_per_core} threads "
                f"per core; got {self.threads_per_core}"
            )
        if not spec.supports_clock(self.clock_ghz):
            raise UnsupportedConfigurationError(
                f"{spec.label} has no {self.clock_ghz} GHz operating point "
                f"(available: {spec.clock_points_ghz})"
            )
        if self.turbo_enabled:
            if not spec.has_turbo:
                raise UnsupportedConfigurationError(
                    f"{spec.label} has no Turbo Boost"
                )
            if abs(self.clock_ghz - spec.stock_clock.ghz) > 1e-9:
                raise UnsupportedConfigurationError(
                    "Turbo Boost is only available at the stock clock"
                )

    # -- identity -----------------------------------------------------------

    @property
    def key(self) -> str:
        """Stable identifier, e.g. ``i7_45/4C2T@2.66``."""
        turbo = "+TB" if self.turbo_enabled else ""
        if self.spec.has_turbo and not self.turbo_enabled:
            turbo = "-TB"
        return (
            f"{self.spec.key}/{self.active_cores}C{self.threads_per_core}T"
            f"@{self.clock_ghz:g}{turbo}"
        )

    @property
    def label(self) -> str:
        """Display label in the paper's Table 5 style."""
        turbo = ""
        if self.spec.has_turbo and not self.turbo_enabled:
            turbo = " No TB"
        return (
            f"{self.spec.label} {self.active_cores}C{self.threads_per_core}T"
            f"@{self.clock_ghz:g}GHz{turbo}"
        )

    # -- derived quantities -------------------------------------------------

    @property
    def hardware_contexts(self) -> int:
        return self.active_cores * self.threads_per_core

    @property
    def smt_enabled(self) -> bool:
        return self.threads_per_core > 1

    @property
    def clock(self) -> Hertz:
        return Hertz.from_ghz(self.clock_ghz)

    @property
    def is_stock(self) -> bool:
        """Whether this is the as-shipped configuration of the part."""
        spec = self.spec
        return (
            self.active_cores == spec.cores
            and self.threads_per_core == spec.threads_per_core
            and abs(self.clock_ghz - spec.stock_clock.ghz) < 1e-9
            and self.turbo_enabled == spec.has_turbo
        )

    def voltage(self) -> Volts:
        return self.spec.voltage_at(self.clock)

    # -- derivation helpers -------------------------------------------------

    def with_cores(self, active_cores: int) -> "Configuration":
        return replace(self, active_cores=active_cores)

    def without_smt(self) -> "Configuration":
        return replace(self, threads_per_core=1)

    def with_smt(self) -> "Configuration":
        return replace(self, threads_per_core=self.spec.threads_per_core)

    def at_clock(self, clock_ghz: float) -> "Configuration":
        turbo = self.turbo_enabled and abs(
            clock_ghz - self.spec.stock_clock.ghz
        ) < 1e-9
        return replace(self, clock_ghz=clock_ghz, turbo_enabled=turbo)

    def without_turbo(self) -> "Configuration":
        return replace(self, turbo_enabled=False)


def stock(spec: ProcessorSpec) -> Configuration:
    """The as-shipped configuration of ``spec`` (§2.8 'stock')."""
    return Configuration(
        spec=spec,
        active_cores=spec.cores,
        threads_per_core=spec.threads_per_core,
        clock_ghz=spec.stock_clock.ghz,
        turbo_enabled=spec.has_turbo,
    )
