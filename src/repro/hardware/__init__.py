"""Hardware substrate: the eight processors and their structural models.

Public surface:

* :mod:`repro.hardware.catalog` — the Table 3 processors.
* :class:`repro.hardware.config.Configuration` — a BIOS-style setting.
* :mod:`repro.hardware.configurations` — the 45-point configuration space.
"""

from repro.hardware.catalog import (
    PROCESSORS,
    PROCESSORS_BY_KEY,
    processor,
    reference_processors,
)
from repro.hardware.config import (
    Configuration,
    UnsupportedConfigurationError,
    stock,
)
from repro.hardware.configurations import (
    all_configurations,
    node_45nm_configurations,
    stock_configurations,
)
from repro.hardware.processor import ProcessorSpec

__all__ = [
    "PROCESSORS",
    "PROCESSORS_BY_KEY",
    "Configuration",
    "ProcessorSpec",
    "UnsupportedConfigurationError",
    "all_configurations",
    "node_45nm_configurations",
    "processor",
    "reference_processors",
    "stock",
    "stock_configurations",
]
