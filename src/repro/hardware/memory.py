"""Main-memory path model: miss latency and bandwidth saturation.

Two effects matter for the study.  First, an LLC miss costs a fixed wall
time, so its *cycle* cost grows with clock frequency — this is what makes
performance scale sub-linearly with clock (§3.3: doubling the clock buys
~80 %).  Second, the aggregate miss stream of many contexts can exceed the
platform's bandwidth (FSB parts especially), inflating effective latency —
this is what separates the i7's triple-channel DDR3 from the C2Q's shared
FSB when running scalable workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.quantities import Hertz
from repro.hardware.processor import MemorySystem

#: Effective bytes moved per LLC miss: the 64-byte line plus writeback
#: and prefetch traffic it drags along on these platforms.
LINE_BYTES = 96


def miss_latency_cycles(memory: MemorySystem, clock: Hertz) -> float:
    """Core cycles one LLC miss costs at a given clock."""
    return memory.latency_ns * clock.ghz


@dataclass(frozen=True, slots=True)
class BandwidthOutcome:
    """Result of checking a miss stream against platform bandwidth."""

    demand_gbs: float
    utilisation: float
    #: Multiplier on effective miss latency from queueing (>= 1).
    latency_inflation: float


def bandwidth_limit_ips(memory: MemorySystem, mpki: float) -> float:
    """Instruction throughput at which a miss stream fills the memory
    path completely."""
    if mpki < 0:
        raise ValueError("miss rate cannot be negative")
    if mpki == 0.0:
        return float("inf")
    return memory.bandwidth_gbs * 1e9 / (mpki / 1000.0 * LINE_BYTES)


def capped_throughput(
    unconstrained_ips: float, mpki: float, memory: MemorySystem
) -> float:
    """Instruction throughput after the memory path's bandwidth bites.

    A smooth saturating knee: ``T = U / (1 + (U/L)^2)^(1/2)`` where ``U``
    is the CPU-side throughput and ``L`` the bandwidth-limited ceiling.
    Far below the limit it is the identity; far above it clamps to ``L``;
    and it is strictly monotone in ``U`` — adding threads or clock can
    never *reduce* aggregate throughput, it only stops helping.
    """
    if unconstrained_ips < 0:
        raise ValueError("throughput cannot be negative")
    limit = bandwidth_limit_ips(memory, mpki)
    if limit == float("inf") or unconstrained_ips == 0.0:
        return unconstrained_ips
    x = unconstrained_ips / limit
    return unconstrained_ips / (1.0 + x * x) ** 0.5


def bandwidth_pressure(
    memory: MemorySystem,
    misses_per_second: float,
) -> BandwidthOutcome:
    """Queueing penalty for an aggregate miss stream (diagnostic view).

    Uses an M/D/1-flavoured inflation ``1 / (1 - u)`` softened and capped:
    utilisation is clamped below 0.95 (hardware throttles demand before a
    true singularity) and only the portion above 50 % utilisation inflates
    latency (below that, banked DRAM hides queueing).
    """
    if misses_per_second < 0:
        raise ValueError("miss rate cannot be negative")
    demand_gbs = misses_per_second * LINE_BYTES / 1e9
    utilisation = min(demand_gbs / memory.bandwidth_gbs, 0.95)
    onset = 0.35
    if utilisation <= onset:
        inflation = 1.0
    else:
        inflation = 1.0 + 0.7 * (utilisation - onset) / (1.0 - utilisation)
    return BandwidthOutcome(
        demand_gbs=demand_gbs,
        utilisation=utilisation,
        latency_inflation=inflation,
    )
