"""Processor specifications — the rows of the paper's Table 3.

A :class:`ProcessorSpec` combines the public data sheet facts (cores, SMT,
LLC, clock, node, transistors, die area, VID range, TDP, memory system) with
the structural model hooks (microarchitecture family, memory latency and
bandwidth, per-structure power character, DVFS operating points).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.quantities import Hertz, Volts
from repro.hardware.microarch import Microarchitecture
from repro.hardware.technology import ProcessNode, VoltageCurve


@dataclass(frozen=True, slots=True)
class MemorySystem:
    """Off-core memory path: shared LLC-miss latency and peak bandwidth."""

    latency_ns: float
    bandwidth_gbs: float
    #: Marketing description from Table 3 (e.g. "DDR3-1066").
    dram: str
    #: Front-side bus in MHz for FSB machines, ``None`` for QPI/DMI parts.
    fsb_mhz: Optional[int] = None

    def __post_init__(self) -> None:
        if self.latency_ns <= 0 or self.bandwidth_gbs <= 0:
            raise ValueError("memory latency and bandwidth must be positive")


@dataclass(frozen=True, slots=True)
class PowerCharacter:
    """Calibrated per-structure power at the stock operating point.

    ``uncore_watts`` is the always-on package floor (interconnect, memory
    controller and GPU where in-package, PLLs, leakage).  ``core_idle_watts``
    is paid per *enabled* core; ``core_active_watts`` is the extra a fully
    busy core draws at stock voltage and frequency with activity 1.0.  The
    dynamic parts scale as ``(V / V_stock)^2 * (f / f_stock)``.
    """

    uncore_watts: float
    core_idle_watts: float
    core_active_watts: float
    #: Package-level power multiplier per Turbo Boost step (§3.6): measured
    #: 1.19-1.22 per step on the i7, near 1.02 on the i5.
    turbo_power_per_step: float = 1.0
    #: Fraction of the published VID span the part actually traverses while
    #: DVFS-scaling under load.  The i5 (32)'s measured power rises far less
    #: steeply with clock than its VID range implies (Architecture Finding
    #: 3) — its management hardware holds voltage low; older parts ride most
    #: of the span.
    voltage_swing: float = 0.5
    #: Fraction of the uncore floor that scales with voltage and frequency
    #: (clock trees, queues); the rest (leakage, I/O) is flat.
    uncore_dynamic_fraction: float = 0.35

    def __post_init__(self) -> None:
        if min(self.uncore_watts, self.core_idle_watts, self.core_active_watts) < 0:
            raise ValueError("power components must be non-negative")
        if self.turbo_power_per_step < 1.0:
            raise ValueError("turbo power multiplier cannot be below 1.0")
        if not 0.0 <= self.voltage_swing <= 1.0:
            raise ValueError("voltage swing must be in [0, 1]")
        if not 0.0 <= self.uncore_dynamic_fraction <= 1.0:
            raise ValueError("uncore dynamic fraction must be in [0, 1]")


@dataclass(frozen=True, slots=True)
class TurboCapability:
    """Turbo Boost parameters (§3.6).

    All active cores may run ``all_core_steps`` bins above the base clock;
    with a single active core the part may add ``single_core_extra`` more.
    A step is one 133 MHz bus multiplier increment on Nehalem.
    """

    step_ghz: float = 0.133
    all_core_steps: int = 1
    single_core_extra: int = 1


@dataclass(frozen=True, slots=True)
class ProcessorSpec:
    """One experimental processor (a row of Table 3)."""

    key: str  # stable identifier, e.g. "i7_45"
    label: str  # the paper's display name, e.g. "i7 (45)"
    model: str  # market name, e.g. "Core i7 920"
    family: Microarchitecture
    codename: str
    sspec: str
    release: str  # e.g. "Nov '08"
    price_usd: Optional[int]
    cores: int
    threads_per_core: int
    llc_mb: float
    stock_clock: Hertz
    node: ProcessNode
    transistors_m: int
    die_mm2: float
    vid_range: Optional[tuple[float, float]]
    tdp_w: float
    memory: MemorySystem
    power: PowerCharacter
    #: Selectable clock frequencies (GHz), lowest to highest; the highest
    #: equals the stock clock.  Single-entry list => no DVFS in the study.
    clock_points_ghz: Sequence[float] = field(default=())
    turbo: Optional[TurboCapability] = None
    #: Residual per-platform performance factor after the structural model;
    #: documented calibration per DESIGN.md §5.
    platform_efficiency: float = 1.0
    #: Per-extra-thread coherence/snoop overhead of the platform's
    #: interconnect (multi-die FSB parts pay the most).
    smp_overhead: float = 0.0

    def __post_init__(self) -> None:
        if self.cores < 1 or self.threads_per_core < 1:
            raise ValueError("cores and threads per core must be >= 1")
        points = tuple(self.clock_points_ghz) or (self.stock_clock.ghz,)
        object.__setattr__(self, "clock_points_ghz", points)
        if any(points[i] >= points[i + 1] for i in range(len(points) - 1)):
            raise ValueError("clock points must be strictly increasing")
        if abs(points[-1] - self.stock_clock.ghz) > 1e-9:
            raise ValueError("highest clock point must equal the stock clock")

    @property
    def hardware_contexts(self) -> int:
        """Total hardware thread contexts, e.g. 8 for the i7 (4C2T)."""
        return self.cores * self.threads_per_core

    @property
    def cmp_smt(self) -> str:
        """Table 3's nCmT notation, e.g. ``4C2T``."""
        return f"{self.cores}C{self.threads_per_core}T"

    @property
    def has_smt(self) -> bool:
        return self.threads_per_core > 1

    @property
    def has_turbo(self) -> bool:
        return self.turbo is not None

    @property
    def min_clock(self) -> Hertz:
        return Hertz.from_ghz(self.clock_points_ghz[0])

    def voltage_curve(self) -> VoltageCurve:
        """VID interpolation over this part's DVFS range (Table 3)."""
        if self.vid_range is None:
            flat = self.node.nominal_voltage
            return VoltageCurve(flat, flat, self.min_clock, self.stock_clock)
        v_min, v_max = self.vid_range
        return VoltageCurve(
            Volts(v_min), Volts(v_max), self.min_clock, self.stock_clock
        )

    def voltage_at(self, frequency: Hertz) -> Volts:
        return self.voltage_curve().voltage_at(frequency)

    def supports_clock(self, ghz: float) -> bool:
        return any(abs(ghz - point) < 1e-9 for point in self.clock_points_ghz)
