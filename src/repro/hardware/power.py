"""Per-structure package power model.

Package power decomposes into:

* an **uncore floor** — interconnect, memory controller / FSB interface,
  in-package GPU where present, PLLs, and baseline leakage; paid whenever
  the package is powered;
* a **per-enabled-core idle** component — clock distribution and leakage of
  a core the BIOS has not disabled;
* a **per-busy-core active** component — switching power, scaling with
  voltage squared, frequency, the core's achieved issue utilisation, and
  the workload's intrinsic switching activity.

The three coefficients per processor are the calibrated
:class:`~repro.hardware.processor.PowerCharacter` (DESIGN.md §5).  Dynamic
parts scale as ``(V_eff / V_stock)^2 * (f / f_stock)``; ``V_eff`` traverses
only ``voltage_swing`` of the published VID span, which is how the model
expresses the i5 (32)'s unusually flat power-versus-clock curve
(Architecture Finding 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.quantities import Watts
from repro.hardware.config import Configuration
from repro.hardware.turbo import TurboState, power_multiplier


def voltage_scale(config: Configuration) -> float:
    """``(V_eff / V_stock)^2`` for the configured clock.

    The effective voltage interpolates across ``voltage_swing`` of the VID
    span between the part's lowest and stock clocks.
    """
    spec = config.spec
    points = spec.clock_points_ghz
    low, high = points[0], points[-1]
    if high == low:
        return 1.0
    position = (config.clock_ghz - low) / (high - low)
    position = min(max(position, 0.0), 1.0)
    if spec.vid_range is None:
        relative_span = 0.0
    else:
        v_min, v_max = spec.vid_range
        relative_span = 1.0 - v_min / v_max
    v_ratio = 1.0 - spec.power.voltage_swing * (1.0 - position) * relative_span
    return v_ratio * v_ratio


def frequency_scale(config: Configuration) -> float:
    """``f / f_stock`` for the configured clock."""
    return config.clock_ghz / config.spec.clock_points_ghz[-1]


@dataclass(frozen=True, slots=True)
class PowerBreakdown:
    """Package power for one run, by structure."""

    uncore: Watts
    core_idle: Watts
    core_active: Watts
    turbo_multiplier: float

    @property
    def total(self) -> Watts:
        base = self.uncore.value + self.core_idle.value + self.core_active.value
        return Watts(base * self.turbo_multiplier)


def package_power(
    config: Configuration,
    busy_cores: float,
    core_utilisation: float,
    activity: float,
    turbo: TurboState,
) -> PowerBreakdown:
    """Average package power for a run.

    ``busy_cores`` may be fractional (a core busy for half the run counts
    half).  ``core_utilisation`` is achieved issue slots over peak — a
    memory-bound workload switches less logic per cycle and so draws less
    power (§2.5: 471.omnetpp at 23 W versus fluidanimate at 89 W on the
    i7).  ``activity`` is the workload's intrinsic switching factor around
    1.0 (FP-dense code is high, pointer chasing low).
    """
    if busy_cores < 0 or busy_cores > config.active_cores:
        raise ValueError(
            f"busy cores {busy_cores} outside [0, {config.active_cores}]"
        )
    if not 0.0 <= core_utilisation <= 1.0:
        raise ValueError("core utilisation must be in [0, 1]")
    if activity <= 0:
        raise ValueError("activity must be positive")
    character = config.spec.power
    dynamic_scale = voltage_scale(config) * frequency_scale(config)
    uncore_dyn = character.uncore_dynamic_fraction
    uncore = Watts(
        character.uncore_watts * (1.0 - uncore_dyn + uncore_dyn * dynamic_scale)
    )
    idle = Watts(character.core_idle_watts * config.active_cores * dynamic_scale)
    # Busy cores never drop to zero draw even when fully stalled: clocks
    # still toggle.  Blend a 35 % floor with utilisation-driven switching.
    effective_switching = activity * (0.35 + 0.65 * core_utilisation)
    active = Watts(
        character.core_active_watts * busy_cores * dynamic_scale * effective_switching
    )
    return PowerBreakdown(
        uncore=uncore,
        core_idle=idle,
        core_active=active,
        turbo_multiplier=power_multiplier(config, turbo),
    )
