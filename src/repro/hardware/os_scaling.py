"""OS-level context scaling — and why the paper rejected it (§2.8).

"We experimented with operating system configuration, which is far more
convenient, but it was not sufficiently reliable.  For example, operating
system scaling of hardware contexts often caused power consumption to
increase as hardware resources were decreased!  Extensive investigation
revealed a bug in the Linux kernel."

This module models the era's ``/sys/devices/system/cpu/cpuN/online``
path with that bug: offlining a context migrates its load but (on the
affected kernel) leaves the sibling's idle state machinery confused, so
the remaining contexts never enter deep idle — power goes *up* as
resources go *down*.  It exists so the methodological choice (BIOS
configuration) is testable rather than folklore, and so the harness can
demonstrate the anomaly the authors chased.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.quantities import Watts
from repro.execution.engine import Execution, ExecutionEngine
from repro.hardware.config import Configuration
from repro.workloads.benchmark import Benchmark

#: Extra package power when the buggy kernel keeps offlined contexts'
#: siblings out of deep idle (fraction of the offlined cores' idle power
#: that keeps burning, plus polling overhead on the remaining cores).
_BUGGY_IDLE_LEAK = 2.6


@dataclass(frozen=True)
class OsContextScaling:
    """CPU hotplug as the 2.6.31-era kernel delivered it.

    ``buggy`` reproduces the measured anomaly; ``buggy=False`` models a
    fixed kernel (which behaves like BIOS configuration, minus the
    firmware-level resource release).
    """

    engine: ExecutionEngine
    buggy: bool = True

    def run_with_offlined_cores(
        self,
        benchmark: Benchmark,
        stock_config: Configuration,
        online_cores: int,
    ) -> tuple[Execution, Watts]:
        """Execute with cores offlined via the OS instead of the BIOS.

        Returns the execution (timing is unaffected by the bug) and the
        package power the buggy kernel actually produces.
        """
        if not 1 <= online_cores <= stock_config.spec.cores:
            raise ValueError("online core count outside the package")
        os_config = stock_config.with_cores(online_cores).without_turbo()
        execution = self.engine.ideal(benchmark, os_config)
        if not self.buggy or online_cores == stock_config.spec.cores:
            return execution, execution.average_power

        offlined = stock_config.spec.cores - online_cores
        # The offlined cores' idle machinery never settles: their idle
        # power keeps burning at a multiple, visible at the package.
        leak = (
            stock_config.spec.power.core_idle_watts
            * offlined
            * _BUGGY_IDLE_LEAK
        )
        return execution, Watts(execution.average_power.value + leak)


def anomaly_demonstration(
    engine: ExecutionEngine,
    benchmark: Benchmark,
    stock_config: Configuration,
) -> dict[str, float]:
    """The §2.8 observation in numbers: power per online-core count.

    With the buggy kernel, *fewer* online cores can mean *more* power —
    the inversion that sent the authors to the BIOS.
    """
    scaler = OsContextScaling(engine=engine, buggy=True)
    readings = {}
    for online in range(stock_config.spec.cores, 0, -1):
        _, watts = scaler.run_with_offlined_cores(
            benchmark, stock_config, online
        )
        readings[f"{online} cores online"] = round(watts.value, 2)
    return readings
