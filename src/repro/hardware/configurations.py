"""The 45-point configuration space of §2.8.

The paper evaluates the eight stock processors plus BIOS-configured variants
for a total of 45 configurations, 29 of which are at the 45 nm node (used by
the Pareto analysis, §4.2).  This module enumerates that space explicitly:
each entry corresponds to a controlled experiment the paper runs (CMP, SMT,
clock scaling, die shrink, microarchitecture matching, Turbo Boost).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.hardware import catalog
from repro.hardware.config import Configuration, stock
from repro.hardware.processor import ProcessorSpec


def _cfg(
    spec: ProcessorSpec,
    cores: int,
    threads: int,
    clock_ghz: float,
    turbo: bool = False,
) -> Configuration:
    return Configuration(
        spec=spec,
        active_cores=cores,
        threads_per_core=threads,
        clock_ghz=clock_ghz,
        turbo_enabled=turbo,
    )


def _pentium4_configurations() -> list[Configuration]:
    p4 = catalog.PENTIUM4_130
    return [
        stock(p4),  # 1C2T @ 2.4
        _cfg(p4, 1, 1, 2.4),  # SMT disabled (§3.2)
    ]


def _core2duo65_configurations() -> list[Configuration]:
    c2d = catalog.CORE2DUO_65
    return [
        stock(c2d),  # 2C1T @ 2.4
        _cfg(c2d, 1, 1, 2.4),  # single core
    ]


def _core2quad65_configurations() -> list[Configuration]:
    c2q = catalog.CORE2QUAD_65
    return [
        stock(c2q),  # 4C1T @ 2.4
        _cfg(c2q, 2, 1, 2.4),
        _cfg(c2q, 1, 1, 2.4),
    ]


def _i7_configurations() -> list[Configuration]:
    """Nineteen i7 (45) settings: the richest slice of the space.

    Covers every core/thread combination at the clock extremes, the Table 5
    intermediate clocks, and Turbo on/off contrasts at the stock clock.
    """
    i7 = catalog.CORE_I7_45
    configurations: list[Configuration] = []
    for cores in (1, 2, 4):
        for threads in (1, 2):
            configurations.append(_cfg(i7, cores, threads, 1.6))
            configurations.append(_cfg(i7, cores, threads, 2.66))
    configurations.extend(
        [
            _cfg(i7, 4, 2, 2.13),
            _cfg(i7, 4, 2, 2.4),
            _cfg(i7, 1, 2, 2.4),
            # Turbo-enabled contrasts (§3.6).
            _cfg(i7, 1, 1, 2.66, turbo=True),
            _cfg(i7, 2, 2, 2.66, turbo=True),
            _cfg(i7, 4, 1, 2.66, turbo=True),
            _cfg(i7, 4, 2, 2.66, turbo=True),  # stock
        ]
    )
    return configurations


def _atom_configurations() -> list[Configuration]:
    atom = catalog.ATOM_45
    return [
        stock(atom),  # 1C2T @ 1.66
        _cfg(atom, 1, 1, 1.66),
    ]


def _core2duo45_configurations() -> list[Configuration]:
    c2d = catalog.CORE2DUO_45
    return [
        stock(c2d),  # 2C1T @ 3.06
        _cfg(c2d, 2, 1, 1.6),
        _cfg(c2d, 1, 1, 3.06),
        _cfg(c2d, 1, 1, 1.6),
    ]


def _atomd_configurations() -> list[Configuration]:
    atomd = catalog.ATOM_D510_45
    return [
        stock(atomd),  # 2C2T @ 1.66
        _cfg(atomd, 2, 1, 1.66),
        _cfg(atomd, 1, 2, 1.66),
        _cfg(atomd, 1, 1, 1.66),
    ]


def _i5_configurations() -> list[Configuration]:
    i5 = catalog.CORE_I5_32
    return [
        stock(i5),  # 2C2T @ 3.46 + TB
        _cfg(i5, 2, 2, 3.46),  # TB off
        _cfg(i5, 2, 2, 1.2),
        _cfg(i5, 2, 1, 3.46),
        _cfg(i5, 2, 1, 1.2),
        _cfg(i5, 1, 2, 3.46),
        _cfg(i5, 1, 2, 1.2),
        _cfg(i5, 1, 1, 3.46, turbo=True),
        _cfg(i5, 1, 1, 3.46),
    ]


def all_configurations() -> tuple[Configuration, ...]:
    """The full 45-configuration space of the study."""
    configurations: list[Configuration] = []
    configurations.extend(_pentium4_configurations())
    configurations.extend(_core2duo65_configurations())
    configurations.extend(_core2quad65_configurations())
    configurations.extend(_i7_configurations())
    configurations.extend(_atom_configurations())
    configurations.extend(_core2duo45_configurations())
    configurations.extend(_atomd_configurations())
    configurations.extend(_i5_configurations())
    return tuple(configurations)


def stock_configurations() -> tuple[Configuration, ...]:
    """The eight as-shipped configurations, Table 3 order."""
    return tuple(stock(spec) for spec in catalog.PROCESSORS)


def node_45nm_configurations() -> tuple[Configuration, ...]:
    """The 29 configurations of 45 nm parts used by the Pareto study."""
    keys = set(catalog.NODE_45NM_KEYS)
    return tuple(c for c in all_configurations() if c.spec.key in keys)


def configurations_for(
    spec: ProcessorSpec,
    pool: Iterable[Configuration] | None = None,
) -> tuple[Configuration, ...]:
    """All study configurations of one processor."""
    source: Sequence[Configuration] = (
        tuple(pool) if pool is not None else all_configurations()
    )
    return tuple(c for c in source if c.spec.key == spec.key)
