"""Turbo Boost semantics (§3.6).

With Turbo Boost enabled, all active cores run one 133 MHz step above the
base clock when temperature, power, and current allow; with a single active
core the part may add one more step.  The paper verified both behaviours
empirically on the i7 (45) and i5 (32).  Boost only engages at the stock
(highest) clock setting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.quantities import Hertz
from repro.hardware.config import Configuration


@dataclass(frozen=True, slots=True)
class TurboState:
    """Resolved Turbo Boost outcome for one run."""

    steps: int
    frequency: Hertz

    @property
    def engaged(self) -> bool:
        return self.steps > 0


def resolve(config: Configuration, busy_cores: int) -> TurboState:
    """Clock the configuration actually runs at, given active load.

    ``busy_cores`` is the number of cores with at least one runnable thread;
    the single-core bonus step applies only when exactly one core is busy
    (idle-but-enabled cores are power gated on Nehalem and do not count).
    """
    if busy_cores < 0:
        raise ValueError("busy core count cannot be negative")
    base = config.clock
    if not config.turbo_enabled or config.spec.turbo is None or busy_cores == 0:
        return TurboState(steps=0, frequency=base)
    capability = config.spec.turbo
    steps = capability.all_core_steps
    if busy_cores == 1:
        steps += capability.single_core_extra
    boosted = Hertz.from_ghz(base.ghz + steps * capability.step_ghz)
    return TurboState(steps=steps, frequency=boosted)


def power_multiplier(config: Configuration, state: TurboState) -> float:
    """Package-level power multiplier for an engaged boost.

    The paper measures the boost cost directly (Fig. 10): roughly +19 % per
    step on the i7 (45) and roughly +2.5 % per step on the i5 (32).  The
    per-processor per-step factor lives in
    :class:`~repro.hardware.processor.PowerCharacter`.
    """
    if not state.engaged:
        return 1.0
    return config.spec.power.turbo_power_per_step ** state.steps
