"""The eight experimental processors (Table 3).

Data sheet columns come straight from the paper's Table 3.  Memory latency
and bandwidth figures are period-typical values for each platform's DRAM and
interconnect.  The :class:`~repro.hardware.processor.PowerCharacter` values
are the per-processor calibration described in DESIGN.md §5: they are chosen
once so that stock-configuration group power lands near the paper's Table 4,
and everything else (feature deltas, scaling curves, Pareto structure) is
produced by the structural model.
"""

from __future__ import annotations

from repro.core.quantities import Hertz
from repro.hardware.microarch import BONNELL, CORE, NEHALEM, NETBURST
from repro.hardware.processor import (
    MemorySystem,
    PowerCharacter,
    ProcessorSpec,
    TurboCapability,
)
from repro.hardware.technology import node_for

PENTIUM4_130 = ProcessorSpec(
    key="pentium4_130",
    label="Pentium4 (130)",
    model="Pentium 4",
    family=NETBURST,
    codename="Northwood",
    sspec="SL6WF",
    release="May '03",
    price_usd=None,
    cores=1,
    threads_per_core=2,
    llc_mb=0.5,
    stock_clock=Hertz.from_ghz(2.4),
    node=node_for(130),
    transistors_m=55,
    die_mm2=131,
    vid_range=None,
    tdp_w=66,
    memory=MemorySystem(latency_ns=115.0, bandwidth_gbs=2.0, dram="DDR-400", fsb_mhz=800),
    power=PowerCharacter(uncore_watts=21.0, core_idle_watts=5.0, core_active_watts=34.0),
    clock_points_ghz=(2.4,),
    smp_overhead=0.008,
)

CORE2DUO_65 = ProcessorSpec(
    key="c2d_65",
    label="C2D (65)",
    model="Core 2 Duo E6600",
    family=CORE,
    codename="Conroe",
    sspec="SL9S8",
    release="Jul '06",
    price_usd=316,
    cores=2,
    threads_per_core=1,
    llc_mb=4.0,
    stock_clock=Hertz.from_ghz(2.4),
    node=node_for(65),
    transistors_m=291,
    die_mm2=143,
    vid_range=(0.85, 1.50),
    tdp_w=65,
    memory=MemorySystem(latency_ns=90.0, bandwidth_gbs=2.5, dram="DDR2-800", fsb_mhz=1066),
    power=PowerCharacter(uncore_watts=14.5, core_idle_watts=3.0, core_active_watts=6.5),
    clock_points_ghz=(1.6, 2.4),
    smp_overhead=0.08,
)

CORE2QUAD_65 = ProcessorSpec(
    key="c2q_65",
    label="C2Q (65)",
    model="Core 2 Quad Q6600",
    family=CORE,
    codename="Kentsfield",
    sspec="SL9UM",
    release="Jan '07",
    price_usd=851,
    cores=4,
    threads_per_core=1,
    llc_mb=8.0,
    stock_clock=Hertz.from_ghz(2.4),
    node=node_for(65),
    transistors_m=582,
    die_mm2=286,
    vid_range=(0.85, 1.50),
    tdp_w=105,
    # Two dies share one front-side bus: coherence snoops between the
    # dies eat into the already-modest effective bandwidth.
    memory=MemorySystem(latency_ns=90.0, bandwidth_gbs=3.6, dram="DDR2-800", fsb_mhz=1066),
    # Two Conroe dies in one package: twice the uncore floor.
    power=PowerCharacter(uncore_watts=28.0, core_idle_watts=4.0, core_active_watts=7.5),
    clock_points_ghz=(1.6, 2.4),
    smp_overhead=0.05,
)

CORE_I7_45 = ProcessorSpec(
    key="i7_45",
    label="i7 (45)",
    model="Core i7 920",
    family=NEHALEM,
    codename="Bloomfield",
    sspec="SLBCH",
    release="Nov '08",
    price_usd=284,
    cores=4,
    threads_per_core=2,
    llc_mb=8.0,
    stock_clock=Hertz.from_ghz(2.66),
    node=node_for(45),
    transistors_m=731,
    die_mm2=263,
    vid_range=(0.80, 1.38),
    tdp_w=130,
    memory=MemorySystem(latency_ns=55.0, bandwidth_gbs=10.0, dram="DDR3-1066"),
    power=PowerCharacter(
        uncore_watts=4.0,
        core_idle_watts=2.6,
        core_active_watts=13.5,
        turbo_power_per_step=1.21,
        voltage_swing=0.50,
        uncore_dynamic_fraction=0.5,
    ),
    clock_points_ghz=(1.6, 2.13, 2.4, 2.66),
    turbo=TurboCapability(step_ghz=0.133, all_core_steps=1, single_core_extra=1),
    smp_overhead=0.022,
)

ATOM_45 = ProcessorSpec(
    key="atom_45",
    label="Atom (45)",
    model="Atom 230",
    family=BONNELL,
    codename="Diamondville",
    sspec="SLB6Z",
    release="Jun '08",
    price_usd=29,
    cores=1,
    threads_per_core=2,
    llc_mb=0.5,
    stock_clock=Hertz.from_ghz(1.66),
    node=node_for(45),
    transistors_m=47,
    die_mm2=26,
    vid_range=(0.90, 1.16),
    tdp_w=4,
    memory=MemorySystem(latency_ns=130.0, bandwidth_gbs=1.3, dram="DDR2-800", fsb_mhz=533),
    power=PowerCharacter(uncore_watts=1.20, core_idle_watts=0.22, core_active_watts=1.22),
    clock_points_ghz=(1.66,),
)

CORE2DUO_45 = ProcessorSpec(
    key="c2d_45",
    label="C2D (45)",
    model="Core 2 Duo E7600",
    family=CORE,
    codename="Wolfdale",
    sspec="SLGTD",
    release="May '09",
    price_usd=133,
    cores=2,
    threads_per_core=1,
    llc_mb=3.0,
    stock_clock=Hertz.from_ghz(3.06),
    node=node_for(45),
    transistors_m=228,
    die_mm2=82,
    vid_range=(0.85, 1.36),
    tdp_w=65,
    memory=MemorySystem(latency_ns=82.0, bandwidth_gbs=3.4, dram="DDR2-800", fsb_mhz=1066),
    power=PowerCharacter(uncore_watts=10.0, core_idle_watts=2.5, core_active_watts=5.0,
                         voltage_swing=0.75, uncore_dynamic_fraction=0.55),
    clock_points_ghz=(1.6, 2.4, 3.06),
    smp_overhead=0.025,
)

ATOM_D510_45 = ProcessorSpec(
    key="atomd_45",
    label="AtomD (45)",
    model="Atom D510",
    family=BONNELL,
    codename="Pineview",
    sspec="SLBLA",
    release="Dec '09",
    price_usd=63,
    cores=2,
    threads_per_core=2,
    llc_mb=1.0,
    stock_clock=Hertz.from_ghz(1.66),
    node=node_for(45),
    transistors_m=176,
    die_mm2=87,
    vid_range=(0.80, 1.17),
    tdp_w=13,
    memory=MemorySystem(latency_ns=118.0, bandwidth_gbs=2.2, dram="DDR2-800", fsb_mhz=665),
    # Pineview carries an in-package GPU and memory controller: higher floor.
    power=PowerCharacter(uncore_watts=2.50, core_idle_watts=0.35, core_active_watts=1.80),
    clock_points_ghz=(1.66,),
    smp_overhead=0.015,
)

CORE_I5_32 = ProcessorSpec(
    key="i5_32",
    label="i5 (32)",
    model="Core i5 670",
    family=NEHALEM,
    codename="Clarkdale",
    sspec="SLBLT",
    release="Jan '10",
    price_usd=284,
    cores=2,
    threads_per_core=2,
    llc_mb=4.0,
    stock_clock=Hertz.from_ghz(3.46),
    node=node_for(32),
    transistors_m=382,
    die_mm2=81,
    vid_range=(0.65, 1.40),
    tdp_w=73,
    memory=MemorySystem(latency_ns=66.0, bandwidth_gbs=10.0, dram="DDR3-1333"),
    power=PowerCharacter(
        uncore_watts=10.0,
        core_idle_watts=1.5,
        core_active_watts=10.5,
        turbo_power_per_step=1.025,
        voltage_swing=0.25,
        uncore_dynamic_fraction=0.30,
    ),
    clock_points_ghz=(1.2, 1.87, 2.4, 2.66, 3.46),
    turbo=TurboCapability(step_ghz=0.133, all_core_steps=1, single_core_extra=1),
    platform_efficiency=0.88,
    smp_overhead=0.025,
)

#: All eight processors in the paper's Table 3 order.
PROCESSORS: tuple[ProcessorSpec, ...] = (
    PENTIUM4_130,
    CORE2DUO_65,
    CORE2QUAD_65,
    CORE_I7_45,
    ATOM_45,
    CORE2DUO_45,
    ATOM_D510_45,
    CORE_I5_32,
)

PROCESSORS_BY_KEY = {spec.key: spec for spec in PROCESSORS}

#: The four machines used to define reference time and energy (§2.6): one
#: per microarchitecture and one per technology generation.
REFERENCE_PROCESSOR_KEYS = ("pentium4_130", "c2d_65", "atom_45", "i5_32")

#: The 45 nm parts used for the Pareto analysis (§4.2).
NODE_45NM_KEYS = ("atom_45", "atomd_45", "c2d_45", "i7_45")


def processor(key: str) -> ProcessorSpec:
    """Look up a processor by its stable key (e.g. ``"i7_45"``)."""
    try:
        return PROCESSORS_BY_KEY[key]
    except KeyError:
        raise KeyError(
            f"unknown processor {key!r}; known: {sorted(PROCESSORS_BY_KEY)}"
        ) from None


def reference_processors() -> tuple[ProcessorSpec, ...]:
    """The four normalisation-reference machines of §2.6."""
    return tuple(processor(key) for key in REFERENCE_PROCESSOR_KEYS)
