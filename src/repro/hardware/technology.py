"""Process-technology physics: 130 nm through 32 nm.

The paper spans four process nodes (§1, Table 3).  This module captures the
node-level scaling facts the power model needs:

* a nominal supply voltage per node (Dennard scaling slowed over this
  period, so voltage drops far less than feature size);
* an effective switched-capacitance scale per transistor (shrinks with
  feature size);
* a leakage scale per transistor (grows relative to dynamic power at
  smaller nodes — the post-Dennard effect Le Sueur & Heiser observed).

Voltage at a given operating frequency interpolates linearly across the
processor's VID range (Table 3 publishes the ranges), which is how real
desktop DVFS tables behave to first order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.quantities import Hertz, Volts


@dataclass(frozen=True, slots=True)
class ProcessNode:
    """One CMOS process generation."""

    nanometers: int
    nominal_voltage: Volts
    #: Effective switched capacitance per transistor, relative to 130 nm.
    capacitance_scale: float
    #: Static (leakage) power per transistor at nominal voltage, relative
    #: to 130 nm.  Rises as a *fraction of total power* at small nodes.
    leakage_scale: float

    def __post_init__(self) -> None:
        if self.nanometers <= 0:
            raise ValueError("process node must be positive")
        if self.capacitance_scale <= 0 or self.leakage_scale <= 0:
            raise ValueError("scaling factors must be positive")


#: The four nodes of the study.  Capacitance roughly halves per full node
#: shrink; leakage per transistor stays roughly flat in absolute terms,
#: which makes it a growing *share* as dynamic energy falls.
NODE_130NM = ProcessNode(130, Volts(1.50), capacitance_scale=1.00, leakage_scale=1.00)
NODE_65NM = ProcessNode(65, Volts(1.25), capacitance_scale=0.42, leakage_scale=1.15)
NODE_45NM = ProcessNode(45, Volts(1.10), capacitance_scale=0.26, leakage_scale=1.30)
NODE_32NM = ProcessNode(32, Volts(1.00), capacitance_scale=0.17, leakage_scale=1.45)

NODES = {
    130: NODE_130NM,
    65: NODE_65NM,
    45: NODE_45NM,
    32: NODE_32NM,
}


def node_for(nanometers: int) -> ProcessNode:
    """Look up the :class:`ProcessNode` for a feature size in nanometers."""
    try:
        return NODES[nanometers]
    except KeyError:
        raise KeyError(
            f"unknown process node {nanometers} nm; the study covers {sorted(NODES)}"
        ) from None


@dataclass(frozen=True, slots=True)
class VoltageCurve:
    """Linear VID interpolation between a processor's frequency extremes.

    Real processors publish a VID range (Table 3) and walk through it as
    frequency scales.  Below ``f_min`` the curve clamps at ``v_min`` and
    above ``f_max`` (Turbo Boost territory) it extrapolates, which is why
    Turbo steps are disproportionately expensive in power (§3.6).
    """

    v_min: Volts
    v_max: Volts
    f_min: Hertz
    f_max: Hertz

    def __post_init__(self) -> None:
        if self.f_max.value < self.f_min.value:
            raise ValueError("f_max must be >= f_min")
        if self.v_max.value < self.v_min.value:
            raise ValueError("v_max must be >= v_min")

    def voltage_at(self, frequency: Hertz) -> Volts:
        if frequency.value <= 0:
            raise ValueError("frequency must be positive")
        if self.f_max.value == self.f_min.value:
            return self.v_max
        fraction = (frequency.value - self.f_min.value) / (
            self.f_max.value - self.f_min.value
        )
        fraction = max(fraction, 0.0)  # clamp below the DVFS floor
        span = self.v_max.value - self.v_min.value
        return Volts(self.v_min.value + fraction * span)
