"""Process-technology physics: measured 130–32 nm plus projected 22–7 nm.

The paper spans four process nodes (§1, Table 3).  This module captures the
node-level scaling facts the power model needs:

* a nominal supply voltage per node (Dennard scaling slowed over this
  period, so voltage drops far less than feature size);
* an effective switched-capacitance scale per transistor (shrinks with
  feature size);
* a leakage scale per transistor (grows relative to dynamic power at
  smaller nodes — the post-Dennard effect Le Sueur & Heiser observed).

Voltage at a given operating frequency interpolates linearly across the
processor's VID range (Table 3 publishes the ranges), which is how real
desktop DVFS tables behave to first order.

Beyond the measured era, ``PROJECTED_NODES`` synthesizes 22/14/10/7 nm
operating points for the forward-projection subsystem (docs/projection.md)
by extrapolating the measured trends under post-Dennard assumptions:
capacitance shrink slows toward ~0.7x per step, supply voltage creeps down
toward a fixed floor, leakage keeps growing as a share of total power, and
a rising fraction of a fixed-area die must stay dark under a fixed power
budget.  Projected nodes carry ``synthetic=True`` so catalog views can
flag them; they never enter ``NODES``, which stays the measured study.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.quantities import Hertz, Volts


@dataclass(frozen=True, slots=True)
class ProcessNode:
    """One CMOS process generation."""

    nanometers: int
    nominal_voltage: Volts
    #: Effective switched capacitance per transistor, relative to 130 nm.
    capacitance_scale: float
    #: Static (leakage) power per transistor at nominal voltage, relative
    #: to 130 nm.  Rises as a *fraction of total power* at small nodes.
    leakage_scale: float
    #: Lowest stable supply voltage for the node (projected nodes only;
    #: the measured parts publish per-processor VID ranges instead).
    voltage_floor: Volts | None = None
    #: Fraction of a fixed-area die that a fixed power budget cannot keep
    #: switching at nominal voltage and frequency — the dark-silicon share
    #: Esmaeilzadeh et al. project to grow every shrink.  Zero for the
    #: measured era, where TDP still covered the full die.
    dark_silicon_fraction: float = 0.0
    #: True for synthesized post-2011 operating points (not measured).
    synthetic: bool = False

    def __post_init__(self) -> None:
        if self.nanometers <= 0:
            raise ValueError("process node must be positive")
        if self.capacitance_scale <= 0 or self.leakage_scale <= 0:
            raise ValueError("scaling factors must be positive")
        if not 0.0 <= self.dark_silicon_fraction < 1.0:
            raise ValueError("dark-silicon fraction must be in [0, 1)")
        if self.voltage_floor is not None:
            if self.voltage_floor.value <= 0:
                raise ValueError("voltage floor must be positive")
            if self.voltage_floor.value > self.nominal_voltage.value:
                raise ValueError("voltage floor cannot exceed nominal voltage")

    @property
    def vid_span(self) -> tuple[Volts, Volts]:
        """The node's (floor, nominal) supply-voltage span.

        Falls back to the nominal voltage alone when no floor is defined,
        matching measured parts whose DVFS range is per-processor.
        """
        floor = self.voltage_floor if self.voltage_floor is not None else self.nominal_voltage
        return (floor, self.nominal_voltage)


#: The four nodes of the study.  Capacitance roughly halves per full node
#: shrink; leakage per transistor stays roughly flat in absolute terms,
#: which makes it a growing *share* as dynamic energy falls.
NODE_130NM = ProcessNode(130, Volts(1.50), capacitance_scale=1.00, leakage_scale=1.00)
NODE_65NM = ProcessNode(65, Volts(1.25), capacitance_scale=0.42, leakage_scale=1.15)
NODE_45NM = ProcessNode(45, Volts(1.10), capacitance_scale=0.26, leakage_scale=1.30)
NODE_32NM = ProcessNode(32, Volts(1.00), capacitance_scale=0.17, leakage_scale=1.45)

NODES = {
    130: NODE_130NM,
    65: NODE_65NM,
    45: NODE_45NM,
    32: NODE_32NM,
}


#: Synthesized post-2011 operating points (docs/projection.md).  The
#: per-step capacitance shrink flattens (0.42, 0.62, 0.65 per measured
#: step -> 0.68, 0.70, 0.71, 0.74 projected) as Dennard scaling ends;
#: nominal voltage keeps creeping down but the floors converge near the
#: ~0.6 V threshold-limited minimum; leakage keeps rising as a share; and
#: the dark-silicon fraction grows every shrink because the power budget
#: scales far slower than transistor density ("16 Years of SPEC Power"
#: and "Trends in Processor Architecture", PAPERS.md).
NODE_22NM = ProcessNode(
    22, Volts(0.95), capacitance_scale=0.115, leakage_scale=1.62,
    voltage_floor=Volts(0.65), dark_silicon_fraction=0.45, synthetic=True,
)
NODE_14NM = ProcessNode(
    14, Volts(0.90), capacitance_scale=0.080, leakage_scale=1.80,
    voltage_floor=Volts(0.62), dark_silicon_fraction=0.55, synthetic=True,
)
NODE_10NM = ProcessNode(
    10, Volts(0.85), capacitance_scale=0.057, leakage_scale=2.00,
    voltage_floor=Volts(0.60), dark_silicon_fraction=0.60, synthetic=True,
)
NODE_7NM = ProcessNode(
    7, Volts(0.80), capacitance_scale=0.042, leakage_scale=2.22,
    voltage_floor=Volts(0.58), dark_silicon_fraction=0.64, synthetic=True,
)

PROJECTED_NODES = {
    22: NODE_22NM,
    14: NODE_14NM,
    10: NODE_10NM,
    7: NODE_7NM,
}

#: Measured and projected nodes together, largest feature size first.
ALL_NODES = {**NODES, **PROJECTED_NODES}


def node_for(nanometers: int) -> ProcessNode:
    """Look up the :class:`ProcessNode` for a feature size in nanometers."""
    try:
        return NODES[nanometers]
    except KeyError:
        raise KeyError(
            f"unknown process node {nanometers} nm; the study covers {sorted(NODES)}"
        ) from None


def any_node_for(nanometers: int) -> ProcessNode:
    """Look up a measured *or* projected node by feature size."""
    try:
        return ALL_NODES[nanometers]
    except KeyError:
        raise KeyError(
            f"unknown process node {nanometers} nm; "
            f"known nodes are {sorted(ALL_NODES, reverse=True)}"
        ) from None


@dataclass(frozen=True, slots=True)
class VoltageCurve:
    """Linear VID interpolation between a processor's frequency extremes.

    Real processors publish a VID range (Table 3) and walk through it as
    frequency scales.  Below ``f_min`` the curve clamps at ``v_min`` and
    above ``f_max`` (Turbo Boost territory) it extrapolates, which is why
    Turbo steps are disproportionately expensive in power (§3.6).
    """

    v_min: Volts
    v_max: Volts
    f_min: Hertz
    f_max: Hertz

    def __post_init__(self) -> None:
        if self.f_max.value < self.f_min.value:
            raise ValueError("f_max must be >= f_min")
        if self.v_max.value < self.v_min.value:
            raise ValueError("v_max must be >= v_min")

    def voltage_at(self, frequency: Hertz) -> Volts:
        if frequency.value <= 0:
            raise ValueError("frequency must be positive")
        if self.f_max.value == self.f_min.value:
            return self.v_max
        fraction = (frequency.value - self.f_min.value) / (
            self.f_max.value - self.f_min.value
        )
        fraction = max(fraction, 0.0)  # clamp below the DVFS floor
        span = self.v_max.value - self.v_min.value
        return Volts(self.v_min.value + fraction * span)
