"""Last-level cache model.

The execution model needs one number from the cache hierarchy: LLC misses
per kilo-instruction for a workload on a given processor configuration.
Workload signatures record their miss rate at a 4 MB reference LLC
(:data:`REFERENCE_LLC_MB`); this module rescales it for the actual cache
size and for sharing between hardware contexts.

The size model is the standard hyperbolic capacity curve: the miss rate is
proportional to the fraction of the working set that does not fit,
``footprint / (footprint + capacity)``.  It is smooth, monotone in both
arguments, and captures the qualitative cliffs that matter here (the 512 KB
Pentium 4 / Atom caches versus the 8 MB i7/C2Q).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.config import Configuration

#: The LLC size at which workload signatures quote their miss rate.
REFERENCE_LLC_MB = 4.0


def capacity_miss_factor(footprint_mb: float, llc_mb: float) -> float:
    """Relative miss rate of a working set against a cache size.

    Normalised so the factor is 1.0 at :data:`REFERENCE_LLC_MB`; smaller
    caches raise it, larger caches lower it, and the factor tends to a
    finite limit for tiny caches (compulsory + streaming misses dominate).
    """
    if footprint_mb < 0:
        raise ValueError("footprint cannot be negative")
    if llc_mb <= 0:
        raise ValueError("cache size must be positive")
    if footprint_mb < 1e-9:
        return 1.0  # no cache-resident data: miss rate is all compulsory
    reference = footprint_mb / (footprint_mb + REFERENCE_LLC_MB)
    actual = footprint_mb / (footprint_mb + llc_mb)
    return actual / reference


def sharing_pressure(contexts: int) -> float:
    """Extra capacity pressure from contexts sharing one LLC.

    Co-running threads of the same program share much of their working set,
    so pressure grows with the square root of the context count rather than
    linearly.
    """
    if contexts < 1:
        raise ValueError("context count must be >= 1")
    return float(contexts) ** 0.5


@dataclass(frozen=True, slots=True)
class CacheOutcome:
    """Resolved cache behaviour for one run."""

    mpki: float
    effective_llc_mb: float


def resolve_mpki(
    base_mpki: float,
    footprint_mb: float,
    config: Configuration,
    sharing_contexts: int = 1,
) -> CacheOutcome:
    """LLC misses per kilo-instruction on ``config``.

    ``base_mpki`` is the workload's rate at the 4 MB reference cache with a
    single context.  ``sharing_contexts`` is how many software threads are
    competing for the LLC (1 for a single-threaded run).
    """
    if base_mpki < 0:
        raise ValueError("miss rate cannot be negative")
    effective_llc = config.spec.llc_mb / sharing_pressure(sharing_contexts)
    factor = capacity_miss_factor(footprint_mb, effective_llc)
    return CacheOutcome(mpki=base_mpki * factor, effective_llc_mb=effective_llc)
