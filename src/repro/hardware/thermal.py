"""Thermal model: junction temperature and boost headroom (§3.6).

Turbo Boost engages "if temperature, power, and current conditions
allow".  The study's benchmarks all boosted successfully (the paper
verified the frequencies empirically), but the *sustainability* of the
boost depends on how close a workload drives the die to its thermal
limit.  This module provides a first-order steady-state model — junction
temperature from package power through a junction-to-ambient thermal
resistance — used by the thermal-headroom analysis experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.quantities import Watts
from repro.hardware.processor import ProcessorSpec

#: Maximum junction temperature for this era of parts (degrees C).
T_JUNCTION_MAX = 100.0

#: Typical ambient inside a desktop case.
T_AMBIENT = 40.0


@dataclass(frozen=True, slots=True)
class ThermalModel:
    """Steady-state die temperature under a heatsink."""

    #: Junction-to-ambient thermal resistance (degrees C per watt).  The
    #: stock cooler is sized to hold TDP at the junction limit.
    theta_ja: float
    ambient_c: float = T_AMBIENT

    def __post_init__(self) -> None:
        if self.theta_ja <= 0:
            raise ValueError("thermal resistance must be positive")

    def junction_c(self, power: Watts) -> float:
        """Steady-state junction temperature at a package power."""
        if power.value < 0:
            raise ValueError("power cannot be negative")
        return self.ambient_c + self.theta_ja * power.value

    def headroom_c(self, power: Watts) -> float:
        """Degrees below the junction limit (negative = throttling)."""
        return T_JUNCTION_MAX - self.junction_c(power)

    def sustains(self, power: Watts) -> bool:
        """Whether the cooler holds this draw below the junction limit."""
        return self.headroom_c(power) >= 0.0


def stock_cooler(spec: ProcessorSpec) -> ThermalModel:
    """The boxed cooler: sized so TDP sits exactly at the junction limit.

    That is the *definition* of TDP (§2.5): "the nominal amount of power
    the chip is designed to dissipate without exceeding the maximum
    junction temperature."
    """
    theta = (T_JUNCTION_MAX - T_AMBIENT) / spec.tdp_w
    return ThermalModel(theta_ja=theta)


def boost_headroom(spec: ProcessorSpec, power: Watts) -> float:
    """Fraction of the TDP-limited thermal budget still unused.

    1.0 means idle-cold; 0.0 means the die is at the junction limit and
    Turbo Boost's thermal condition fails.
    """
    cooler = stock_cooler(spec)
    budget = T_JUNCTION_MAX - cooler.ambient_c
    return max(cooler.headroom_c(power), 0.0) / budget
