"""The four microarchitectures of the study (§2.4, Table 3).

NetBurst (Pentium 4), Core (Conroe/Kentsfield/Wolfdale), Bonnell
(Diamondville/Pineview Atoms), and Nehalem (Bloomfield/Clarkdale).  Each is
described by the structural parameters the execution and power models
consume.  The parameters are drawn from public microarchitecture facts; a
single per-family efficiency factor is calibrated so that clock-matched
cross-family performance ratios land near the paper's (e.g. Nehalem ~2.6x
NetBurst, ~1.14x Core; Architecture Finding 6).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Microarchitecture:
    """Structural description of a processor family."""

    name: str
    #: Peak instructions issued per cycle.
    issue_width: int
    out_of_order: bool
    #: Integer pipeline depth; deeper pipelines pay more per branch miss.
    pipeline_depth: int
    #: Fraction of peak issue width a typical instruction stream sustains,
    #: before memory stalls.  Captures scheduler/ROB quality; calibrated.
    issue_efficiency: float
    #: Fraction of an LLC-miss latency an out-of-order window can overlap
    #: with useful work (0 for a blocking in-order machine).
    miss_overlap: float
    #: Quality of the SMT implementation: fraction of otherwise-stalled
    #: issue slots a second hardware thread can recover (§3.2).
    smt_overlap: float
    #: Throughput tax each SMT thread pays for sharing core resources.
    smt_contention: float
    #: Dynamic energy per instruction relative to Core at the same node and
    #: voltage (NetBurst's replay/trace-cache machinery is power hungry;
    #: Bonnell is austere).
    epi_factor: float
    #: Front-end throughput tax on JIT-compiled code.  NetBurst's trace
    #: cache copes poorly with the JIT's large, frequently-replaced code
    #: working sets (the mechanism behind Workload Finding 2).
    jit_code_penalty: float = 0.0
    #: Extra core switching power when both hardware threads are active
    #: (the second thread's architectural state and duplicated queues stay
    #: hot); fraction of core active power.
    smt_power_overhead: float = 0.0

    def __post_init__(self) -> None:
        if self.issue_width < 1:
            raise ValueError("issue width must be at least 1")
        if not 0.0 < self.issue_efficiency <= 1.0:
            raise ValueError("issue efficiency must be in (0, 1]")
        for field in ("miss_overlap", "smt_overlap", "smt_contention"):
            value = getattr(self, field)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field} must be in [0, 1]")

    def branch_penalty_cycles(self) -> float:
        """Cycles lost per mispredicted branch (refill the pipeline)."""
        return float(self.pipeline_depth)


#: 2000-2004 era: deep 20+ stage pipeline chasing clock, trace cache,
#: first commercial SMT ("Hyper-Threading") with limited slot recovery.
NETBURST = Microarchitecture(
    name="NetBurst",
    issue_width=3,
    out_of_order=True,
    pipeline_depth=26,
    issue_efficiency=0.32,
    miss_overlap=0.15,
    smt_overlap=0.50,
    smt_contention=0.09,
    epi_factor=2.30,
    jit_code_penalty=0.06,
    smt_power_overhead=0.10,
)

#: 2006-2009 era: wide (4-issue) out-of-order, short pipeline, the design
#: point the paper's mid-range machines share.
CORE = Microarchitecture(
    name="Core",
    issue_width=4,
    out_of_order=True,
    pipeline_depth=14,
    issue_efficiency=0.72,
    miss_overlap=0.50,
    smt_overlap=0.0,  # no SMT product in this family in the study
    smt_contention=0.0,
    epi_factor=1.00,
)

#: Atom line: dual-issue in-order with a comparatively deep 16-stage
#: pipeline and small caches - lots of stall slots for SMT to fill (§3.2).
BONNELL = Microarchitecture(
    name="Bonnell",
    issue_width=2,
    out_of_order=False,
    pipeline_depth=16,
    issue_efficiency=0.46,
    miss_overlap=0.02,
    smt_overlap=0.90,
    smt_contention=0.04,
    epi_factor=0.62,
    smt_power_overhead=0.15,
)

#: Nehalem: Core's successor; similar core IPC (+~14% with memory system
#: gains), reintroduced SMT with a mature implementation, on-die memory
#: controller.
NEHALEM = Microarchitecture(
    name="Nehalem",
    issue_width=4,
    out_of_order=True,
    pipeline_depth=16,
    issue_efficiency=0.78,
    miss_overlap=0.65,
    smt_overlap=0.52,
    smt_contention=0.03,
    epi_factor=1.05,
    smt_power_overhead=0.25,
)

FAMILIES = {arch.name: arch for arch in (NETBURST, CORE, BONNELL, NEHALEM)}


def family_for(name: str) -> Microarchitecture:
    """Look up a microarchitecture family by name."""
    try:
        return FAMILIES[name]
    except KeyError:
        raise KeyError(
            f"unknown microarchitecture {name!r}; known: {sorted(FAMILIES)}"
        ) from None
