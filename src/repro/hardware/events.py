"""Hardware event counters.

The paper instruments runs with performance counters (cycles, retired
instructions, DTLB misses) to explain effects such as the JVM-induced
speedup of single-threaded Java (§3.1: db's DTLB misses fall by 2.5x when a
second core hosts the collector).  The execution engine populates one
:class:`EventCounts` per run so analyses can drill into mechanisms exactly
as the authors did.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class EventCounts:
    """Counter totals for one run (absolute counts, not rates)."""

    cycles: float
    instructions: float
    llc_misses: float
    dtlb_misses: float
    branch_misses: float

    def __post_init__(self) -> None:
        for name in ("cycles", "instructions", "llc_misses", "dtlb_misses", "branch_misses"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cannot be negative")

    @property
    def ipc(self) -> float:
        """Retired instructions per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def cpi(self) -> float:
        """Cycles per retired instruction."""
        if self.instructions == 0:
            return 0.0
        return self.cycles / self.instructions

    def per_kilo_instruction(self, count: float) -> float:
        """Express an event count as a per-kilo-instruction rate."""
        if self.instructions == 0:
            return 0.0
        return count * 1000.0 / self.instructions

    @property
    def llc_mpki(self) -> float:
        return self.per_kilo_instruction(self.llc_misses)

    @property
    def dtlb_mpki(self) -> float:
        return self.per_kilo_instruction(self.dtlb_misses)

    def scaled(self, factor: float) -> "EventCounts":
        """Uniformly scale all counters (e.g. to a different run length)."""
        if factor < 0:
            raise ValueError("scale factor cannot be negative")
        return EventCounts(
            cycles=self.cycles * factor,
            instructions=self.instructions * factor,
            llc_misses=self.llc_misses * factor,
            dtlb_misses=self.dtlb_misses * factor,
            branch_misses=self.branch_misses * factor,
        )
