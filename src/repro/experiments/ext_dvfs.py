"""Extension: the diminishing returns of frequency scaling across nodes.

Le Sueur & Heiser (the paper's related work, §5) observed that as process
technology shrinks, down-clocking saves less energy — static power and
flatter voltage curves erode DVFS's payoff.  The study's own machines
span that transition: the 45 nm parts still save ~35-40 % energy at their
lowest clock, while the 32 nm i5 saves essentially nothing (Architecture
Finding 3 is the same phenomenon seen from the other end).
"""

from __future__ import annotations

from typing import Optional

from repro.core.aggregation import group_means, weighted_average
from repro.core.study import Study
from repro.experiments.base import ExperimentResult, resolve_study
from repro.experiments.fig7_clock import MACHINES, _config
from repro.workloads.catalog import BENCHMARKS


def run(study: Optional[Study] = None) -> ExperimentResult:
    study = resolve_study(study)
    rows = []
    for _, spec, cores, threads in MACHINES:
        top = study.run_config(
            _config(spec, cores, threads, spec.clock_points_ghz[-1])
        )
        bottom = study.run_config(
            _config(spec, cores, threads, spec.clock_points_ghz[0])
        )
        top_energy = weighted_average(
            group_means(top.values("normalized_energy"), BENCHMARKS)
        )
        bottom_energy = weighted_average(
            group_means(bottom.values("normalized_energy"), BENCHMARKS)
        )
        top_perf = weighted_average(
            group_means(top.values("speedup"), BENCHMARKS)
        )
        bottom_perf = weighted_average(
            group_means(bottom.values("speedup"), BENCHMARKS)
        )
        saving = 1.0 - bottom_energy / top_energy
        slowdown = 1.0 - bottom_perf / top_perf
        rows.append(
            {
                "processor": spec.label,
                "node_nm": spec.node.nanometers,
                "downclock_energy_saving": round(saving, 3),
                "downclock_slowdown": round(slowdown, 3),
                "saving_per_unit_slowdown": round(saving / slowdown, 3),
            }
        )
    return ExperimentResult(
        experiment_id="ext_dvfs",
        title="Diminishing returns of down-clocking across process nodes",
        paper_section="§5 related work (Le Sueur & Heiser), probed",
        rows=tuple(rows),
        notes=(
            "Positive savings mean the lowest clock is more energy "
            "efficient.  The 45nm parts save substantially; the 32nm i5 "
            "saves nothing — frequency scaling's energy payoff is gone.",
        ),
    )
