"""Experiment framework: one module per paper table/figure.

Every experiment produces an :class:`ExperimentResult` — an ordered list of
row dicts plus identity — that the benchmark harness renders and
EXPERIMENTS.md records.  Where the paper reports a number, the row carries
both ``paper`` and ``measured`` values so the output is self-auditing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.core.study import Study, shared_study


@dataclass(frozen=True)
class ExperimentResult:
    """Outcome of regenerating one paper artifact."""

    experiment_id: str  # e.g. "table4", "fig7"
    title: str
    paper_section: str
    rows: tuple[Mapping[str, object], ...]
    notes: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.rows:
            raise ValueError(f"{self.experiment_id}: an experiment needs rows")

    @property
    def columns(self) -> tuple[str, ...]:
        ordered: dict[str, None] = {}
        for row in self.rows:
            for key in row:
                ordered.setdefault(key)
        return tuple(ordered)

    def column(self, name: str) -> list[object]:
        return [row.get(name) for row in self.rows]

    def row_for(self, key_column: str, key: object) -> Mapping[str, object]:
        for row in self.rows:
            if row.get(key_column) == key:
                return row
        raise KeyError(f"{self.experiment_id}: no row with {key_column}={key!r}")


def resolve_study(study: Optional[Study]) -> Study:
    """Use the caller's study or the process-wide shared one."""
    return study if study is not None else shared_study()


def doubling_normalised(ratio: float, frequency_ratio: float) -> float:
    """Express a max-vs-min clock ratio per clock *doubling* (§3.3).

    The paper normalises clock-scaling effects "with respect to doubling
    in clock frequency" so machines with different DVFS ranges compare:
    ``ratio ** (1 / log2(frequency_ratio))``.
    """
    import math

    if ratio <= 0:
        raise ValueError("ratio must be positive")
    if frequency_ratio <= 1.0:
        raise ValueError("frequency ratio must exceed 1")
    return ratio ** (1.0 / math.log2(frequency_ratio))


def fmt_ratio(value: float) -> str:
    return f"{value:.2f}"


def paper_measured(paper: Optional[float], measured: float) -> dict[str, object]:
    """Standard pair of columns for paper-versus-reproduction rows."""
    return {
        "paper": None if paper is None else round(paper, 3),
        "measured": round(measured, 3),
    }
