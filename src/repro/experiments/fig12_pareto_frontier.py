"""Fig. 12: energy / performance Pareto frontiers at 45 nm (§4.2).

Fits the paper's polynomial frontier through the Pareto-efficient points
of each workload group (and the average) over the 29-configuration 45 nm
space, and reports the series the figure plots.
"""

from __future__ import annotations

from typing import Optional

from repro.core.pareto import fit_frontier, pareto_efficient
from repro.core.study import Study
from repro.experiments.base import ExperimentResult, resolve_study
from repro.experiments.table5_pareto_configs import AVERAGE, tradeoff_points
from repro.workloads.catalog import groups


def run(study: Optional[Study] = None, samples: int = 9) -> ExperimentResult:
    study = resolve_study(study)
    rows = []
    for grouping in [AVERAGE, *groups()]:
        label = grouping if isinstance(grouping, str) else grouping.value
        points = tradeoff_points(study, grouping)
        efficient = pareto_efficient(points)
        curve = fit_frontier(efficient)
        rows.append(
            {
                "grouping": label,
                "efficient_points": tuple(
                    (p.key, round(p.performance, 2), round(p.energy, 3))
                    for p in efficient
                ),
                "frontier_series": tuple(
                    (round(x, 2), round(y, 3)) for x, y in curve.series(samples)
                ),
                "performance_range": tuple(
                    round(v, 2) for v in curve.performance_range
                ),
            }
        )
    return ExperimentResult(
        experiment_id="fig12",
        title="Energy / performance Pareto frontiers (45nm)",
        paper_section="Fig. 12",
        rows=tuple(rows),
        notes=(
            "Scalable groups' frontiers should extend far right of the "
            "non-scalable ones at equal energy (software parallelism "
            "extends the frontier; Workload Finding 4).",
        ),
    )
