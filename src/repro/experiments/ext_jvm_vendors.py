"""Extension: the influence of the JVM vendor (§2.2's future work).

The paper spot-checked JRockit and IBM J9 against HotSpot: average
performance similar, individual benchmarks varying substantially, and
aggregate power differing by up to 10 %.  This experiment runs the full
Java workload on the stock i7 under all three vendor profiles and reports
the aggregate and per-benchmark pictures.
"""

from __future__ import annotations

from typing import Optional

from repro.core.statistics import mean
from repro.core.study import Study
from repro.execution.engine import ExecutionEngine
from repro.experiments.base import ExperimentResult, resolve_study
from repro.faults.injector import shielded
from repro.hardware.catalog import CORE_I7_45
from repro.hardware.config import stock
from repro.runtime.vendors import VENDORS, JvmVendor
from repro.workloads.benchmark import Group
from repro.workloads.catalog import by_group


def _vendor_times(vendor: JvmVendor) -> dict[str, tuple[float, float]]:
    """(seconds, watts) per Java benchmark under one vendor."""
    engine = ExecutionEngine(jvm_vendor=vendor, seed_root=f"vendor/{vendor.name}")
    config = stock(CORE_I7_45)
    outcome = {}
    from repro.measurement.meter import meter_for

    meter = meter_for(CORE_I7_45)
    # A vendor comparison over ideal executions is analytical, not a rig
    # campaign: shield it from any armed fault injector.
    with shielded():
        for bench in by_group(Group.JAVA_NONSCALABLE) + by_group(
            Group.JAVA_SCALABLE
        ):
            execution = engine.ideal(bench, config)
            measured = meter.measure(
                execution, run_salt=f"{vendor.name}/{bench.name}"
            )
            outcome[bench.name] = (
                execution.seconds.value,
                measured.average_watts,
            )
    return outcome


def run(study: Optional[Study] = None) -> ExperimentResult:
    resolve_study(study)  # keeps the signature uniform; dataset not needed
    baseline = _vendor_times(VENDORS[0])
    rows = []
    for vendor in VENDORS:
        data = _vendor_times(vendor)
        perf_ratios = [
            baseline[name][0] / data[name][0] for name in baseline
        ]
        power_ratios = [data[name][1] / baseline[name][1] for name in baseline]
        rows.append(
            {
                "jvm": vendor.name,
                "mean_performance_vs_hotspot": round(mean(perf_ratios), 3),
                "min_benchmark_ratio": round(min(perf_ratios), 3),
                "max_benchmark_ratio": round(max(perf_ratios), 3),
                "mean_power_vs_hotspot": round(mean(power_ratios), 3),
            }
        )
    return ExperimentResult(
        experiment_id="ext_jvm_vendors",
        title="JVM vendor influence on Java power and performance (i7 45)",
        paper_section="§2.2 (future work)",
        rows=tuple(rows),
        notes=(
            "Paper: 'average performance is similar to HotSpot, but "
            "individual benchmarks vary substantially. We observe aggregate "
            "power differences of up to 10% between JVMs.'",
        ),
    )
