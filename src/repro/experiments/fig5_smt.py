"""Fig. 5: the effect of simultaneous multithreading (§3.2).

Two hardware threads versus one, on a single core, Turbo Boost disabled,
for the four SMT-capable machines.  Architecture Finding 2: SMT delivers
substantial energy savings on the i5 and — most strikingly — on the
dual-issue in-order Atom.  Workload Finding 2: SMT degrades Java
Non-scalable on the Pentium 4.
"""

from __future__ import annotations

from typing import Optional

from repro.core.study import Study
from repro.experiments import paper_data
from repro.experiments.base import ExperimentResult, resolve_study
from repro.experiments.features import FeatureEffect, compare, effect_row, group_energy_rows
from repro.hardware.catalog import ATOM_45, CORE_I5_32, CORE_I7_45, PENTIUM4_130
from repro.hardware.config import Configuration

_MACHINES = (
    ("pentium4_130", PENTIUM4_130, 2.4),
    ("i7_45", CORE_I7_45, 2.66),
    ("atom_45", ATOM_45, 1.66),
    ("i5_32", CORE_I5_32, 3.46),
)


def effects(study: Study) -> dict[str, FeatureEffect]:
    resolved = {}
    for key, spec, clock in _MACHINES:
        resolved[key] = compare(
            study,
            Configuration(spec, 1, 2, clock),
            Configuration(spec, 1, 1, clock),
            label=f"{spec.label} 1C2T/1C1T",
        )
    return resolved


def run(study: Optional[Study] = None) -> ExperimentResult:
    study = resolve_study(study)
    rows: list[dict[str, object]] = []
    resolved = effects(study)
    for key, effect in resolved.items():
        rows.append(effect_row(effect, paper_data.FIG5_SMT[key]))
    for key, effect in resolved.items():
        rows.extend(
            group_energy_rows(effect, paper_data.FIG5_SMT_ENERGY_BY_GROUP[key])
        )
    return ExperimentResult(
        experiment_id="fig5",
        title="Effect of SMT: two threads versus one on a single core",
        paper_section="Fig. 5 / Architecture Finding 2 / Workload Finding 2",
        rows=tuple(rows),
    )
