"""Registry: every paper artifact mapped to its regenerating experiment."""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.study import Study
from repro.experiments import (
    ext_characterization,
    ext_compilers,
    ext_dvfs,
    ext_heap,
    ext_jvm_vendors,
    ext_rapl,
    ext_thermal,
    ext_whole_system,
    fig1_java_scalability,
    fig2_tdp,
    fig3_diversity,
    fig4_cmp,
    fig5_smt,
    fig6_single_thread_java,
    fig7_clock,
    fig8_die_shrink,
    fig9_microarch,
    fig10_turbo,
    fig11_historical,
    fig12_pareto_frontier,
    table1_benchmarks,
    table2_confidence,
    table3_processors,
    table4_perf_power,
    table5_pareto_configs,
)
from repro.experiments.base import ExperimentResult
from repro.obs.metrics import default_registry
from repro.obs.tracing import root_span

Runner = Callable[[Optional[Study]], ExperimentResult]

_EXPERIMENT_RUNS = default_registry().counter(
    "repro_experiment_runs_total",
    "Paper artifacts and extensions regenerated, by experiment id",
)

EXPERIMENTS: dict[str, Runner] = {
    "table1": table1_benchmarks.run,
    "table2": table2_confidence.run,
    "table3": table3_processors.run,
    "table4": table4_perf_power.run,
    "table5": table5_pareto_configs.run,
    "fig1": fig1_java_scalability.run,
    "fig2": fig2_tdp.run,
    "fig3": fig3_diversity.run,
    "fig4": fig4_cmp.run,
    "fig5": fig5_smt.run,
    "fig6": fig6_single_thread_java.run,
    "fig7": fig7_clock.run,
    "fig8": fig8_die_shrink.run,
    "fig9": fig9_microarch.run,
    "fig10": fig10_turbo.run,
    "fig11": fig11_historical.run,
    "fig12": fig12_pareto_frontier.run,
}

#: Beyond-paper extensions (DESIGN.md §7): future work the paper names,
#: plus methodology probes.  Kept separate from the paper's artifacts.
EXTENSIONS: dict[str, Runner] = {
    "ext_characterization": ext_characterization.run,
    "ext_dvfs": ext_dvfs.run,
    "ext_jvm_vendors": ext_jvm_vendors.run,
    "ext_rapl": ext_rapl.run,
    "ext_compilers": ext_compilers.run,
    "ext_heap": ext_heap.run,
    "ext_whole_system": ext_whole_system.run,
    "ext_thermal": ext_thermal.run,
}


def run_experiment(experiment_id: str, study: Optional[Study] = None) -> ExperimentResult:
    """Run one experiment by its paper-artifact id (e.g. ``"fig7"``)."""
    runner = EXPERIMENTS.get(experiment_id) or EXTENSIONS.get(experiment_id)
    if runner is None:
        known = sorted(EXPERIMENTS) + sorted(EXTENSIONS)
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}")
    _EXPERIMENT_RUNS.labels(experiment=experiment_id).inc()
    with root_span(experiment_id) as span:
        result = runner(study)
        span.set_attribute("rows", len(result.rows))
    return result
