"""Extension: heap-size sensitivity of the Java results.

The paper fixes every heap at a generous 3x the minimum (§2.2).  This
experiment sweeps the heap factor and reports how Java run time and the
Fig. 6 CMP gain respond: tighter heaps collect more, raising both the
runtime-service load and the benefit of offloading it to a second core.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.statistics import mean
from repro.core.study import Study
from repro.execution.engine import ExecutionEngine
from repro.experiments.base import ExperimentResult, resolve_study
from repro.hardware.catalog import CORE_I7_45
from repro.hardware.config import Configuration
from repro.runtime.heap import HeapPolicy
from repro.workloads.catalog import single_threaded_java

HEAP_FACTORS: tuple[float, ...] = (1.5, 2.0, 3.0, 6.0)


def run(
    study: Optional[Study] = None,
    heap_factors: Sequence[float] = HEAP_FACTORS,
) -> ExperimentResult:
    resolve_study(study)
    one = Configuration(CORE_I7_45, 1, 1, 2.66)
    two = Configuration(CORE_I7_45, 2, 1, 2.66)
    benchmarks = single_threaded_java()

    baseline_engine = ExecutionEngine(heap=HeapPolicy(3.0), seed_root="heap/3.0")
    baseline = {
        b.name: baseline_engine.ideal(b, one).seconds.value for b in benchmarks
    }

    rows = []
    for factor in heap_factors:
        engine = ExecutionEngine(heap=HeapPolicy(factor), seed_root=f"heap/{factor}")
        slowdowns = []
        cmp_gains = []
        for bench in benchmarks:
            t_one = engine.ideal(bench, one).seconds.value
            t_two = engine.ideal(bench, two).seconds.value
            slowdowns.append(t_one / baseline[bench.name])
            cmp_gains.append(t_one / t_two)
        rows.append(
            {
                "heap_factor": factor,
                "mean_time_vs_3x_heap": round(mean(slowdowns), 3),
                "mean_cmp_gain_2C_over_1C": round(mean(cmp_gains), 3),
            }
        )
    return ExperimentResult(
        experiment_id="ext_heap",
        title="Heap-size sensitivity of single-threaded Java (i7 45)",
        paper_section="§2.2 (methodological choice probed)",
        rows=tuple(rows),
        notes=(
            "Tighter heaps run slower on one context and gain more from a "
            "second core — Workload Finding 1's magnitude is partly a "
            "function of the 3x heap choice.",
        ),
    )
