"""Fig. 4: the effect of chip multiprocessing (§3.1).

Two cores versus one on the i7 (45) and i5 (32), with SMT and Turbo Boost
disabled so CMP is the only thread-level-parallelism mechanism.
Architecture Finding 1: enabling a core is not consistently energy
efficient — the i7 pays twice the i5's power overhead for the same
performance gain.
"""

from __future__ import annotations

from typing import Optional

from repro.core.study import Study
from repro.experiments import paper_data
from repro.experiments.base import ExperimentResult, resolve_study
from repro.experiments.features import compare, effect_row, group_energy_rows
from repro.hardware.catalog import CORE_I5_32, CORE_I7_45
from repro.hardware.config import Configuration

_NN = paper_data.NN


def effects(study: Study):
    """The two comparisons of the figure."""
    i7 = compare(
        study,
        Configuration(CORE_I7_45, 2, 1, 2.66),
        Configuration(CORE_I7_45, 1, 1, 2.66),
        label="i7 (45) 2C/1C",
    )
    i5 = compare(
        study,
        Configuration(CORE_I5_32, 2, 1, 3.46),
        Configuration(CORE_I5_32, 1, 1, 3.46),
        label="i5 (32) 2C/1C",
    )
    return i7, i5


def run(study: Optional[Study] = None) -> ExperimentResult:
    study = resolve_study(study)
    i7, i5 = effects(study)
    rows = [
        effect_row(i7, paper_data.FIG4_CMP["i7_45"]),
        effect_row(i5, paper_data.FIG4_CMP["i5_32"]),
        *group_energy_rows(i7, paper_data.FIG4_CMP_ENERGY_BY_GROUP["i7_45"]),
        *group_energy_rows(i5, paper_data.FIG4_CMP_ENERGY_BY_GROUP["i5_32"]),
    ]
    return ExperimentResult(
        experiment_id="fig4",
        title="Effect of CMP: two cores versus one (no SMT, no Turbo Boost)",
        paper_section="Fig. 4 / Architecture Finding 1",
        rows=tuple(rows),
    )
