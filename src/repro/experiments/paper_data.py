"""The paper's reported numbers, transcribed for comparison.

Every experiment prints paper-reported versus reproduced values, and the
integration tests assert *shape* agreement (orderings, ratio bands, signs)
against these constants.  Sources are the table/figure cited on each
block.  Figure values read off charts are approximate (+/- the chart's
resolution); table values are exact.
"""

from __future__ import annotations

from repro.workloads.benchmark import Group

NN = Group.NATIVE_NONSCALABLE
NS = Group.NATIVE_SCALABLE
JN = Group.JAVA_NONSCALABLE
JS = Group.JAVA_SCALABLE

#: Table 4 — average speedup over reference per processor and group.
TABLE4_SPEEDUP: dict[str, dict] = {
    "pentium4_130": {NN: 0.91, NS: 0.79, JN: 0.80, JS: 0.75, "Avg_w": 0.82, "Avg_b": 0.85, "Min": 0.51, "Max": 1.25},
    "c2d_65": {NN: 2.02, NS: 2.10, JN: 1.99, JS: 2.04, "Avg_w": 2.04, "Avg_b": 2.03, "Min": 1.40, "Max": 2.85},
    "c2q_65": {NN: 2.04, NS: 3.62, JN: 2.04, JS: 3.09, "Avg_w": 2.70, "Avg_b": 2.41, "Min": 1.39, "Max": 4.67},
    "i7_45": {NN: 3.11, NS: 6.25, JN: 3.00, JS: 5.49, "Avg_w": 4.46, "Avg_b": 3.84, "Min": 2.16, "Max": 7.60},
    "atom_45": {NN: 0.49, NS: 0.52, JN: 0.53, JS: 0.52, "Avg_w": 0.52, "Avg_b": 0.51, "Min": 0.39, "Max": 0.75},
    "c2d_45": {NN: 2.48, NS: 2.76, JN: 2.49, JS: 2.44, "Avg_w": 2.54, "Avg_b": 2.53, "Min": 1.45, "Max": 3.71},
    "atomd_45": {NN: 0.53, NS: 0.96, JN: 0.61, JS: 0.86, "Avg_w": 0.74, "Avg_b": 0.66, "Min": 0.41, "Max": 1.17},
    "i5_32": {NN: 3.31, NS: 4.46, JN: 3.18, JS: 4.26, "Avg_w": 3.80, "Avg_b": 3.56, "Min": 2.39, "Max": 5.42},
}

#: Table 4 — average measured power (watts) per processor and group.
TABLE4_POWER: dict[str, dict] = {
    "pentium4_130": {NN: 42.1, NS: 43.5, JN: 45.1, JS: 45.7, "Avg_w": 44.1, "Avg_b": 43.5, "Min": 34.5, "Max": 50.0},
    "c2d_65": {NN: 24.3, NS: 26.6, JN: 26.2, JS: 28.5, "Avg_w": 26.4, "Avg_b": 25.6, "Min": 21.4, "Max": 32.3},
    "c2q_65": {NN: 50.7, NS: 61.7, JN: 55.3, JS: 64.6, "Avg_w": 58.1, "Avg_b": 55.2, "Min": 45.6, "Max": 77.3},
    "i7_45": {NN: 27.2, NS: 60.4, JN: 37.5, JS: 62.8, "Avg_w": 47.0, "Avg_b": 39.1, "Min": 23.4, "Max": 89.2},
    "atom_45": {NN: 2.3, NS: 2.5, JN: 2.3, JS: 2.4, "Avg_w": 2.4, "Avg_b": 2.3, "Min": 1.9, "Max": 2.7},
    "c2d_45": {NN: 19.1, NS: 21.1, JN: 20.5, JS: 22.6, "Avg_w": 20.8, "Avg_b": 20.2, "Min": 15.8, "Max": 26.8},
    "atomd_45": {NN: 3.7, NS: 5.3, JN: 4.5, JS: 5.1, "Avg_w": 4.7, "Avg_b": 4.3, "Min": 3.4, "Max": 5.9},
    "i5_32": {NN: 19.6, NS: 29.2, JN: 24.7, JS: 29.5, "Avg_w": 25.7, "Avg_b": 23.6, "Min": 16.5, "Max": 38.2},
}

#: Table 4 — the within-column ranks (1 = best performance / lowest power).
TABLE4_SPEEDUP_RANKS_AVGW = {
    "i7_45": 1, "i5_32": 2, "c2q_65": 3, "c2d_45": 4,
    "c2d_65": 5, "pentium4_130": 6, "atomd_45": 7, "atom_45": 8,
}
TABLE4_POWER_RANKS_AVGW = {
    "atom_45": 1, "atomd_45": 2, "c2d_45": 3, "i5_32": 4,
    "c2d_65": 5, "pentium4_130": 6, "i7_45": 7, "c2q_65": 8,
}

#: Fig. 4(a) — CMP: 2 cores / 1 core, average over groups (no SMT/TB).
FIG4_CMP = {
    "i7_45": {"performance": 1.32, "power": 1.57, "energy": 1.12},
    "i5_32": {"performance": 1.34, "power": 1.29, "energy": 0.91},
}

#: Fig. 4(b) — CMP energy effect per workload group.
FIG4_CMP_ENERGY_BY_GROUP = {
    "i7_45": {NN: 1.13, NS: 1.09, JN: 1.19, JS: 1.08},
    "i5_32": {NN: 1.04, NS: 0.81, JN: 1.00, JS: 0.82},
}

#: Fig. 5(a) — SMT: 2 threads / 1 thread on one core (no TB).
FIG5_SMT = {
    "pentium4_130": {"performance": 1.06, "power": 1.06, "energy": 0.98},
    "i7_45": {"performance": 1.14, "power": 1.15, "energy": 0.97},
    "atom_45": {"performance": 1.24, "power": 1.10, "energy": 0.86},
    "i5_32": {"performance": 1.17, "power": 1.10, "energy": 0.89},
}

#: Fig. 5(b) — SMT energy effect per workload group.
FIG5_SMT_ENERGY_BY_GROUP = {
    "pentium4_130": {NN: 1.01, NS: 0.87, JN: 1.11, JS: 0.95},
    "i7_45": {NN: 1.01, NS: 0.93, JN: 1.03, JS: 0.95},
    "atom_45": {NN: 1.05, NS: 0.75, JN: 0.91, JS: 0.78},
    "i5_32": {NN: 1.00, NS: 0.83, JN: 0.96, JS: 0.82},
}

#: Fig. 7(a) — effect of doubling the clock (percent change).
FIG7_CLOCK_DOUBLING = {
    "i7_45": {"performance": 0.83, "power": 1.80, "energy": 0.60},
    "c2d_45": {"performance": 0.73, "power": 1.59, "energy": 0.56},
    "i5_32": {"performance": 0.78, "power": 0.73, "energy": -0.04},
}

#: Fig. 7(b) — energy effect of doubling the clock per group.
FIG7_CLOCK_ENERGY_BY_GROUP = {
    "i7_45": {NN: 0.63, NS: 0.68, JN: 0.50, JS: 0.62},
    "c2d_45": {NN: 0.57, NS: 0.46, JN: 0.45, JS: 0.78},
    "i5_32": {NN: -0.10, NS: 0.01, JN: -0.05, JS: 0.00},
}

#: Fig. 8(a) — die shrink at native clocks (new / old).
FIG8_DIE_SHRINK_NATIVE = {
    "core": {"performance": 1.25, "power": 0.79, "energy": 0.65},
    "nehalem": {"performance": 1.14, "power": 0.77, "energy": 0.69},
}

#: Fig. 8(b) — die shrink at matched clocks (new / old).
FIG8_DIE_SHRINK_MATCHED = {
    "core": {"performance": 1.01, "power": 0.55, "energy": 0.54},
    "nehalem": {"performance": 0.90, "power": 0.53, "energy": 0.60},
}

#: Fig. 9(a) — gross microarchitecture change (Nehalem / other),
#: clock- and context-matched.
FIG9_MICROARCH = {
    "bonnell": {"performance": 2.70, "power": 2.38, "energy": 0.85},
    "netburst": {"performance": 2.60, "power": 0.33, "energy": 0.13},
    "core_45": {"performance": 1.14, "power": 1.14, "energy": 1.00},
    "core_65": {"performance": 1.14, "power": 0.55, "energy": 0.48},
}

#: Fig. 10(a) — Turbo Boost enabled / disabled.
FIG10_TURBO = {
    "i7_45/4C2T": {"performance": 1.05, "power": 1.19, "energy": 1.19},
    "i7_45/1C1T": {"performance": 1.07, "power": 1.49, "energy": 1.39},
    "i5_32/2C2T": {"performance": 1.03, "power": 1.07, "energy": 1.04},
    "i5_32/1C1T": {"performance": 1.05, "power": 1.05, "energy": 1.00},
}

#: Fig. 1 — scalability of multithreaded Java, i7 4C2T / 1C1T.
FIG1_JAVA_SCALABILITY = {
    "sunflow": 4.3, "xalan": 4.0, "tomcat": 3.7, "lusearch": 3.3,
    "eclipse": 2.6, "pjbb2005": 2.2, "mtrt": 2.0, "tradebeans": 1.7,
    "jython": 1.3, "avrora": 1.3, "batik": 1.1, "pmd": 1.1, "h2": 1.0,
}

#: Fig. 6 — CMP impact on single-threaded Java, i7 2C1T / 1C1T.
FIG6_ST_JAVA_CMP = {
    "antlr": 1.55, "luindex": 1.15, "fop": 1.13, "jack": 1.12,
    "db": 1.30, "bloat": 1.05, "jess": 1.05, "compress": 1.02,
    "mpegaudio": 1.00, "javac": 1.05,
}

#: §2.5 — benchmark power extremes on the stock i7 (watts).
I7_POWER_EXTREMES = {"min": 23.0, "max": 89.0,
                     "min_benchmark": "omnetpp", "max_benchmark": "fluidanimate"}

#: §3.1 — db's DTLB miss reduction with a second core.
DB_DTLB_REDUCTION = 2.5

#: Table 5 — Pareto-efficient 45 nm configurations per grouping, in the
#: paper's column order.  Keys follow this library's Configuration.key.
TABLE5_PARETO = {
    "Average": {
        "atom_45/1C2T@1.66", "i7_45/1C2T@1.6-TB", "i7_45/2C2T@1.6-TB",
        "i7_45/4C2T@1.6-TB", "i7_45/4C2T@2.13-TB", "i7_45/4C2T@2.66-TB",
    },
    NN: {
        "i7_45/1C1T@2.66-TB", "i7_45/1C1T@2.66+TB", "i7_45/1C2T@1.6-TB",
        "i7_45/1C2T@2.4-TB",
    },
    NS: {
        "atom_45/1C2T@1.66", "i7_45/2C2T@1.6-TB", "i7_45/4C2T@1.6-TB",
        "i7_45/4C2T@2.13-TB", "i7_45/4C2T@2.66-TB", "i7_45/4C2T@2.66+TB",
    },
    JN: {
        "atom_45/1C2T@1.66", "c2d_45/2C1T@1.6", "c2d_45/2C1T@3.06",
        "i7_45/1C2T@1.6-TB", "i7_45/2C1T@1.6-TB", "i7_45/2C2T@1.6-TB",
        "i7_45/4C1T@2.66-TB",
    },
    JS: {
        "atom_45/1C2T@1.66", "i7_45/1C2T@1.6-TB", "i7_45/2C2T@1.6-TB",
        "i7_45/4C2T@1.6-TB", "i7_45/4C2T@2.13-TB", "i7_45/4C2T@2.66-TB",
    },
}

#: Table 2 — aggregate 95% confidence intervals (relative), average case.
TABLE2_CI = {
    "time_average": 0.012, "time_max": 0.022,
    "power_average": 0.015, "power_max": 0.071,
}
