"""Table 1: the benchmark groups and reference running times (§2.1, §2.6).

Regenerates the catalog table and verifies the engine's work calibration:
each benchmark's mean stock run time across the four reference machines
must equal its Table 1 reference time.
"""

from __future__ import annotations

from typing import Optional

from repro.core.statistics import mean
from repro.core.study import Study
from repro.experiments.base import ExperimentResult, resolve_study
from repro.hardware.catalog import reference_processors
from repro.hardware.config import stock
from repro.workloads.catalog import BENCHMARKS


def run(study: Optional[Study] = None) -> ExperimentResult:
    study = resolve_study(study)
    engine = study.engine
    rows = []
    for benchmark in BENCHMARKS:
        probe = mean(
            [
                engine.ideal(benchmark, stock(spec)).seconds.value
                for spec in reference_processors()
            ]
        )
        rows.append(
            {
                "group": benchmark.group.value,
                "source": benchmark.suite.value,
                "name": benchmark.name,
                "paper_time_s": benchmark.reference_seconds,
                "measured_reference_time_s": round(probe, 3),
                "description": benchmark.description,
            }
        )
    return ExperimentResult(
        experiment_id="table1",
        title="Benchmark groups and reference times",
        paper_section="Table 1",
        rows=tuple(rows),
        notes=(
            "measured_reference_time_s is the mean noise-free run time over "
            "the four reference machines; equals the paper column by the "
            "engine's work calibration.",
        ),
    )
