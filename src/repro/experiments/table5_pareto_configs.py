"""Table 5: Pareto-efficient 45 nm processor configurations (§4.2).

Expands the four 45 nm processors into the 29-configuration space and
finds, per workload group and for the average, the configurations no other
configuration dominates in both aggregate performance and normalised
energy.
"""

from __future__ import annotations

from typing import Optional

from repro.core.aggregation import group_means, weighted_average
from repro.core.pareto import TradeoffPoint, pareto_efficient
from repro.core.study import Study
from repro.experiments import paper_data
from repro.experiments.base import ExperimentResult, resolve_study
from repro.hardware.configurations import node_45nm_configurations
from repro.workloads.benchmark import Group
from repro.workloads.catalog import BENCHMARKS, groups

#: Column label the paper uses for the across-groups average.
AVERAGE = "Average"


def tradeoff_points(
    study: Study, grouping: Group | str
) -> list[TradeoffPoint]:
    """(performance, energy) per 45 nm configuration for one grouping."""
    points = []
    for config in node_45nm_configurations():
        results = study.run_config(config)
        speed = group_means(results.values("speedup"), BENCHMARKS)
        energy = group_means(results.values("normalized_energy"), BENCHMARKS)
        if grouping == AVERAGE:
            performance = weighted_average(speed)
            joules = weighted_average(energy)
        else:
            performance = speed[grouping]
            joules = energy[grouping]
        points.append(
            TradeoffPoint(key=config.key, performance=performance, energy=joules)
        )
    return points


def efficient_keys(study: Study, grouping: Group | str) -> set[str]:
    """Configuration keys on the Pareto frontier for one grouping."""
    return {p.key for p in pareto_efficient(tradeoff_points(study, grouping))}


def run(study: Optional[Study] = None) -> ExperimentResult:
    study = resolve_study(study)
    groupings: list[Group | str] = [AVERAGE, *groups()]
    rows = []
    for grouping in groupings:
        label = grouping if isinstance(grouping, str) else grouping.value
        measured = efficient_keys(study, grouping)
        paper_key = grouping if grouping in paper_data.TABLE5_PARETO else None
        paper_set = paper_data.TABLE5_PARETO.get(paper_key or grouping, set())
        rows.append(
            {
                "grouping": label,
                "efficient_configurations": tuple(sorted(measured)),
                "count": len(measured),
                "paper_configurations": tuple(sorted(paper_set)),
                "overlap": len(measured & set(paper_set)),
            }
        )
    return ExperimentResult(
        experiment_id="table5",
        title="Pareto-efficient processor configurations per benchmark group",
        paper_section="Table 5",
        rows=tuple(rows),
        notes=(
            "29 configurations of the four 45nm processors; 'overlap' counts "
            "configurations the reproduction and the paper both mark efficient.",
        ),
    )
