"""Fig. 11: the historical power / performance overview (§4.1).

(a) Each stock processor's group-weighted performance and power — the
log/log scatter tracing 2003-2010.  (b) The same divided by package
transistor count: Architecture Finding 9, power per transistor is
consistent within a microarchitecture family while performance per
transistor is not.
"""

from __future__ import annotations

from typing import Optional

from repro.core.aggregation import group_means, weighted_average
from repro.core.study import Study
from repro.experiments.base import ExperimentResult, resolve_study
from repro.hardware.catalog import PROCESSORS
from repro.hardware.config import stock
from repro.workloads.catalog import BENCHMARKS


def run(study: Optional[Study] = None) -> ExperimentResult:
    study = resolve_study(study)
    rows = []
    for spec in PROCESSORS:
        results = study.run_config(stock(spec))
        performance = weighted_average(
            group_means(results.values("speedup"), BENCHMARKS)
        )
        watts = weighted_average(group_means(results.values("watts"), BENCHMARKS))
        rows.append(
            {
                "processor": spec.label,
                "uarch": spec.family.name,
                "release": spec.release,
                "node_nm": spec.node.nanometers,
                "performance": round(performance, 2),
                "watts": round(watts, 1),
                "transistors_m": spec.transistors_m,
                "performance_per_mtransistor": round(
                    performance / spec.transistors_m, 5
                ),
                "watts_per_mtransistor": round(watts / spec.transistors_m, 5),
            }
        )
    return ExperimentResult(
        experiment_id="fig11",
        title="Historical power / performance, absolute and per transistor",
        paper_section="Fig. 11 / Architecture Finding 9",
        rows=tuple(rows),
        notes=(
            "Power per transistor should cluster by microarchitecture "
            "family: NetBurst by far the highest, Bonnell and the 45/32nm "
            "parts at the bottom.",
        ),
    )
