"""Fig. 10: the impact of Turbo Boost (§3.6).

Turbo enabled versus disabled at the stock clock, on the full stock
parallelism and limited to a single hardware context (where the boost may
add a second step).  Architecture Finding 8: Turbo Boost is not energy
efficient on the i7 (45) — the boost's power cost far outruns the
clock-predicted performance gain — while the i5 (32) is essentially
energy-neutral.
"""

from __future__ import annotations

from typing import Optional

from repro.core.study import Study
from repro.experiments import paper_data
from repro.experiments.base import ExperimentResult, resolve_study
from repro.experiments.features import FeatureEffect, compare, effect_row, group_energy_rows
from repro.hardware.catalog import CORE_I5_32, CORE_I7_45
from repro.hardware.config import Configuration

_CASES = (
    ("i7_45/4C2T", CORE_I7_45, 4, 2, 2.66),
    ("i7_45/1C1T", CORE_I7_45, 1, 1, 2.66),
    ("i5_32/2C2T", CORE_I5_32, 2, 2, 3.46),
    ("i5_32/1C1T", CORE_I5_32, 1, 1, 3.46),
)


def effects(study: Study) -> dict[str, FeatureEffect]:
    resolved = {}
    for key, spec, cores, threads, clock in _CASES:
        resolved[key] = compare(
            study,
            Configuration(spec, cores, threads, clock, turbo_enabled=True),
            Configuration(spec, cores, threads, clock, turbo_enabled=False),
            label=f"{spec.label} {cores}C{threads}T TB on/off",
        )
    return resolved


def run(study: Optional[Study] = None) -> ExperimentResult:
    study = resolve_study(study)
    resolved = effects(study)
    rows: list[dict[str, object]] = []
    for key, effect in resolved.items():
        rows.append(effect_row(effect, paper_data.FIG10_TURBO[key]))
    for key in ("i7_45/4C2T", "i5_32/2C2T"):
        rows.extend(group_energy_rows(resolved[key]))
    return ExperimentResult(
        experiment_id="fig10",
        title="Impact of enabling Turbo Boost",
        paper_section="Fig. 10 / Architecture Finding 8",
        rows=tuple(rows),
    )
