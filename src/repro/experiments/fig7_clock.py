"""Fig. 7: the impact of clock scaling (§3.3).

Scales the i7 (45), Core 2D (45), and i5 (32) between their minimum and
maximum clocks (Turbo Boost disabled) and expresses the change in
performance, power, and energy per clock *doubling*, the paper's
normalisation.  Architecture Finding 3: the i5 does not increase energy
consumption as the clock increases, unlike the i7 and Core 2D.
Also regenerates Fig. 7(c)'s energy-versus-performance curves across all
operating points and Fig. 7(d)'s absolute power-by-group panel.
"""

from __future__ import annotations

from typing import Optional

from repro.core.aggregation import group_means, per_group_ratio, weighted_average
from repro.core.study import Study
from repro.experiments import paper_data
from repro.experiments.base import (
    ExperimentResult,
    doubling_normalised,
    resolve_study,
)
from repro.experiments.features import compare
from repro.hardware.catalog import CORE2DUO_45, CORE_I5_32, CORE_I7_45
from repro.hardware.config import Configuration
from repro.hardware.processor import ProcessorSpec
from repro.workloads.catalog import BENCHMARKS

#: The three machines the paper clock-scales, at their stock core/thread
#: configurations (Turbo Boost off throughout).
MACHINES: tuple[tuple[str, ProcessorSpec, int, int], ...] = (
    ("i7_45", CORE_I7_45, 4, 2),
    ("c2d_45", CORE2DUO_45, 2, 1),
    ("i5_32", CORE_I5_32, 2, 2),
)


def _config(spec: ProcessorSpec, cores: int, threads: int, ghz: float) -> Configuration:
    return Configuration(spec, cores, threads, ghz)


def doubling_rows(study: Study) -> list[dict[str, object]]:
    """Fig. 7(a): per-doubling percent changes, paper versus measured."""
    rows = []
    for key, spec, cores, threads in MACHINES:
        low_ghz, high_ghz = spec.clock_points_ghz[0], spec.clock_points_ghz[-1]
        effect = compare(
            study,
            _config(spec, cores, threads, high_ghz),
            _config(spec, cores, threads, low_ghz),
            label=f"{spec.label} {high_ghz:g}/{low_ghz:g}GHz",
        )
        frequency_ratio = high_ghz / low_ghz
        paper = paper_data.FIG7_CLOCK_DOUBLING[key]
        rows.append(
            {
                "processor": spec.label,
                "performance_per_doubling": round(
                    doubling_normalised(effect.performance, frequency_ratio) - 1.0, 3
                ),
                "power_per_doubling": round(
                    doubling_normalised(effect.power, frequency_ratio) - 1.0, 3
                ),
                "energy_per_doubling": round(
                    doubling_normalised(effect.energy, frequency_ratio) - 1.0, 3
                ),
                "paper_performance": paper["performance"],
                "paper_power": paper["power"],
                "paper_energy": paper["energy"],
            }
        )
    return rows


def group_energy_rows(study: Study) -> list[dict[str, object]]:
    """Fig. 7(b): per-group energy change per clock doubling."""
    from repro.workloads.catalog import BENCHMARKS as _BENCHMARKS

    rows = []
    for key, spec, cores, threads in MACHINES:
        low_ghz, high_ghz = spec.clock_points_ghz[0], spec.clock_points_ghz[-1]
        high = study.run_config(_config(spec, cores, threads, high_ghz))
        low = study.run_config(_config(spec, cores, threads, low_ghz))
        ratios = per_group_ratio(
            high.values("energy_joules"), low.values("energy_joules"), _BENCHMARKS
        )
        frequency_ratio = high_ghz / low_ghz
        paper = paper_data.FIG7_CLOCK_ENERGY_BY_GROUP[key]
        for group, ratio in ratios.items():
            rows.append(
                {
                    "processor": spec.label,
                    "group": group.value,
                    "energy_per_doubling": round(
                        doubling_normalised(ratio, frequency_ratio) - 1.0, 3
                    ),
                    "paper_energy": paper.get(group),
                }
            )
    return rows


def energy_curve(study: Study, key: str) -> list[tuple[float, float, float]]:
    """Fig. 7(c): (clock GHz, relative performance, relative energy) along
    a machine's operating points, normalised to its lowest clock."""
    spec, cores, threads = next(
        (s, c, t) for k, s, c, t in MACHINES if k == key
    )
    points = []
    base_perf = base_energy = None
    for ghz in spec.clock_points_ghz:
        results = study.run_config(_config(spec, cores, threads, ghz))
        perf = weighted_average(group_means(results.values("speedup"), BENCHMARKS))
        energy = weighted_average(
            group_means(results.values("normalized_energy"), BENCHMARKS)
        )
        if base_perf is None:
            base_perf, base_energy = perf, energy
        points.append((ghz, perf / base_perf, energy / base_energy))
    return points


def power_by_group(study: Study, key: str) -> dict[str, list[tuple[float, float, float]]]:
    """Fig. 7(d): absolute (performance, watts) per group along the clock
    points of one machine."""
    spec, cores, threads = next(
        (s, c, t) for k, s, c, t in MACHINES if k == key
    )
    series: dict[str, list[tuple[float, float, float]]] = {}
    for ghz in spec.clock_points_ghz:
        results = study.run_config(_config(spec, cores, threads, ghz))
        speed = group_means(results.values("speedup"), BENCHMARKS)
        watts = group_means(results.values("watts"), BENCHMARKS)
        for group in speed:
            series.setdefault(group.value, []).append(
                (ghz, speed[group], watts[group])
            )
    return series


def run(study: Optional[Study] = None) -> ExperimentResult:
    study = resolve_study(study)
    rows = doubling_rows(study)
    rows.extend(group_energy_rows(study))
    for key, spec, _, _ in MACHINES:
        for ghz, perf, energy in energy_curve(study, key):
            rows.append(
                {
                    "processor": spec.label,
                    "curve_clock_ghz": ghz,
                    "curve_relative_performance": round(perf, 3),
                    "curve_relative_energy": round(energy, 3),
                }
            )
    return ExperimentResult(
        experiment_id="fig7",
        title="Impact of clock scaling (per clock doubling)",
        paper_section="Fig. 7 / Architecture Finding 3 / Workload Finding 3",
        rows=tuple(rows),
    )
