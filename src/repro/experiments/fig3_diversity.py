"""Fig. 3: benchmark power / performance distribution on the i7 (§2.7).

Per-benchmark performance (normalised to reference) and measured power on
the stock i7: scalable benchmarks cluster fast-and-hungry, non-scalable
ones spread widely — the diversity argument for the four-group weighting.
"""

from __future__ import annotations

from typing import Optional

from repro.core.study import Study
from repro.experiments import paper_data
from repro.experiments.base import ExperimentResult, resolve_study
from repro.hardware.catalog import CORE_I7_45
from repro.hardware.config import stock
from repro.workloads.catalog import BENCHMARKS_BY_NAME


def run(study: Optional[Study] = None) -> ExperimentResult:
    study = resolve_study(study)
    results = study.run_config(stock(CORE_I7_45))
    speed = results.values("speedup")
    watts = results.values("watts")
    rows = []
    for name in speed:
        benchmark = BENCHMARKS_BY_NAME[name]
        rows.append(
            {
                "benchmark": name,
                "group": benchmark.group.value,
                "performance": round(speed[name], 2),
                "watts": round(watts[name], 1),
            }
        )
    rows.sort(key=lambda r: (r["group"], -float(r["performance"])))
    low = min(watts, key=watts.__getitem__)
    high = max(watts, key=watts.__getitem__)
    return ExperimentResult(
        experiment_id="fig3",
        title="Benchmark power and performance on the i7 (45)",
        paper_section="Fig. 3 / §2.5 extremes",
        rows=tuple(rows),
        notes=(
            f"power extremes: {low} {watts[low]:.1f}W .. {high} "
            f"{watts[high]:.1f}W (paper: "
            f"{paper_data.I7_POWER_EXTREMES['min_benchmark']} "
            f"{paper_data.I7_POWER_EXTREMES['min']:.0f}W .. "
            f"{paper_data.I7_POWER_EXTREMES['max_benchmark']} "
            f"{paper_data.I7_POWER_EXTREMES['max']:.0f}W)",
        ),
    )
