"""Table 3: the eight experimental processors and key specifications."""

from __future__ import annotations

from typing import Optional

from repro.core.study import Study
from repro.experiments.base import ExperimentResult
from repro.hardware.catalog import PROCESSORS


def run(study: Optional[Study] = None) -> ExperimentResult:
    rows = []
    for spec in PROCESSORS:
        rows.append(
            {
                "processor": spec.label,
                "uarch": spec.family.name,
                "codename": spec.codename,
                "sspec": spec.sspec,
                "release": spec.release,
                "price_usd": spec.price_usd,
                "cmp_smt": spec.cmp_smt,
                "llc_mb": spec.llc_mb,
                "clock_ghz": round(spec.stock_clock.ghz, 2),
                "node_nm": spec.node.nanometers,
                "transistors_m": spec.transistors_m,
                "die_mm2": spec.die_mm2,
                "vid_range": spec.vid_range,
                "tdp_w": spec.tdp_w,
                "fsb_mhz": spec.memory.fsb_mhz,
                "dram": spec.memory.dram,
            }
        )
    return ExperimentResult(
        experiment_id="table3",
        title="The eight experimental processors and key specifications",
        paper_section="Table 3",
        rows=tuple(rows),
    )
