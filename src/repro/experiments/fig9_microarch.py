"""Fig. 9: the effect of gross microarchitecture change (§3.5).

Compares Nehalem parts against each other family at matched clock, core
count, and thread count.  Architecture Finding 6: Nehalem is ~14 % faster
than Core when controlled; Finding 7: controlling for technology, Nehalem,
Core, and Bonnell deliver similar energy efficiency.
"""

from __future__ import annotations

from typing import Optional

from repro.core.study import Study
from repro.experiments import paper_data
from repro.experiments.base import ExperimentResult, resolve_study
from repro.experiments.features import FeatureEffect, compare, effect_row, group_energy_rows
from repro.hardware.catalog import (
    ATOM_D510_45,
    CORE2DUO_45,
    CORE2DUO_65,
    CORE_I5_32,
    CORE_I7_45,
    PENTIUM4_130,
)
from repro.hardware.config import Configuration, stock


def effects(study: Study) -> dict[str, FeatureEffect]:
    return {
        "bonnell": compare(
            study,
            Configuration(CORE_I7_45, 2, 2, 1.6),
            stock(ATOM_D510_45),
            label="Bonnell: i7 (45) 2C2T@1.6 / AtomD (45)",
        ),
        "netburst": compare(
            study,
            Configuration(CORE_I7_45, 1, 2, 2.4),
            stock(PENTIUM4_130),
            label="NetBurst: i7 (45) 1C2T@2.4 / Pentium4 (130)",
        ),
        "core_45": compare(
            study,
            Configuration(CORE_I7_45, 2, 1, 1.6),
            Configuration(CORE2DUO_45, 2, 1, 1.6),
            label="Core: i7 (45) / C2D (45) 2C1T@1.6",
        ),
        "core_65": compare(
            study,
            Configuration(CORE_I5_32, 2, 1, 2.4),
            Configuration(CORE2DUO_65, 2, 1, 2.4),
            label="Core: i5 (32) / C2D (65) 2C1T@2.4",
        ),
    }


def run(study: Optional[Study] = None) -> ExperimentResult:
    study = resolve_study(study)
    resolved = effects(study)
    rows: list[dict[str, object]] = []
    for key, effect in resolved.items():
        rows.append(effect_row(effect, paper_data.FIG9_MICROARCH[key]))
    for effect in resolved.values():
        rows.extend(group_energy_rows(effect))
    return ExperimentResult(
        experiment_id="fig9",
        title="Effect of gross microarchitecture change (Nehalem / other)",
        paper_section="Fig. 9 / Architecture Findings 6-7",
        rows=tuple(rows),
    )
