"""Fig. 1: scalability of the multithreaded Java benchmarks on the i7.

Each multithreaded Java benchmark's speedup at 4C2T over 1C1T, which is
how the paper selects Java Scalable (the five that scale like PARSEC).
"""

from __future__ import annotations

from typing import Optional

from repro.core.study import Study
from repro.experiments import paper_data
from repro.experiments.base import ExperimentResult, resolve_study
from repro.hardware.catalog import CORE_I7_45
from repro.hardware.config import Configuration
from repro.workloads.catalog import multithreaded_java


def run(study: Optional[Study] = None) -> ExperimentResult:
    study = resolve_study(study)
    benchmarks = multithreaded_java()
    one = study.run(
        (Configuration(CORE_I7_45, 1, 1, 2.66),), benchmarks
    ).values("seconds")
    eight = study.run(
        (Configuration(CORE_I7_45, 4, 2, 2.66),), benchmarks
    ).values("seconds")
    rows = []
    for benchmark in benchmarks:
        measured = one[benchmark.name] / eight[benchmark.name]
        rows.append(
            {
                "benchmark": benchmark.name,
                "group": benchmark.group.value,
                "measured_4C2T_over_1C1T": round(measured, 2),
                "paper": paper_data.FIG1_JAVA_SCALABILITY.get(benchmark.name),
            }
        )
    rows.sort(key=lambda r: -float(r["measured_4C2T_over_1C1T"]))
    return ExperimentResult(
        experiment_id="fig1",
        title="Scalability of multithreaded Java benchmarks on the i7 (45)",
        paper_section="Fig. 1",
        rows=tuple(rows),
    )
