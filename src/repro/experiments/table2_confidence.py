"""Table 2: aggregate 95 % confidence intervals for time and power (§2.1).

The paper repeats each measurement (3 executions for SPEC, 5 for PARSEC,
20 JVM invocations for Java) and reports the average and maximum relative
95 % confidence interval per workload group, aggregated over all processor
configurations.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.statistics import mean
from repro.core.study import Study
from repro.experiments import paper_data
from repro.experiments.base import ExperimentResult, resolve_study
from repro.hardware.config import Configuration
from repro.hardware.configurations import stock_configurations
from repro.workloads.benchmark import Group
from repro.workloads.catalog import groups


def run(
    study: Optional[Study] = None,
    configurations: Optional[Iterable[Configuration]] = None,
) -> ExperimentResult:
    """Aggregate CI statistics over ``configurations`` (default: the eight
    stock machines; pass ``all_configurations()`` for the paper's full
    sweep)."""
    study = resolve_study(study)
    configs = tuple(configurations) if configurations is not None else stock_configurations()

    per_group: dict[Group, dict[str, list[float]]] = {
        group: {"time": [], "power": []} for group in groups()
    }
    for config in configs:
        for result in study.run_config(config):
            per_group[result.group]["time"].append(result.time_ci.relative_error)
            per_group[result.group]["power"].append(result.power_ci.relative_error)

    rows = []
    all_time: list[float] = []
    all_power: list[float] = []
    for group in groups():
        times = per_group[group]["time"]
        powers = per_group[group]["power"]
        all_time.extend(times)
        all_power.extend(powers)
        rows.append(
            {
                "group": group.value,
                "time_avg": round(mean(times), 4),
                "time_max": round(max(times), 4),
                "power_avg": round(mean(powers), 4),
                "power_max": round(max(powers), 4),
            }
        )
    rows.insert(
        0,
        {
            "group": "Average",
            "time_avg": round(mean(all_time), 4),
            "time_max": round(max(all_time), 4),
            "power_avg": round(mean(all_power), 4),
            "power_max": round(max(all_power), 4),
            "paper_time_avg": paper_data.TABLE2_CI["time_average"],
            "paper_power_avg": paper_data.TABLE2_CI["power_average"],
        },
    )
    return ExperimentResult(
        experiment_id="table2",
        title="Aggregate 95% confidence intervals for time and power",
        paper_section="Table 2",
        rows=tuple(rows),
        notes=(f"aggregated over {len(configs)} configurations",),
    )
