"""Table 4: average performance and power per stock processor (§2.6).

For each of the eight stock machines: group means of speedup-over-
reference and of measured power, the group-weighted average (Avg_w), the
simple benchmark average (Avg_b), the extremes, and the within-column
ranks the paper prints in small italics.
"""

from __future__ import annotations

from typing import Optional

from repro.core.aggregation import full_aggregate
from repro.core.study import Study
from repro.experiments import paper_data
from repro.experiments.base import ExperimentResult, resolve_study
from repro.hardware.catalog import PROCESSORS
from repro.hardware.config import stock
from repro.workloads.catalog import BENCHMARKS


def run(study: Optional[Study] = None) -> ExperimentResult:
    study = resolve_study(study)
    speed_rows: dict[str, dict[str, float]] = {}
    power_rows: dict[str, dict[str, float]] = {}
    for spec in PROCESSORS:
        results = study.run_config(stock(spec))
        speed_rows[spec.key] = full_aggregate(results.values("speedup"), BENCHMARKS)
        power_rows[spec.key] = full_aggregate(results.values("watts"), BENCHMARKS)

    speed_rank = _ranks({k: v["Avg_w"] for k, v in speed_rows.items()}, best_high=True)
    power_rank = _ranks({k: v["Avg_w"] for k, v in power_rows.items()}, best_high=False)

    rows = []
    for spec in PROCESSORS:
        speed = speed_rows[spec.key]
        power = power_rows[spec.key]
        paper_speed = paper_data.TABLE4_SPEEDUP[spec.key]
        paper_power = paper_data.TABLE4_POWER[spec.key]
        row: dict[str, object] = {"processor": spec.label, "key": spec.key}
        for column, value in speed.items():
            row[f"speedup:{column}"] = round(value, 2)
        row["speedup:rank"] = speed_rank[spec.key]
        row["speedup:paper_Avg_w"] = paper_speed["Avg_w"]
        row["speedup:paper_rank"] = paper_data.TABLE4_SPEEDUP_RANKS_AVGW[spec.key]
        for column, value in power.items():
            row[f"power:{column}"] = round(value, 1)
        row["power:rank"] = power_rank[spec.key]
        row["power:paper_Avg_w"] = paper_power["Avg_w"]
        row["power:paper_rank"] = paper_data.TABLE4_POWER_RANKS_AVGW[spec.key]
        rows.append(row)
    return ExperimentResult(
        experiment_id="table4",
        title="Average performance and power characteristics",
        paper_section="Table 4",
        rows=tuple(rows),
    )


def _ranks(values: dict[str, float], best_high: bool) -> dict[str, int]:
    ordered = sorted(values, key=values.__getitem__, reverse=best_high)
    return {key: index + 1 for index, key in enumerate(ordered)}
