"""Extension: thermal headroom under Turbo Boost.

The boost engages only "if temperature, power, and current conditions
allow" (§3.6).  This experiment asks how much thermal margin each
benchmark leaves on the boosted Nehalems: because measured power sits
far below TDP (Fig. 2), every workload in the study sustains its boost —
consistent with the paper's empirical verification that the boosted
frequencies were always reached.
"""

from __future__ import annotations

from typing import Optional

from repro.core.quantities import Watts
from repro.core.statistics import mean
from repro.core.study import Study
from repro.experiments.base import ExperimentResult, resolve_study
from repro.hardware.catalog import CORE_I5_32, CORE_I7_45
from repro.hardware.config import stock
from repro.hardware.thermal import boost_headroom, stock_cooler


def run(study: Optional[Study] = None) -> ExperimentResult:
    study = resolve_study(study)
    rows = []
    for spec in (CORE_I7_45, CORE_I5_32):
        watts = study.run_config(stock(spec)).values("watts")
        headrooms = {
            name: boost_headroom(spec, Watts(value))
            for name, value in watts.items()
        }
        cooler = stock_cooler(spec)
        hottest = min(headrooms, key=headrooms.__getitem__)
        rows.append(
            {
                "processor": spec.label,
                "theta_ja_c_per_w": round(cooler.theta_ja, 3),
                "mean_headroom": round(mean(list(headrooms.values())), 3),
                "min_headroom": round(headrooms[hottest], 3),
                "hottest_benchmark": hottest,
                "all_benchmarks_sustain_boost": all(
                    h > 0.0 for h in headrooms.values()
                ),
            }
        )
    return ExperimentResult(
        experiment_id="ext_thermal",
        title="Thermal headroom under Turbo Boost (stock Nehalems)",
        paper_section="§3.6 (boost conditions probed)",
        rows=tuple(rows),
        notes=(
            "Headroom is the unused fraction of the TDP-limited thermal "
            "budget; every measured workload stays below TDP, so the boost "
            "is always thermally sustainable — matching the paper's "
            "empirical frequency checks.",
        ),
    )
