"""Fig. 2: measured power versus TDP (§2.5).

Plots every benchmark's measured power on every stock processor against
the part's Thermal Design Power.  The paper's point: TDP is strictly above
measured power, benchmark power varies widely (most on the Nehalems), and
TDP predicts neither maxima nor relative ordering well.
"""

from __future__ import annotations

from typing import Optional

from repro.core.study import Study
from repro.experiments.base import ExperimentResult, resolve_study
from repro.hardware.catalog import PROCESSORS
from repro.hardware.config import stock


def run(study: Optional[Study] = None) -> ExperimentResult:
    study = resolve_study(study)
    rows = []
    for spec in PROCESSORS:
        watts = study.run_config(stock(spec)).values("watts")
        low, high = min(watts.values()), max(watts.values())
        rows.append(
            {
                "processor": spec.label,
                "tdp_w": spec.tdp_w,
                "min_w": round(low, 1),
                "max_w": round(high, 1),
                "min_benchmark": min(watts, key=watts.__getitem__),
                "max_benchmark": max(watts, key=watts.__getitem__),
                "max_over_min": round(high / low, 2),
                "tdp_over_max": round(spec.tdp_w / high, 2),
            }
        )
    return ExperimentResult(
        experiment_id="fig2",
        title="Measured benchmark power versus TDP per processor",
        paper_section="Fig. 2",
        rows=tuple(rows),
        notes=(
            "TDP must be strictly above max measured power; the Atom's "
            "min-to-max spread is the narrowest (~30%), the Nehalems' the "
            "widest.",
        ),
    )


def scatter(study: Optional[Study] = None) -> list[tuple[str, str, float, float]]:
    """The raw figure series: (processor, benchmark, tdp, watts)."""
    study = resolve_study(study)
    points = []
    for spec in PROCESSORS:
        for name, watts in study.run_config(stock(spec)).values("watts").items():
            points.append((spec.label, name, float(spec.tdp_w), watts))
    return points
