"""Fig. 8: the effect of a die shrink (§3.4).

Two family pairs observe a shrink: Core (Core 2D 65nm -> 45nm) and
Nehalem (i7 45nm -> i5 32nm).  The paper compares at native clocks and at
matched clocks (both Cores at 2.4 GHz, both Nehalems at 2.66 GHz, the i7
limited to two cores to match the i5's parallelism).  Architecture
Findings 4 and 5: a shrink is remarkably effective at cutting energy even
at matched clock, and 45->32 nm repeated the previous generation's gains.
"""

from __future__ import annotations

from typing import Optional

from repro.core.study import Study
from repro.experiments import paper_data
from repro.experiments.base import ExperimentResult, resolve_study
from repro.experiments.features import FeatureEffect, compare, effect_row, group_energy_rows
from repro.hardware.catalog import CORE2DUO_45, CORE2DUO_65, CORE_I5_32, CORE_I7_45
from repro.hardware.config import Configuration, stock


def native_clock_effects(study: Study) -> dict[str, FeatureEffect]:
    """Fig. 8(a): new versus old part, both as shipped (i7 at 2C2T)."""
    return {
        "core": compare(
            study,
            stock(CORE2DUO_45),
            stock(CORE2DUO_65),
            label="Core: C2D (45) / C2D (65), native clocks",
        ),
        "nehalem": compare(
            study,
            stock(CORE_I5_32),
            Configuration(CORE_I7_45, 2, 2, 2.66, turbo_enabled=True),
            label="Nehalem: i5 (32) / i7 (45) 2C2T, native clocks",
        ),
    }


def matched_clock_effects(study: Study) -> dict[str, FeatureEffect]:
    """Fig. 8(b): new versus old at matched clock and parallelism."""
    return {
        "core": compare(
            study,
            Configuration(CORE2DUO_45, 2, 1, 2.4),
            Configuration(CORE2DUO_65, 2, 1, 2.4),
            label="Core: C2D (45) / C2D (65) @ 2.4GHz",
        ),
        "nehalem": compare(
            study,
            Configuration(CORE_I5_32, 2, 2, 2.66),
            Configuration(CORE_I7_45, 2, 2, 2.66),
            label="Nehalem: i5 (32) / i7 (45) 2C2T @ 2.66GHz",
        ),
    }


def run(study: Optional[Study] = None) -> ExperimentResult:
    study = resolve_study(study)
    rows: list[dict[str, object]] = []
    for key, effect in native_clock_effects(study).items():
        rows.append(effect_row(effect, paper_data.FIG8_DIE_SHRINK_NATIVE[key]))
    matched = matched_clock_effects(study)
    for key, effect in matched.items():
        rows.append(effect_row(effect, paper_data.FIG8_DIE_SHRINK_MATCHED[key]))
    for effect in matched.values():
        rows.extend(group_energy_rows(effect))
    return ExperimentResult(
        experiment_id="fig8",
        title="Impact of a die shrink (Core 65->45nm, Nehalem 45->32nm)",
        paper_section="Fig. 8 / Architecture Findings 4-5",
        rows=tuple(rows),
    )
