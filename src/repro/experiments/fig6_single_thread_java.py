"""Fig. 6: CMP impact on single-threaded Java (§3.1).

Workload Finding 1: the JVM induces parallelism into ostensibly
single-threaded Java programs — a second core speeds them up ~10 % on
average and up to ~55 % (antlr), because runtime services offload and the
collector stops displacing application cache/TLB state.  The experiment
also reproduces the paper's counter evidence: db's DTLB misses fall by
~2.5x given the second core.
"""

from __future__ import annotations

from typing import Optional

from repro.core.study import Study
from repro.experiments import paper_data
from repro.experiments.base import ExperimentResult, resolve_study
from repro.hardware.catalog import CORE_I7_45
from repro.hardware.config import Configuration
from repro.workloads.catalog import benchmark, single_threaded_java


def dtlb_reduction(study: Study, name: str = "db") -> float:
    """DTLB miss ratio, one core versus two, for one benchmark."""
    engine = study.engine
    bench = benchmark(name)
    one = engine.ideal(bench, Configuration(CORE_I7_45, 1, 1, 2.66))
    two = engine.ideal(bench, Configuration(CORE_I7_45, 2, 1, 2.66))
    return one.events.dtlb_misses / two.events.dtlb_misses


def run(study: Optional[Study] = None) -> ExperimentResult:
    study = resolve_study(study)
    benchmarks = single_threaded_java()
    one = study.run((Configuration(CORE_I7_45, 1, 1, 2.66),), benchmarks).values("seconds")
    two = study.run((Configuration(CORE_I7_45, 2, 1, 2.66),), benchmarks).values("seconds")
    rows = []
    for bench in benchmarks:
        rows.append(
            {
                "benchmark": bench.name,
                "measured_2C1T_over_1C1T": round(one[bench.name] / two[bench.name], 2),
                "paper": paper_data.FIG6_ST_JAVA_CMP.get(bench.name),
            }
        )
    rows.sort(key=lambda r: -float(r["measured_2C1T_over_1C1T"]))
    db_factor = dtlb_reduction(study)
    return ExperimentResult(
        experiment_id="fig6",
        title="CMP impact for single-threaded Java on the i7 (45)",
        paper_section="Fig. 6 / Workload Finding 1",
        rows=tuple(rows),
        notes=(
            f"db DTLB misses fall {db_factor:.2f}x with a second core "
            f"(paper: {paper_data.DB_DTLB_REDUCTION}x)",
        ),
    )
