"""One module per paper table and figure, plus the findings as checks.

Use :func:`repro.experiments.registry.run_experiment` to regenerate any
artifact by id (``table1`` .. ``table5``, ``fig1`` .. ``fig12``), or
:func:`repro.experiments.findings.evaluate_all` for the thirteen findings.
"""
