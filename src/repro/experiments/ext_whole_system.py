"""Extension: chip-level versus whole-system power measurement.

Quantifies why the paper instruments the isolated processor rail rather
than the wall (§2.5): on small parts the chip is a sliver of system
power, so whole-system measurement drowns exactly the effects the study
is about.  Reports, per machine: chip power, modelled wall power, the
chip's share, and how much of the chip's benchmark-to-benchmark dynamic
range survives at the wall.
"""

from __future__ import annotations

from typing import Optional

from repro.core.study import Study
from repro.experiments.base import ExperimentResult, resolve_study
from repro.hardware.catalog import PROCESSORS
from repro.hardware.config import stock
from repro.measurement.clamp import chip_share_of_wall, platform_for
from repro.core.quantities import Watts


def run(study: Optional[Study] = None) -> ExperimentResult:
    study = resolve_study(study)
    engine = study.engine
    rows = []
    for spec in PROCESSORS:
        config = stock(spec)
        chip_watts = []
        executions = {}
        for bench_name, watts in study.run_config(config).values("watts").items():
            chip_watts.append(watts)
            executions[bench_name] = watts
        platform = platform_for(spec.key)
        chip_lo, chip_hi = min(chip_watts), max(chip_watts)
        wall_lo = platform.wall_power(Watts(chip_lo)).value
        wall_hi = platform.wall_power(Watts(chip_hi)).value
        from repro.workloads.catalog import benchmark as lookup

        sample = engine.ideal(lookup("xalan"), config)
        rows.append(
            {
                "processor": spec.label,
                "chip_watts_range": (round(chip_lo, 1), round(chip_hi, 1)),
                "wall_watts_range": (round(wall_lo, 1), round(wall_hi, 1)),
                "chip_share_of_wall": round(chip_share_of_wall(sample), 3),
                "chip_dynamic_range": round(chip_hi / chip_lo, 2),
                "wall_dynamic_range": round(wall_hi / wall_lo, 2),
            }
        )
    return ExperimentResult(
        experiment_id="ext_whole_system",
        title="Chip-level versus whole-system power measurement",
        paper_section="§2.5 / §5 (methodology contrast)",
        rows=tuple(rows),
        notes=(
            "The Atom's 1.5x chip-level benchmark power range collapses to "
            "a few percent at the wall: whole-system measurement cannot "
            "support the paper's chip-level findings.",
        ),
    )
