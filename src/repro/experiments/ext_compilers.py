"""Extension: icc versus gcc on SPEC CPU2006 (§2.1's future work).

The paper compiled SPEC with icc because it "consistently generated
better performing code than gcc", and left a systematic two-compiler
comparison to future work.  This experiment rebuilds the Native
Non-scalable suite with each toolchain and compares times on three
machines.
"""

from __future__ import annotations

from typing import Optional

from repro.core.statistics import mean
from repro.core.study import Study
from repro.execution.engine import ExecutionEngine
from repro.experiments.base import ExperimentResult, resolve_study
from repro.hardware.catalog import CORE2DUO_65, CORE_I7_45, PENTIUM4_130
from repro.hardware.config import stock
from repro.native.compiler import Toolchain
from repro.workloads.benchmark import Group
from repro.workloads.catalog import by_group


def run(study: Optional[Study] = None) -> ExperimentResult:
    resolve_study(study)
    icc = ExecutionEngine(native_toolchain=Toolchain.ICC, seed_root="cc/icc")
    gcc = ExecutionEngine(native_toolchain=Toolchain.GCC, seed_root="cc/gcc")
    rows = []
    for spec in (PENTIUM4_130, CORE2DUO_65, CORE_I7_45):
        config = stock(spec)
        ratios = []
        for bench in by_group(Group.NATIVE_NONSCALABLE):
            icc_time = icc.ideal(bench, config).seconds.value
            gcc_time = gcc.ideal(bench, config).seconds.value
            ratios.append(gcc_time / icc_time)
        rows.append(
            {
                "processor": spec.label,
                "mean_gcc_over_icc_time": round(mean(ratios), 3),
                "worst_benchmark": round(max(ratios), 3),
                "best_benchmark": round(min(ratios), 3),
            }
        )
    return ExperimentResult(
        experiment_id="ext_compilers",
        title="icc 11.1 -o3 versus gcc 4.4.1 -O3 on SPEC CPU2006",
        paper_section="§2.1 (future work)",
        rows=tuple(rows),
        notes=(
            "Ratios above 1.0 mean gcc-built binaries run slower, matching "
            "the paper's observation that icc consistently wins on SPEC-"
            "style scalar code.",
        ),
    )
