"""Shared machinery for the §3 feature analyses.

Each feature experiment (CMP, SMT, clock, die shrink, microarchitecture,
Turbo Boost) compares two processor configurations: per-benchmark ratios
are aggregated into group means, and the groups averaged equally — exactly
the paper's two-panel presentation (average effect on performance / power
/ energy, plus the energy effect per workload group).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.aggregation import per_group_ratio, ratio_of_aggregates
from repro.core.study import Study
from repro.hardware.config import Configuration
from repro.workloads.benchmark import Group
from repro.workloads.catalog import BENCHMARKS


@dataclass(frozen=True)
class FeatureEffect:
    """Effect of one configuration change, numerator versus denominator."""

    label: str
    numerator: str  # configuration keys, for provenance
    denominator: str
    performance: float  # >1 means the change speeds things up
    power: float  # >1 means the change costs power
    energy: float  # <1 means the change saves energy
    energy_by_group: dict[Group, float]


def compare(
    study: Study,
    numerator: Configuration,
    denominator: Configuration,
    label: str,
) -> FeatureEffect:
    """Measure ``numerator`` against ``denominator`` the paper's way."""
    num = study.run_config(numerator)
    den = study.run_config(denominator)
    num_t, den_t = num.values("seconds"), den.values("seconds")
    num_p, den_p = num.values("watts"), den.values("watts")
    num_e, den_e = num.values("energy_joules"), den.values("energy_joules")

    performance = 1.0 / ratio_of_aggregates(num_t, den_t, BENCHMARKS)
    power = ratio_of_aggregates(num_p, den_p, BENCHMARKS)
    energy = ratio_of_aggregates(num_e, den_e, BENCHMARKS)
    by_group = per_group_ratio(num_e, den_e, BENCHMARKS)
    return FeatureEffect(
        label=label,
        numerator=numerator.key,
        denominator=denominator.key,
        performance=performance,
        power=power,
        energy=energy,
        energy_by_group=by_group,
    )


def effect_row(effect: FeatureEffect, paper: dict | None = None) -> dict[str, object]:
    """A standard experiment row for one feature comparison."""
    row: dict[str, object] = {
        "comparison": effect.label,
        "performance": round(effect.performance, 3),
        "power": round(effect.power, 3),
        "energy": round(effect.energy, 3),
    }
    if paper is not None:
        row["paper_performance"] = paper.get("performance")
        row["paper_power"] = paper.get("power")
        row["paper_energy"] = paper.get("energy")
    return row


def group_energy_rows(
    effect: FeatureEffect, paper_by_group: dict | None = None
) -> list[dict[str, object]]:
    """Per-group energy panel rows (the paper's (b) charts)."""
    rows = []
    for group, value in effect.energy_by_group.items():
        row: dict[str, object] = {
            "comparison": effect.label,
            "group": group.value,
            "energy": round(value, 3),
        }
        if paper_by_group is not None and group in paper_by_group:
            row["paper_energy"] = paper_by_group[group]
        rows.append(row)
    return rows
