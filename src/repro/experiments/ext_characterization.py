"""Extension: workload characterization through the event counters.

Couples the simulated performance counters with the power meters — the
paper's closing recommendation ("coupling these measurements with
hardware event performance counters will provide a quantitative basis for
optimizing power and energy").  Reports, per workload group on the stock
i7: IPC, LLC misses per kilo-instruction, and energy per instruction —
the quantities an energy optimiser would steer by.
"""

from __future__ import annotations

from typing import Optional

from repro.core.statistics import mean
from repro.core.study import Study
from repro.experiments.base import ExperimentResult, resolve_study
from repro.hardware.catalog import CORE_I7_45
from repro.hardware.config import stock
from repro.workloads.catalog import by_group, groups


def run(study: Optional[Study] = None) -> ExperimentResult:
    study = resolve_study(study)
    engine = study.engine
    config = stock(CORE_I7_45)
    watts = study.run_config(config).values("watts")
    rows = []
    for group in groups():
        ipcs, mpkis, epis = [], [], []
        for bench in by_group(group):
            execution = engine.ideal(bench, config)
            events = execution.events
            ipcs.append(events.ipc)
            mpkis.append(events.llc_mpki)
            joules = watts[bench.name] * execution.seconds.value
            epis.append(joules / events.instructions * 1e9)  # nJ/instr
        rows.append(
            {
                "group": group.value,
                "mean_ipc": round(mean(ipcs), 2),
                "mean_llc_mpki": round(mean(mpkis), 2),
                "mean_nj_per_instruction": round(mean(epis), 2),
            }
        )
    return ExperimentResult(
        experiment_id="ext_characterization",
        title="Workload characterization via counters + power (i7 45)",
        paper_section="§6 recommendation 3, instantiated",
        rows=tuple(rows),
        notes=(
            "IPC here is per-context; scalable groups run eight contexts, "
            "so their package-level throughput is far higher at similar "
            "energy per instruction.",
        ),
    )
