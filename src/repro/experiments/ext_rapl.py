"""Extension: the paper's §6 recommendation, realised — on-chip meters.

Cross-validates the study's external Hall-effect instrument against the
on-chip energy counter the paper asked manufacturers to expose (and which
shipped, as RAPL, in the following generation).  Both instruments observe
the same executions; their disagreement is the combined instrument error.
"""

from __future__ import annotations

from typing import Optional

from repro.core.statistics import mean
from repro.core.study import Study
from repro.experiments.base import ExperimentResult, resolve_study
from repro.faults.injector import shielded
from repro.hardware.catalog import ATOM_45, CORE_I5_32, CORE_I7_45
from repro.hardware.config import stock
from repro.measurement.meter import meter_for
from repro.measurement.rapl import rapl_power
from repro.workloads.benchmark import Group
from repro.workloads.catalog import by_group


def run(study: Optional[Study] = None) -> ExperimentResult:
    study = resolve_study(study)
    engine = study.engine
    benchmarks = (
        by_group(Group.JAVA_SCALABLE) + by_group(Group.NATIVE_SCALABLE)[:4]
    )
    rows = []
    for spec in (CORE_I7_45, CORE_I5_32, ATOM_45):
        meter = meter_for(spec)
        config = stock(spec)
        disagreements = []
        # An instrument cross-validation over ideal executions is
        # analytical, not a rig campaign: shield it from fault injection.
        with shielded():
            for bench in benchmarks:
                execution = engine.ideal(bench, config)
                hall = meter.measure(
                    execution, run_salt=f"rapl-val/{bench.name}"
                ).average_watts
                rapl = rapl_power(execution).value
                disagreements.append(abs(hall - rapl) / rapl)
        rows.append(
            {
                "processor": spec.label,
                "mean_disagreement": round(mean(disagreements), 4),
                "max_disagreement": round(max(disagreements), 4),
            }
        )
    return ExperimentResult(
        experiment_id="ext_rapl",
        title="Hall-effect rig versus on-chip energy counter (RAPL-style)",
        paper_section="§6 recommendation 1, realised",
        rows=tuple(rows),
        notes=(
            "The on-chip counter integrates energy exactly; the external "
            "rig carries sensor noise, quantisation, and rail-voltage "
            "assumptions.  Agreement within ~2-4% everywhere validates the "
            "paper's instrument.",
        ),
    )
