"""The paper's findings as executable checks.

The paper calls out four WORKLOAD FINDINGS and nine ARCHITECTURE FINDINGS.
Each function here evaluates one of them against the reproduced dataset
and returns a :class:`FindingReport` with the supporting numbers, so both
the test suite and EXPERIMENTS.md can assert that the reproduction carries
the paper's conclusions, not merely its tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.study import Study
from repro.experiments import (
    fig4_cmp,
    fig5_smt,
    fig6_single_thread_java,
    fig7_clock,
    fig8_die_shrink,
    fig9_microarch,
    fig10_turbo,
    fig11_historical,
    table5_pareto_configs,
)
from repro.experiments.base import resolve_study
from repro.workloads.benchmark import Group


@dataclass(frozen=True)
class FindingReport:
    """One finding evaluated against the reproduction."""

    finding_id: str
    statement: str
    holds: bool
    evidence: dict[str, float | str | bool]


# -- workload findings --------------------------------------------------------


def workload_1(study: Optional[Study] = None) -> FindingReport:
    """W1: the JVM induces parallelism into single-threaded Java."""
    study = resolve_study(study)
    result = fig6_single_thread_java.run(study)
    ratios = [float(r["measured_2C1T_over_1C1T"]) for r in result.rows]
    mean_gain = sum(ratios) / len(ratios)
    dtlb = fig6_single_thread_java.dtlb_reduction(study)
    return FindingReport(
        finding_id="W1",
        statement=(
            "The JVM often induces significant parallelism into the "
            "execution of single-threaded Java benchmarks"
        ),
        holds=mean_gain > 1.05 and max(ratios) > 1.25 and dtlb > 1.8,
        evidence={
            "mean_2C_over_1C": round(mean_gain, 3),
            "max_2C_over_1C": round(max(ratios), 3),
            "db_dtlb_reduction": round(dtlb, 2),
        },
    )


def workload_2(study: Optional[Study] = None) -> FindingReport:
    """W2: on the Pentium 4, SMT degrades Java Non-scalable."""
    study = resolve_study(study)
    effect = fig5_smt.effects(study)["pentium4_130"]
    jn_energy = effect.energy_by_group[Group.JAVA_NONSCALABLE]
    ns_energy = effect.energy_by_group[Group.NATIVE_SCALABLE]
    return FindingReport(
        finding_id="W2",
        statement="On the Pentium 4 (130), SMT degrades Java Non-scalable",
        holds=jn_energy > 1.0 and jn_energy > ns_energy,
        evidence={
            "p4_smt_jn_energy": round(jn_energy, 3),
            "p4_smt_ns_energy": round(ns_energy, 3),
        },
    )


def workload_3(study: Optional[Study] = None) -> FindingReport:
    """W3: Native Non-scalable's power/performance differs from the rest."""
    from repro.core.aggregation import group_means
    from repro.hardware.catalog import CORE_I5_32, CORE_I7_45
    from repro.hardware.config import stock
    from repro.workloads.catalog import BENCHMARKS

    study = resolve_study(study)
    evidence: dict[str, float | str | bool] = {}
    holds = True
    for spec in (CORE_I7_45, CORE_I5_32):
        watts = group_means(
            study.run_config(stock(spec)).values("watts"), BENCHMARKS
        )
        nn = watts[Group.NATIVE_NONSCALABLE]
        others = [watts[g] for g in watts if g is not Group.NATIVE_NONSCALABLE]
        evidence[f"{spec.key}_nn_watts"] = round(nn, 1)
        evidence[f"{spec.key}_min_other_watts"] = round(min(others), 1)
        holds = holds and all(other > nn for other in others)
    return FindingReport(
        finding_id="W3",
        statement=(
            "SPEC CPU2006 draws significantly less power than managed or "
            "scalable native workloads on the i7 (45) and i5 (32)"
        ),
        holds=holds,
        evidence=evidence,
    )


def workload_4(study: Optional[Study] = None) -> FindingReport:
    """W4: Pareto-efficient design is very sensitive to workload."""
    study = resolve_study(study)
    sets = {
        grouping: table5_pareto_configs.efficient_keys(study, grouping)
        for grouping in (
            Group.NATIVE_NONSCALABLE,
            Group.NATIVE_SCALABLE,
            Group.JAVA_NONSCALABLE,
            Group.JAVA_SCALABLE,
        )
    }
    nn = sets[Group.NATIVE_NONSCALABLE]
    others = (
        sets[Group.NATIVE_SCALABLE]
        | sets[Group.JAVA_NONSCALABLE]
        | sets[Group.JAVA_SCALABLE]
    )
    distinct = len({frozenset(s) for s in sets.values()})
    return FindingReport(
        finding_id="W4",
        statement="Energy-efficient architecture design is very sensitive to workload",
        holds=distinct >= 3 and len(nn - others) >= 1,
        evidence={
            "distinct_frontier_sets": distinct,
            "nn_exclusive_choices": len(nn - others),
        },
    )


# -- architecture findings -----------------------------------------------------


def architecture_1(study: Optional[Study] = None) -> FindingReport:
    """A1: enabling a second core is not consistently energy efficient."""
    study = resolve_study(study)
    i7, i5 = fig4_cmp.effects(study)
    return FindingReport(
        finding_id="A1",
        statement="When comparing one core to two, enabling a core is not consistently energy efficient",
        holds=i7.energy > 1.0 and i5.energy < 1.0,
        evidence={
            "i7_cmp_energy": round(i7.energy, 3),
            "i5_cmp_energy": round(i5.energy, 3),
        },
    )


def architecture_2(study: Optional[Study] = None) -> FindingReport:
    """A2: SMT delivers substantial energy savings on the i5 and Atom."""
    study = resolve_study(study)
    effects = fig5_smt.effects(study)
    i5 = effects["i5_32"].energy
    atom = effects["atom_45"].energy
    p4 = effects["pentium4_130"].energy
    return FindingReport(
        finding_id="A2",
        statement="SMT delivers substantial energy savings for the i5 (32) and Atom (45)",
        holds=i5 < 0.96 and atom < 0.92 and atom < p4,
        evidence={
            "i5_smt_energy": round(i5, 3),
            "atom_smt_energy": round(atom, 3),
            "p4_smt_energy": round(p4, 3),
        },
    )


def architecture_3(study: Optional[Study] = None) -> FindingReport:
    """A3: the i5's energy is flat with clock; the i7/C2D45's is not."""
    study = resolve_study(study)
    rows = {r["processor"]: r for r in fig7_clock.doubling_rows(study)}
    i5 = float(rows["i5 (32)"]["energy_per_doubling"])
    i7 = float(rows["i7 (45)"]["energy_per_doubling"])
    c2d = float(rows["C2D (45)"]["energy_per_doubling"])
    return FindingReport(
        finding_id="A3",
        statement=(
            "The i5 (32) does not increase energy consumption as the clock "
            "increases, in contrast to the i7 (45) and Core 2D (45)"
        ),
        holds=abs(i5) < 0.15 and i7 > 0.30 and c2d > 0.30,
        evidence={
            "i5_energy_per_doubling": i5,
            "i7_energy_per_doubling": i7,
            "c2d45_energy_per_doubling": c2d,
        },
    )


def architecture_4(study: Optional[Study] = None) -> FindingReport:
    """A4: a die shrink cuts energy even at matched clock."""
    study = resolve_study(study)
    matched = fig8_die_shrink.matched_clock_effects(study)
    core = matched["core"].energy
    nehalem = matched["nehalem"].energy
    return FindingReport(
        finding_id="A4",
        statement="A die shrink is remarkably effective at reducing energy, even at matched clock",
        holds=core < 0.75 and nehalem < 0.95,
        evidence={
            "core_shrink_energy": round(core, 3),
            "nehalem_shrink_energy": round(nehalem, 3),
        },
    )


def architecture_5(study: Optional[Study] = None) -> FindingReport:
    """A5: 45->32 nm repeated the previous generation's energy gains."""
    study = resolve_study(study)
    matched = fig8_die_shrink.matched_clock_effects(study)
    gap = abs(matched["core"].power - matched["nehalem"].power)
    return FindingReport(
        finding_id="A5",
        statement="Moving from 45nm to 32nm repeated the energy improvements of the previous generation",
        holds=gap < 0.35,
        evidence={
            "core_shrink_power": round(matched["core"].power, 3),
            "nehalem_shrink_power": round(matched["nehalem"].power, 3),
        },
    )


def architecture_6(study: Optional[Study] = None) -> FindingReport:
    """A6: Nehalem ~14% faster than Core, controlled."""
    study = resolve_study(study)
    effects = fig9_microarch.effects(study)
    ratios = [effects["core_45"].performance, effects["core_65"].performance]
    return FindingReport(
        finding_id="A6",
        statement="Controlling for parallelism and clock, Nehalem performs about 14% better than Core",
        holds=all(1.02 <= r <= 1.40 for r in ratios),
        evidence={
            "i7_over_c2d45": round(ratios[0], 3),
            "i5_over_c2d65": round(ratios[1], 3),
        },
    )


def architecture_7(study: Optional[Study] = None) -> FindingReport:
    """A7: at constant technology, Nehalem's energy efficiency is similar
    to Core's and Bonnell's."""
    study = resolve_study(study)
    effects = fig9_microarch.effects(study)
    core = effects["core_45"].energy
    bonnell = effects["bonnell"].energy
    return FindingReport(
        finding_id="A7",
        statement="Controlling for technology, Nehalem has similar energy efficiency to Core and Bonnell",
        holds=0.6 <= core <= 1.3 and 0.6 <= bonnell <= 1.3,
        evidence={
            "i7_over_c2d45_energy": round(core, 3),
            "i7_over_atomd_energy": round(bonnell, 3),
        },
    )


def architecture_8(study: Optional[Study] = None) -> FindingReport:
    """A8: Turbo Boost is not energy efficient on the i7."""
    study = resolve_study(study)
    effects = fig10_turbo.effects(study)
    i7 = effects["i7_45/4C2T"].energy
    i5 = effects["i5_32/2C2T"].energy
    return FindingReport(
        finding_id="A8",
        statement="Turbo Boost is not energy efficient on the i7 (45)",
        holds=i7 > 1.10 and i5 < 1.08,
        evidence={
            "i7_turbo_energy": round(i7, 3),
            "i5_turbo_energy": round(i5, 3),
        },
    )


def architecture_9(study: Optional[Study] = None) -> FindingReport:
    """A9: power per transistor is consistent within a family."""
    study = resolve_study(study)
    rows = fig11_historical.run(study).rows
    by_family: dict[str, list[float]] = {}
    for row in rows:
        by_family.setdefault(str(row["uarch"]), []).append(
            float(row["watts_per_mtransistor"])
        )
    within = max(
        max(values) / min(values)
        for values in by_family.values()
        if len(values) > 1
    )
    across = max(max(v) for v in by_family.values()) / min(
        min(v) for v in by_family.values()
    )
    return FindingReport(
        finding_id="A9",
        statement="Power per transistor is relatively consistent within a microarchitecture family",
        holds=within < 2.0 and across > 3.0 and across > 1.5 * within,
        evidence={
            "max_within_family_ratio": round(within, 2),
            "across_family_ratio": round(across, 2),
        },
    )


ALL_FINDINGS: tuple[Callable[[Optional[Study]], FindingReport], ...] = (
    workload_1,
    workload_2,
    workload_3,
    workload_4,
    architecture_1,
    architecture_2,
    architecture_3,
    architecture_4,
    architecture_5,
    architecture_6,
    architecture_7,
    architecture_8,
    architecture_9,
)


def evaluate_all(study: Optional[Study] = None) -> list[FindingReport]:
    """Evaluate every finding against one shared dataset."""
    study = resolve_study(study)
    return [finding(study) for finding in ALL_FINDINGS]
