"""CPI stacks: where each machine spends its cycles on each benchmark.

The classic architecture-analysis view behind the paper's performance
numbers: a thread's CPI decomposed into issue (base), in-order dependency
stalls, branch recovery, and exposed memory latency.  Explains, for
example, *why* the Pentium 4 is 2.6x slower than the i7 clock-for-clock
(§3.5) — its base CPI and branch refills dominate — and why mcf looks
identical on every machine (memory stalls swamp the core).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.execution.cpi import CpiBreakdown, thread_cpi
from repro.hardware.config import Configuration, stock
from repro.hardware.processor import ProcessorSpec
from repro.native.binary import binary_for
from repro.native.compiler import Toolchain
from repro.reporting.bars import StackSegment, stacked_bars
from repro.workloads.benchmark import Benchmark


@dataclass(frozen=True)
class CpiStack:
    """One (benchmark, machine) CPI decomposition."""

    benchmark: str
    processor: str
    breakdown: CpiBreakdown

    @property
    def segments(self) -> tuple[StackSegment, ...]:
        b = self.breakdown
        return (
            StackSegment("issue", b.base, "="),
            StackSegment("dependency", b.dependency, "d"),
            StackSegment("branch", b.branch, "b"),
            StackSegment("memory", b.memory, "m"),
        )


def stack_for(
    benchmark: Benchmark,
    config: Configuration,
) -> CpiStack:
    """Single-thread CPI stack for a benchmark on a configuration."""
    toolchain = (
        Toolchain.JIT if benchmark.managed else binary_for(benchmark).toolchain
    )
    breakdown = thread_cpi(
        benchmark.character, config, toolchain, config.clock
    )
    return CpiStack(
        benchmark=benchmark.name,
        processor=config.spec.label,
        breakdown=breakdown,
    )


def across_machines(
    benchmark: Benchmark, specs: Sequence[ProcessorSpec]
) -> list[CpiStack]:
    """One benchmark's CPI stack on each machine (stock configuration)."""
    return [stack_for(benchmark, stock(spec)) for spec in specs]


def render(stacks: Sequence[CpiStack], width: int = 46) -> str:
    """Stacked-bar rendering, one row per stack."""
    rows = {
        f"{s.processor} / {s.benchmark}": s.segments for s in stacks
    }
    return stacked_bars(rows, width=width)
