"""How well does TDP predict measured power?  (§2.5's question, quantified.)

The paper argues TDP "loosely correlates with power consumption, but it
does not provide a good estimate" for maxima, cross-processor comparison,
or per-benchmark power.  This module fits measured power against TDP and
reports the regression alongside the per-machine prediction errors, so
the looseness has a number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.statistics import LinearFit, linear_fit, mean
from repro.core.study import Study
from repro.experiments.base import resolve_study
from repro.hardware.catalog import PROCESSORS
from repro.hardware.config import stock


@dataclass(frozen=True)
class TdpRegression:
    """Measured mean power regressed on TDP across the eight machines."""

    fit: LinearFit
    #: Per-machine (label, tdp, mean measured watts, tdp / mean ratio).
    machines: tuple[tuple[str, float, float, float], ...]

    @property
    def r_squared(self) -> float:
        return self.fit.r_squared

    @property
    def worst_overestimate(self) -> float:
        """Largest TDP-to-measured ratio (how wrong 'power = TDP' gets)."""
        return max(ratio for _, _, _, ratio in self.machines)

    @property
    def ratio_spread(self) -> float:
        """Max/min of TDP-to-measured ratios: 1.0 would mean TDP ranks
        machines perfectly; the measured spread shows it does not."""
        ratios = [ratio for _, _, _, ratio in self.machines]
        return max(ratios) / min(ratios)


def regress(study: Optional[Study] = None) -> TdpRegression:
    """Fit mean measured power against TDP over the stock machines."""
    study = resolve_study(study)
    tdps: list[float] = []
    powers: list[float] = []
    machines = []
    for spec in PROCESSORS:
        watts = mean(list(study.run_config(stock(spec)).values("watts").values()))
        tdps.append(float(spec.tdp_w))
        powers.append(watts)
        machines.append(
            (spec.label, float(spec.tdp_w), watts, float(spec.tdp_w) / watts)
        )
    return TdpRegression(
        fit=linear_fit(tdps, powers), machines=tuple(machines)
    )
