"""Power attribution: which structure burns the watts.

The paper's closing recommendation is structure-specific power meters
"for cores, caches, and other structures".  The model, of course, *has*
that visibility: this module attributes a run's average package power to
uncore, idle-core, and active-core components (time-weighted over
phases, including the Turbo multiplier), which is exactly the view the
authors ask manufacturers to expose.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.execution.engine import Execution
from repro.hardware.power import package_power
from repro.reporting.bars import StackSegment, stacked_bars


@dataclass(frozen=True)
class PowerAttribution:
    """Average package power split by structure (watts)."""

    uncore: float
    core_idle: float
    core_active: float

    @property
    def total(self) -> float:
        return self.uncore + self.core_idle + self.core_active

    def share(self, component: str) -> float:
        value = getattr(self, component)
        return value / self.total if self.total else 0.0

    @property
    def segments(self) -> tuple[StackSegment, ...]:
        return (
            StackSegment("uncore", self.uncore, "u"),
            StackSegment("idle cores", self.core_idle, "i"),
            StackSegment("active cores", self.core_active, "a"),
        )


def attribute(execution: Execution) -> PowerAttribution:
    """Time-weighted structure attribution of one run's power.

    The Turbo multiplier is folded proportionally into each component, so
    the parts sum to the execution's average power.
    """
    total_seconds = execution.seconds.value
    uncore = idle = active = 0.0
    for phase in execution.phases:
        breakdown = package_power(
            execution.config,
            busy_cores=min(phase.busy_cores, execution.config.active_cores),
            core_utilisation=phase.utilisation,
            activity=execution.benchmark.character.activity,
            turbo=phase.turbo,
        )
        # The reconstruction's *shares* are exact; rescale to the phase's
        # recorded power so per-run effects folded into the active
        # component (SMT overhead, run-to-run activity) are carried too.
        reconstructed = breakdown.total.value
        scale = phase.power.value / reconstructed if reconstructed else 0.0
        weight = phase.seconds / total_seconds
        boost = breakdown.turbo_multiplier * scale
        uncore += breakdown.uncore.value * boost * weight
        idle += breakdown.core_idle.value * boost * weight
        active += breakdown.core_active.value * boost * weight
    return PowerAttribution(uncore=uncore, core_idle=idle, core_active=active)


def render(attributions: dict[str, PowerAttribution], width: int = 46) -> str:
    """Stacked-bar rendering, one row per labelled attribution."""
    return stacked_bars(
        {label: a.segments for label, a in attributions.items()}, width=width
    )
