"""Analysis drill-downs behind the paper's numbers.

* :mod:`repro.analysis.cpi_stacks` — cycles-per-instruction decomposition
  per (benchmark, machine);
* :mod:`repro.analysis.power_attribution` — per-structure power split,
  the view the paper asks manufacturers to expose;
* :mod:`repro.analysis.tdp_regression` — how loosely TDP tracks power.
"""

from repro.analysis.cpi_stacks import CpiStack, across_machines, stack_for
from repro.analysis.power_attribution import PowerAttribution, attribute
from repro.analysis.tdp_regression import TdpRegression, regress

__all__ = [
    "CpiStack",
    "PowerAttribution",
    "TdpRegression",
    "across_machines",
    "attribute",
    "regress",
    "stack_for",
]
