"""Token-bucket rate limiting for the campaign server.

Classic per-client token buckets: each client owns a bucket of
``burst`` tokens refilled at ``rate`` tokens/second; a request takes one
token or is rejected with the exact number of seconds until the next
token exists — which the server surfaces as ``Retry-After``, so a
well-behaved client backs off by precisely the right amount instead of
hammering the admission queue.

Time is injected (``clock``) rather than read ambiently, for the same
reason everything else in this library is seeded: tests drive the bucket
with a fake clock and get deterministic admit/reject sequences.
"""

from __future__ import annotations

import time
from typing import Callable, Optional


class TokenBucket:
    """One client's budget: ``burst`` capacity, ``rate`` tokens/second."""

    __slots__ = ("rate", "burst", "_tokens", "_updated")

    def __init__(self, rate: float, burst: float, now: float = 0.0) -> None:
        if rate <= 0 or burst < 1:
            raise ValueError(
                f"need rate > 0 and burst >= 1, got rate={rate}, burst={burst}"
            )
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._updated = float(now)

    @property
    def tokens(self) -> float:
        return self._tokens

    def try_take(self, now: float) -> tuple[bool, float]:
        """Take one token at time ``now``.

        Returns ``(admitted, retry_after_s)``; ``retry_after_s`` is 0 on
        admission, else the seconds until one full token has refilled.
        """
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self._tokens) / self.rate


class ClientRateLimiter:
    """Per-client token buckets with a bounded client table.

    ``rate=None`` disables limiting entirely (every request admitted).
    The client table is LRU-bounded at ``max_clients`` so an open server
    cannot be grown without bound by spoofed client ids; evicting a
    client forgets its debt, which errs on the side of admission.
    """

    def __init__(
        self,
        rate: Optional[float],
        burst: float = 5.0,
        max_clients: int = 1024,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_clients < 1:
            raise ValueError(f"need max_clients >= 1, got {max_clients}")
        self._rate = rate
        self._burst = burst
        self._max_clients = max_clients
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}

    @property
    def enabled(self) -> bool:
        return self._rate is not None

    def admit(self, client: str) -> tuple[bool, float]:
        """``(admitted, retry_after_s)`` for one request from ``client``."""
        if self._rate is None:
            return True, 0.0
        now = self._clock()
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = TokenBucket(self._rate, self._burst, now=now)
            self._buckets[client] = bucket
            while len(self._buckets) > self._max_clients:
                del self._buckets[next(iter(self._buckets))]
        else:
            # Refresh LRU recency (dict order doubles as recency order).
            self._buckets[client] = self._buckets.pop(client)
        return bucket.try_take(now)
