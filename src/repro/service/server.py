"""The campaign server: measurement-as-a-service over HTTP.

A deliberately small asyncio HTTP/1.1 server — stdlib only, one handler
per connection, ``Connection: close`` — that exposes the measurement
campaign as an API:

========================  ====================================================
``POST /measure``         measure one (benchmark, configuration); the response
                          body is byte-for-byte ``json.dumps(result.as_record())``
``GET /results``          stored records, filterable by benchmark / config
``GET /pareto``           energy/performance points per stored configuration,
                          with the Pareto-efficient subset flagged
``GET /healthz``          liveness, queue depth, in-flight jobs, campaign health
``GET /metrics``          Prometheus exposition of the whole registry
``GET /slo``              latency quantiles, availability, error-budget burn
``GET /trace/<id>``       the span tree of one served ``/measure`` request
                          (``<id>`` is the response's ``X-Request-Id``)
========================  ====================================================

Requests are traced end to end: each ``POST /measure`` runs under an
``http.request`` root span (continuing the caller's trace when a W3C
``traceparent`` header is sent), spans cover admission → coalesce →
schedule → batch → worker chunks → engine → store, and the finished
tree is archived per request for ``GET /trace/<request_id>``.  Tracing
rides *alongside* measurement — it never touches the measured floats, so
traced responses remain byte-identical to sequential ``Study.run``.

The interesting work lives below the routes: requests funnel into a
:class:`~repro.service.scheduler.CampaignScheduler` that coalesces
identical concurrent measurements, applies admission control (bounded
queue → ``429`` + ``Retry-After``), and batches arrivals through the
study's parallel executor.  Because measurements are pure and all noise
is seeded by site, the response to a coalesced, parallel, or
warm-started request is byte-identical to a sequential ``Study.run`` —
the server is a cache in front of physics, not a new source of truth.

On SIGTERM/SIGINT the server drains: it stops admitting measurements
(``503`` for new ``POST``s), finishes every in-flight job, flushes the
result store, and prints a final health report.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Mapping, Optional, TextIO, Union
from urllib.parse import parse_qsl, urlsplit

from repro.core.aggregation import group_means, weighted_average
from repro.core.pareto import TradeoffPoint, pareto_efficient
from repro.core.study import Study
from repro.faults.plan import (
    FaultPlan,
    demo_plan,
    fail_stop_plan,
    worker_chaos_plan,
)
from repro.hardware.catalog import processor
from repro.hardware.config import UnsupportedConfigurationError, stock
from repro.hardware.configurations import all_configurations
from repro.obs.distributed import (
    REQUEST_ID_HEADER,
    TraceStore,
    build_span_tree,
    format_traceparent,
    new_request_id,
    new_trace_id,
    orphan_parent_ids,
    parse_traceparent,
)
from repro.obs.export import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.obs.metrics import default_registry
from repro.obs.slo import (
    REQUEST_SECONDS,
    SloConfig,
    observe_stage,
    parse_slo,
    slo_report,
)
from repro.obs.tracing import default_tracer
from repro.service.ratelimit import ClientRateLimiter
from repro.service.scheduler import (
    CampaignScheduler,
    Draining,
    InvalidPlan,
    MeasurementFailed,
    Saturated,
)
from repro.service.store import ResultStore
from repro.workloads.catalog import BENCHMARKS, benchmark

_REGISTRY = default_registry()
_REQUESTS = _REGISTRY.counter(
    "repro_service_requests_total",
    "HTTP requests served, by route and status code",
)
_RATELIMITED = _REGISTRY.counter(
    "repro_service_ratelimited_total",
    "Measurement requests refused by per-client rate limiting",
)

#: Maximum accepted request body (a measure request is a few hundred bytes).
MAX_BODY_BYTES = 1 << 20
#: Per-read timeout; a stalled client cannot pin a connection forever.
IO_TIMEOUT_S = 30.0

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass(frozen=True, slots=True)
class Request:
    """One parsed HTTP request, as the route handlers see it."""

    method: str
    path: str
    query: Mapping[str, str]
    headers: Mapping[str, str]  # keys lower-cased
    body: bytes
    peer: str

    @property
    def client_id(self) -> str:
        """Rate-limit identity: ``X-Client-Id`` if sent, else the peer."""
        return self.headers.get("x-client-id", "").strip() or self.peer


@dataclass(frozen=True, slots=True)
class Response:
    status: int
    body: bytes
    content_type: str = "application/json"
    headers: tuple[tuple[str, str], ...] = field(default=())

    def encode(self) -> bytes:
        reason = _REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            "Connection: close",
        ]
        lines.extend(f"{name}: {value}" for name, value in self.headers)
        head = "\r\n".join(lines) + "\r\n\r\n"
        return head.encode("latin-1") + self.body


def _json_response(
    status: int,
    payload: object,
    headers: tuple[tuple[str, str], ...] = (),
) -> Response:
    return Response(
        status, json.dumps(payload).encode("utf-8"), headers=headers
    )


def _error(status: int, message: str, **extra: object) -> Response:
    headers: tuple[tuple[str, str], ...] = ()
    retry_after = extra.get("retry_after_s")
    if retry_after is not None:
        # Retry-After is integer seconds; round up so clients never
        # return a moment before a token exists.
        headers = (("Retry-After", str(max(1, int(-(-float(retry_after) // 1))))),)
    return _json_response(status, {"error": message, **extra}, headers=headers)


class BadRequest(ValueError):
    """A client error the measure handler converts to a 400."""


class CampaignServer:
    """The wired-together service: store → study → scheduler → routes.

    ``store`` is a :class:`ResultStore`, a path, or ``None`` (a private
    in-memory store, so ``/results`` and ``/pareto`` behave uniformly).
    ``fingerprint`` (see :func:`repro.core.study.run_fingerprint`) binds
    a persistent store to one set of run parameters; a mismatched store
    raises :class:`~repro.service.store.StoreError` at startup rather
    than serving mixed data.  ``rate``/``burst`` configure per-client
    token buckets on ``POST /measure`` (``rate=None`` disables).

    ``slo`` declares targets for ``GET /slo`` — an :class:`SloConfig`
    or a spec string like ``"p99=250ms,avail=99.9"`` (``ValueError`` on
    a malformed spec).  ``event_log`` appends one JSON line per served
    ``/measure`` correlating request id ↔ trace id ↔ store row; a path
    is opened (and closed at shutdown) by the server, an open text
    stream is borrowed.  ``trace_requests=False`` turns request tracing
    off entirely; ``trace_capacity`` bounds how many finished request
    traces ``GET /trace/<id>`` can still serve.
    """

    def __init__(
        self,
        study: Optional[Study] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        store: Union[ResultStore, Path, str, None] = None,
        fingerprint: Optional[Mapping[str, object]] = None,
        max_pending: int = 64,
        jobs: Optional[Union[int, str]] = None,
        rate: Optional[float] = None,
        burst: float = 5.0,
        slo: Union[SloConfig, str, None] = None,
        event_log: Union[Path, str, TextIO, None] = None,
        trace_requests: bool = True,
        trace_capacity: int = 256,
        drain_timeout: Optional[float] = None,
    ) -> None:
        self._study = study if study is not None else Study()
        self._host = host
        self._port = port
        if isinstance(store, ResultStore):
            self._store, self._owns_store = store, False
        else:
            self._store = ResultStore(store if store is not None else ":memory:")
            self._owns_store = True
        self._fingerprint = fingerprint
        self._drain_timeout = drain_timeout
        self._scheduler = CampaignScheduler(
            self._study, store=self._store, max_pending=max_pending, jobs=jobs
        )
        self._limiter = ClientRateLimiter(rate, burst=burst)
        self._configs_by_key = {c.key: c for c in all_configurations()}
        self._server: Optional[asyncio.base_events.Server] = None
        self._started_monotonic = 0.0
        self.restored = 0  # records warm-started from the store
        self._slo = parse_slo(slo) if isinstance(slo, str) else slo
        self._trace_requests = trace_requests
        self._traces = TraceStore(capacity=trace_capacity)
        self._tracer_was_enabled = False
        if event_log is None or hasattr(event_log, "write"):
            self._event_log: Optional[TextIO] = event_log  # type: ignore[assignment]
            self._owns_event_log = False
        else:
            self._event_log = open(event_log, "a", encoding="utf-8")
            self._owns_event_log = True

    # -- lifecycle -------------------------------------------------------------

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        return self._port

    @property
    def store(self) -> ResultStore:
        return self._store

    @property
    def scheduler(self) -> CampaignScheduler:
        return self._scheduler

    async def start(self) -> None:
        """Bind the store, warm-start the study, and open the socket."""
        if self._fingerprint is not None:
            self._store.check_fingerprint(self._fingerprint)
        if self._trace_requests:
            tracer = default_tracer()
            self._tracer_was_enabled = tracer.is_enabled
            tracer.enable()
        self.restored = self._store.warm_start(self._study)
        await self._scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        self._port = self._server.sockets[0].getsockname()[1]
        self._started_monotonic = time.monotonic()

    async def shutdown(self) -> dict[str, object]:
        """Graceful drain: finish in-flight jobs, flush, close, report.

        Bounded by the server's ``drain_timeout`` (``None`` waits for
        in-flight measurements indefinitely, the pre-PR-7 behaviour)."""
        summary = await self._scheduler.drain(deadline_s=self._drain_timeout)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._owns_store:
            self._store.close()
        if self._trace_requests and not self._tracer_was_enabled:
            default_tracer().disable()
        if self._owns_event_log and self._event_log is not None:
            self._event_log.close()
            self._event_log = None
        return {"restored": self.restored, **summary}

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await self._read_request(reader, writer)
                response = await self.handle(request)
            except BadRequest as exc:
                response = _error(400, str(exc))
            except (asyncio.TimeoutError, asyncio.IncompleteReadError, ValueError):
                response = _error(400, "malformed request")
            except Exception as exc:  # noqa: BLE001 - last-resort 500
                response = _error(500, f"internal error: {exc}")
            writer.write(response.encode())
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass  # the client went away; nothing left to tell it
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> Request:
        line = await asyncio.wait_for(reader.readline(), IO_TIMEOUT_S)
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise BadRequest("malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), IO_TIMEOUT_S)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length < 0 or length > MAX_BODY_BYTES:
            raise BadRequest(f"body too large (limit {MAX_BODY_BYTES} bytes)")
        body = (
            await asyncio.wait_for(reader.readexactly(length), IO_TIMEOUT_S)
            if length
            else b""
        )
        split = urlsplit(target)
        peername = writer.get_extra_info("peername")
        peer = peername[0] if isinstance(peername, tuple) else "unknown"
        return Request(
            method=method,
            path=split.path or "/",
            query=dict(parse_qsl(split.query)),
            headers=headers,
            body=body,
            peer=peer,
        )

    # -- routing ---------------------------------------------------------------

    def _route(self, request: Request):
        """Resolve a path to its canonical route name and handler.

        The canonical name is what metric labels carry: ``/trace/<id>``
        collapses to ``/trace`` so the label space stays bounded no
        matter how many request ids clients probe."""
        routes = {
            "/measure": ("POST", self._measure_route),
            "/results": ("GET", self._results),
            "/pareto": ("GET", self._pareto),
            "/healthz": ("GET", self._healthz),
            "/metrics": ("GET", self._metrics),
            "/slo": ("GET", self._slo_route),
            "/trace": ("GET", self._trace),
        }
        if request.path == "/trace" or request.path.startswith("/trace/"):
            return "/trace", routes["/trace"]
        return request.path, routes.get(request.path)

    async def handle(self, request: Request) -> Response:
        """Route one request; usable directly in tests (no sockets)."""
        route, entry = self._route(request)
        started = time.perf_counter()
        if entry is None:
            response = _error(404, f"no route {request.path}")
        elif request.method != entry[0]:
            response = _error(405, f"{request.path} accepts {entry[0]} only")
        else:
            response = await entry[1](request)
        label = route if entry is not None else "unknown"
        REQUEST_SECONDS.labels(route=label).observe(
            time.perf_counter() - started
        )
        _REQUESTS.labels(route=label, status=str(response.status)).inc()
        return response

    # -- routes ----------------------------------------------------------------

    async def _measure_route(self, request: Request) -> Response:
        """``POST /measure``: the traced wrapper around :meth:`_measure`.

        Every measure request gets a request id and (when tracing is
        armed) an ``http.request`` root span.  A valid W3C
        ``traceparent`` header continues the caller's trace; a malformed
        one is ignored per spec (fresh trace, never an error).  After
        the response is built, the finished span subtree is archived
        under the request id for ``GET /trace/<id>`` and pruned from the
        live tracer so a long-running server's span list stays bounded.
        """
        request_id = new_request_id()
        tracer = default_tracer()
        ctx: dict[str, object] = {}
        if not (self._trace_requests and tracer.is_enabled):
            response = await self._measure(request, ctx)
            self._log_event(request, response, request_id, None, ctx)
            return replace(
                response,
                headers=response.headers + ((REQUEST_ID_HEADER, request_id),),
            )
        remote = parse_traceparent(request.headers.get("traceparent", ""))
        trace_id = remote.trace_id if remote is not None else new_trace_id()
        with tracer.span(
            "http.request",
            method=request.method,
            route="/measure",
            request_id=request_id,
            trace_id=trace_id,
            remote_parent=remote.span_id if remote is not None else None,
        ) as root:
            response = await self._measure(request, ctx)
            root.set_attribute("status", response.status)
        # Archive the Span objects as-is: dict conversion happens on the
        # cold /trace read path, keeping it off the per-request one.
        spans = tracer.detach_subtree(root.span_id)
        self._traces.put(
            request_id,
            {
                "request_id": request_id,
                "trace_id": trace_id,
                "spans": spans,
            },
        )
        self._log_event(request, response, request_id, trace_id, ctx)
        return replace(
            response,
            headers=response.headers
            + (
                (REQUEST_ID_HEADER, request_id),
                ("traceparent", format_traceparent(trace_id, root.span_id)),
            ),
        )

    def _log_event(
        self,
        request: Request,
        response: Response,
        request_id: str,
        trace_id: Optional[str],
        ctx: Optional[dict[str, object]],
    ) -> None:
        """One structured JSON line per served measure request: the join
        key between the HTTP exchange (request id), the span tree (trace
        id), and the durable record (store rowid)."""
        if self._event_log is None:
            return
        ctx = ctx or {}
        bench = ctx.get("benchmark")
        config = ctx.get("config")
        event = {
            "ts": round(time.time(), 6),
            "event": "measure",
            "request_id": request_id,
            "trace_id": trace_id,
            "status": response.status,
            "benchmark": bench,
            "config": config,
            "plan": ctx.get("plan"),
            "store_row": (
                self._store.rowid(str(bench), str(config))
                if response.status == 200 and bench and config
                else None
            ),
        }
        try:
            self._event_log.write(json.dumps(event) + "\n")
            self._event_log.flush()
        except (OSError, ValueError):  # pragma: no cover - log never fatal
            pass

    async def _measure(
        self, request: Request, ctx: Optional[dict[str, object]] = None
    ) -> Response:
        tracer = default_tracer()
        admission_started = time.perf_counter()
        with tracer.span("service.admission", client=request.client_id):
            try:
                admitted, retry_after_s = self._limiter.admit(request.client_id)
                if not admitted:
                    _RATELIMITED.inc()
                    return _error(
                        429,
                        "rate limit exceeded",
                        retry_after_s=round(retry_after_s, 3),
                    )
                try:
                    bench, config, plan = self._parse_measure_body(request.body)
                except BadRequest as exc:
                    return _error(400, str(exc))
            finally:
                observe_stage(
                    "admission", time.perf_counter() - admission_started
                )
        if ctx is not None:
            ctx["benchmark"] = bench.name
            ctx["config"] = config.key
            ctx["plan"] = plan.fingerprint if plan is not None else None
        try:
            result = await self._scheduler.submit(bench, config, plan)
        except Draining:
            return _error(503, "server is draining; no new measurements")
        except Saturated as exc:
            return _error(
                429,
                "measurement queue is full",
                retry_after_s=exc.retry_after_s,
            )
        except InvalidPlan as exc:
            return _error(400, str(exc))
        except MeasurementFailed as exc:
            return _error(500, f"measurement failed: {exc}")
        # The byte-identity contract: exactly json.dumps(as_record()),
        # the same bytes a sequential Study.run record serialises to.
        return Response(200, json.dumps(result.as_record()).encode("utf-8"))

    def _parse_measure_body(self, body: bytes):
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, ValueError) as exc:
            raise BadRequest(f"body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise BadRequest("body must be a JSON object")
        name = payload.get("benchmark")
        if not isinstance(name, str):
            raise BadRequest("missing required field 'benchmark'")
        try:
            bench = benchmark(name)
        except KeyError as exc:
            raise BadRequest(f"unknown benchmark {name!r}") from exc
        config = self._parse_configuration(payload)
        plan = _parse_plan(payload.get("inject"))
        iterations = payload.get("iterations")
        if iterations is not None:
            # Iteration counts are pinned by the run fingerprint (the
            # protocol times the server's invocation scale): honouring a
            # per-request count would produce records other clients'
            # cached/coalesced responses could never match.  Accept only
            # the count this server will actually run.
            planned = self._study.scaled_invocations(bench)
            try:
                requested = int(iterations)  # type: ignore[arg-type]
            except (TypeError, ValueError) as exc:
                raise BadRequest("'iterations' must be an integer") from exc
            if requested != planned:
                raise BadRequest(
                    f"iterations are fixed by the measurement protocol: "
                    f"this server runs {planned} for {name!r} (launch with "
                    f"a different --quick/scale to change it)"
                )
        return bench, config, plan

    def _parse_configuration(self, payload: Mapping[str, object]):
        key = payload.get("config")
        if key is not None:
            config = self._configs_by_key.get(str(key))
            if config is None:
                raise BadRequest(f"unknown configuration key {key!r}")
            return config
        proc = payload.get("processor")
        if not isinstance(proc, str):
            raise BadRequest("need 'config' (a configuration key) or 'processor'")
        try:
            config = stock(processor(proc))
            cores = payload.get("cores")
            if cores is not None:
                config = config.with_cores(int(cores))  # type: ignore[arg-type]
            threads = payload.get("threads")
            if threads is not None:
                config = (
                    config.without_smt()
                    if int(threads) == 1  # type: ignore[arg-type]
                    else config.with_smt()
                )
            clock = payload.get("clock")
            if clock is not None:
                config = config.at_clock(float(clock))  # type: ignore[arg-type]
            if payload.get("turbo") is False:
                config = config.without_turbo()
        except KeyError as exc:
            raise BadRequest(f"unknown processor {proc!r}") from exc
        except (UnsupportedConfigurationError, TypeError, ValueError) as exc:
            raise BadRequest(f"unsupported configuration: {exc}") from exc
        return config

    async def _results(self, request: Request) -> Response:
        records = self._store.records(
            benchmark=request.query.get("benchmark"),
            config=request.query.get("config"),
        )
        return _json_response(
            200,
            {
                "count": len(records),
                "results": [r.as_record() for r in records],
            },
        )

    async def _pareto(self, request: Request) -> Response:
        """Energy/performance points from *stored* records only — a GET
        never triggers measurement; POST the missing cells first."""
        by_config: dict[str, list] = {}
        for record in self._store.records():
            by_config.setdefault(record.config_key, []).append(record)
        points = []
        for key in sorted(by_config):
            rows = by_config[key]
            speed = group_means(
                {r.benchmark_name: r.speedup for r in rows}, BENCHMARKS
            )
            energy = group_means(
                {r.benchmark_name: r.normalized_energy for r in rows}, BENCHMARKS
            )
            points.append(
                TradeoffPoint(
                    key=key,
                    performance=weighted_average(speed),
                    energy=weighted_average(energy),
                )
            )
        efficient = {p.key for p in pareto_efficient(points)}
        return _json_response(
            200,
            {
                "count": len(points),
                "points": [
                    {
                        "configuration": p.key,
                        "performance": p.performance,
                        "normalized_energy": p.energy,
                        "efficient": p.key in efficient,
                    }
                    for p in points
                ],
            },
        )

    async def _healthz(self, request: Request) -> Response:
        draining = self._scheduler.draining
        payload = self.health()
        return _json_response(503 if draining else 200, payload)

    def health(self) -> dict[str, object]:
        """The health snapshot ``/healthz`` serves (and drain prints)."""
        return {
            "status": "draining" if self._scheduler.draining else "ok",
            "uptime_s": round(time.monotonic() - self._started_monotonic, 3),
            "pending_jobs": self._scheduler.pending,
            "completed": self._scheduler.completed,
            "coalesced": self._scheduler.coalesced,
            "rejected": self._scheduler.rejected,
            "failed": self._scheduler.failed,
            "cached_pairs": self._study.cached_pairs,
            "quarantined": len(self._study.quarantined),
            "store_records": len(self._store),
            "restored": self.restored,
            "in_flight": self._scheduler.inflight_snapshot(),
            "fleet": self._study.fleet_snapshot(),
        }

    async def _metrics(self, request: Request) -> Response:
        return Response(
            200,
            render_prometheus().encode("utf-8"),
            content_type=PROMETHEUS_CONTENT_TYPE,
        )

    async def _slo_route(self, request: Request) -> Response:
        """Latency quantiles, availability, and error-budget burn against
        the declared targets (or observations only when none are set)."""
        return _json_response(200, slo_report(self._slo))

    async def _trace(self, request: Request) -> Response:
        """``GET /trace`` lists archived request ids; ``GET /trace/<id>``
        serves one request's span tree (404 for unknown/evicted ids)."""
        if request.path in ("/trace", "/trace/"):
            ids = self._traces.request_ids()
            return _json_response(
                200, {"count": len(ids), "request_ids": ids}
            )
        request_id = request.path[len("/trace/"):]
        payload = self._traces.get(request_id)
        if payload is None:
            return _error(404, f"no trace for request id {request_id!r}")
        spans = [span.as_dict() for span in payload["spans"]]
        orphans = sorted(orphan_parent_ids(spans))
        return _json_response(
            200,
            {
                "request_id": payload["request_id"],
                "trace_id": payload["trace_id"],
                "span_count": len(spans),
                "orphans": orphans,
                "root": build_span_tree(spans),
                "spans": spans,
            },
        )


def _parse_plan(raw: object) -> Optional[FaultPlan]:
    """Per-request fault plan: a canned name or an inline plan object.

    File paths are deliberately *not* accepted here — unlike the CLI's
    ``--inject``, this value crosses a network boundary and must not
    reach the filesystem.
    """
    if raw is None:
        return None
    if isinstance(raw, str):
        if raw == "ci":
            return fail_stop_plan()
        if raw == "demo":
            return demo_plan()
        if raw == "chaos":
            return worker_chaos_plan()
        raise BadRequest(
            f"unknown plan {raw!r}: use 'ci', 'demo', 'chaos', or an "
            f"inline plan object"
        )
    if isinstance(raw, dict):
        try:
            return FaultPlan.from_dict(raw)
        except ValueError as exc:
            raise BadRequest(f"invalid fault plan: {exc}") from exc
    raise BadRequest("'inject' must be a plan name or a plan object")


async def serve_async(
    server: CampaignServer, stream: TextIO = sys.stderr
) -> dict[str, object]:
    """Run ``server`` until SIGTERM/SIGINT, then drain and report."""
    await server.start()
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    installed = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
            installed.append(sig)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # platform without signal support; Ctrl-C still raises
    print(
        f"serving on http://{server.host}:{server.port} "
        f"(store: {server.store.path}, warm-started {server.restored} records)",
        file=stream,
        flush=True,
    )
    try:
        await stop.wait()
    finally:
        for sig in installed:
            loop.remove_signal_handler(sig)
    print("draining: finishing in-flight measurements ...", file=stream, flush=True)
    report = await server.shutdown()
    print(
        "drained: "
        + ", ".join(f"{key}={value}" for key, value in report.items()),
        file=stream,
        flush=True,
    )
    return report


def serve(server: CampaignServer, stream: TextIO = sys.stderr) -> dict[str, object]:
    """Blocking entry point the CLI uses."""
    return asyncio.run(serve_async(server, stream=stream))
