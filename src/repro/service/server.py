"""The campaign server: measurement-as-a-service over HTTP.

A deliberately small asyncio HTTP/1.1 server — stdlib only, one handler
per connection, ``Connection: close`` — that exposes the measurement
campaign as an API:

========================  ====================================================
``POST /measure``         measure one (benchmark, configuration); the response
                          body is byte-for-byte ``json.dumps(result.as_record())``
``GET /results``          stored records, filterable by benchmark / config
``GET /pareto``           energy/performance points per stored configuration,
                          with the Pareto-efficient subset flagged
``GET /healthz``          liveness, queue depth, in-flight jobs, campaign health
``GET /metrics``          Prometheus exposition of the whole registry
``GET /slo``              latency quantiles, availability, error-budget burn
``GET /trace/<id>``       the span tree of one served ``/measure`` request
                          (``<id>`` is the response's ``X-Request-Id``)
========================  ====================================================

Requests are traced end to end: each ``POST /measure`` runs under an
``http.request`` root span (continuing the caller's trace when a W3C
``traceparent`` header is sent), spans cover admission → coalesce →
schedule → batch → worker chunks → engine → store, and the finished
tree is archived per request for ``GET /trace/<request_id>``.  Tracing
rides *alongside* measurement — it never touches the measured floats, so
traced responses remain byte-identical to sequential ``Study.run``.

The interesting work lives below the routes: requests funnel into a
:class:`~repro.service.scheduler.CampaignScheduler` that coalesces
identical concurrent measurements, applies admission control (bounded
queue → ``429`` + ``Retry-After``), and batches arrivals through the
study's parallel executor.  Because measurements are pure and all noise
is seeded by site, the response to a coalesced, parallel, or
warm-started request is byte-identical to a sequential ``Study.run`` —
the server is a cache in front of physics, not a new source of truth.

On SIGTERM/SIGINT the server drains: it stops admitting measurements
(``503`` for new ``POST``s), finishes every in-flight job, flushes the
result store, and prints a final health report.

The coordinator itself is crash-restartable (PR 8): every admitted
``POST /measure`` is journalled durably *before* scheduling (keyed by
the client's ``Idempotency-Key`` header or the request id), completions
are marked in the same transaction that persists records, and a restart
with ``recover=True`` replays unfinished entries byte-identically.
Clients may bound their wait with an ``X-Deadline-Ms`` header; expired
work is shed before dispatch with a ``504`` and counted in
``repro_requests_shed_total``.  See docs/robustness.md ("coordinator
recovery") for the journal lifecycle and the exactly-once argument.
"""

from __future__ import annotations

import asyncio
import errno
import json
import signal
import sys
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Mapping, Optional, TextIO, Union
from urllib.parse import parse_qsl, urlsplit

from repro.core.aggregation import group_means, weighted_average
from repro.core.pareto import TradeoffPoint, pareto_efficient
from repro.core.study import Study
from repro.execution.kernels import kernel_stats
from repro.faults.injector import coordinator_fault_point
from repro.faults.plan import (
    FaultPlan,
    demo_plan,
    fail_stop_plan,
    worker_chaos_plan,
)
from repro.hardware.catalog import processor
from repro.hardware.config import UnsupportedConfigurationError, stock
from repro.hardware.configurations import all_configurations
from repro.obs.distributed import (
    REQUEST_ID_HEADER,
    TraceStore,
    build_span_tree,
    format_traceparent,
    new_request_id,
    new_trace_id,
    orphan_parent_ids,
    parse_traceparent,
)
from repro.obs.export import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.obs.metrics import default_registry
from repro.obs.slo import (
    REQUEST_SECONDS,
    SloConfig,
    observe_stage,
    parse_slo,
    slo_report,
)
from repro.obs.tracing import default_tracer
from repro.service.ratelimit import ClientRateLimiter
from repro.service.scheduler import (
    CampaignScheduler,
    DeadlineExceeded,
    Draining,
    InvalidPlan,
    MeasurementFailed,
    Saturated,
    SchedulerError,
)
from repro.service.store import JournalConflict, JournalEntry, ResultStore
from repro.workloads.catalog import BENCHMARKS, benchmark

_REGISTRY = default_registry()
_REQUESTS = _REGISTRY.counter(
    "repro_service_requests_total",
    "HTTP requests served, by route and status code",
)
_RATELIMITED = _REGISTRY.counter(
    "repro_service_ratelimited_total",
    "Measurement requests refused by per-client rate limiting",
)
_IDEMPOTENT_REPLAYS = _REGISTRY.counter(
    "repro_idempotent_replays_total",
    "Measure requests answered from the journal+store without any "
    "engine work (their idempotency key was already done)",
)
_RECOVERY_REPLAYED = _REGISTRY.counter(
    "repro_recovery_replayed_total",
    "Journal entries found pending at --recover startup and resubmitted",
)
_RECOVERY_COMPLETED = _REGISTRY.counter(
    "repro_recovery_completed_total",
    "Recovery replays that completed with a durable result",
)
_RECOVERY_FAILED = _REGISTRY.counter(
    "repro_recovery_failed_total",
    "Recovery replays that could not be completed (unresolvable or "
    "measurement failure)",
)

#: Maximum accepted request body (a measure request is a few hundred bytes).
MAX_BODY_BYTES = 1 << 20
#: Per-read timeout; a stalled client cannot pin a connection forever.
IO_TIMEOUT_S = 30.0
#: Idempotency keys are client-chosen strings; bound them so the journal
#: cannot be grown by a single pathological header.
MAX_IDEMPOTENCY_KEY_CHARS = 128

#: Bind retries on EADDRINUSE: rapid kill -> recover cycles can race the
#: kernel's release of the dead server's listening socket, so the new
#: incarnation backs off briefly instead of flaking.  6 attempts with
#: doubling backoff from 50 ms waits ~1.6 s in total before giving up.
BIND_ATTEMPTS = 6
BIND_BACKOFF_S = 0.05

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass(frozen=True, slots=True)
class Request:
    """One parsed HTTP request, as the route handlers see it."""

    method: str
    path: str
    query: Mapping[str, str]
    headers: Mapping[str, str]  # keys lower-cased
    body: bytes
    peer: str

    @property
    def client_id(self) -> str:
        """Rate-limit identity: ``X-Client-Id`` if sent, else the peer."""
        return self.headers.get("x-client-id", "").strip() or self.peer


@dataclass(frozen=True, slots=True)
class Response:
    status: int
    body: bytes
    content_type: str = "application/json"
    headers: tuple[tuple[str, str], ...] = field(default=())

    def encode(self) -> bytes:
        reason = _REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            "Connection: close",
        ]
        lines.extend(f"{name}: {value}" for name, value in self.headers)
        head = "\r\n".join(lines) + "\r\n\r\n"
        return head.encode("latin-1") + self.body


def _json_response(
    status: int,
    payload: object,
    headers: tuple[tuple[str, str], ...] = (),
) -> Response:
    return Response(
        status, json.dumps(payload).encode("utf-8"), headers=headers
    )


def _error(status: int, message: str, **extra: object) -> Response:
    headers: tuple[tuple[str, str], ...] = ()
    retry_after = extra.get("retry_after_s")
    if retry_after is not None:
        # Retry-After is integer seconds; round up so clients never
        # return a moment before a token exists.
        headers = (("Retry-After", str(max(1, int(-(-float(retry_after) // 1))))),)
    return _json_response(status, {"error": message, **extra}, headers=headers)


class BadRequest(ValueError):
    """A client error the measure handler converts to a 400."""


class CampaignServer:
    """The wired-together service: store → study → scheduler → routes.

    ``store`` is a :class:`ResultStore`, a path, or ``None`` (a private
    in-memory store, so ``/results`` and ``/pareto`` behave uniformly).
    ``fingerprint`` (see :func:`repro.core.study.run_fingerprint`) binds
    a persistent store to one set of run parameters; a mismatched store
    raises :class:`~repro.service.store.StoreError` at startup rather
    than serving mixed data.  ``rate``/``burst`` configure per-client
    token buckets on ``POST /measure`` (``rate=None`` disables).

    ``slo`` declares targets for ``GET /slo`` — an :class:`SloConfig`
    or a spec string like ``"p99=250ms,avail=99.9"`` (``ValueError`` on
    a malformed spec).  ``event_log`` appends one JSON line per served
    ``/measure`` correlating request id ↔ trace id ↔ store row; a path
    is opened (and closed at shutdown) by the server, an open text
    stream is borrowed.  ``trace_requests=False`` turns request tracing
    off entirely; ``trace_capacity`` bounds how many finished request
    traces ``GET /trace/<id>`` can still serve.
    """

    def __init__(
        self,
        study: Optional[Study] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        store: Union[ResultStore, Path, str, None] = None,
        fingerprint: Optional[Mapping[str, object]] = None,
        max_pending: int = 64,
        jobs: Optional[Union[int, str]] = None,
        rate: Optional[float] = None,
        burst: float = 5.0,
        slo: Union[SloConfig, str, None] = None,
        event_log: Union[Path, str, TextIO, None] = None,
        trace_requests: bool = True,
        trace_capacity: int = 256,
        drain_timeout: Optional[float] = None,
        recover: bool = False,
    ) -> None:
        self._study = study if study is not None else Study()
        self._host = host
        self._port = port
        if isinstance(store, ResultStore):
            self._store, self._owns_store = store, False
        else:
            self._store = ResultStore(store if store is not None else ":memory:")
            self._owns_store = True
        self._fingerprint = fingerprint
        self._drain_timeout = drain_timeout
        self._scheduler = CampaignScheduler(
            self._study, store=self._store, max_pending=max_pending, jobs=jobs
        )
        self._limiter = ClientRateLimiter(rate, burst=burst)
        self._configs_by_key = {c.key: c for c in all_configurations()}
        # GET /project responses keyed by canonical parameters: the search
        # is deterministic, so a repeat with equal params can serve the
        # cached payload without touching the measurement thread.
        self._projection_cache: dict[tuple, dict] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._started_monotonic = 0.0
        self.restored = 0  # records warm-started from the store
        self._recover = recover
        self._recovery_tasks: list[asyncio.Task] = []
        #: Recovery progress for /healthz: replays found, finished, failed.
        self.recovery = {"replayed": 0, "completed": 0, "failed": 0}
        self._slo = parse_slo(slo) if isinstance(slo, str) else slo
        self._trace_requests = trace_requests
        self._traces = TraceStore(capacity=trace_capacity)
        self._tracer_was_enabled = False
        if event_log is None or hasattr(event_log, "write"):
            self._event_log: Optional[TextIO] = event_log  # type: ignore[assignment]
            self._owns_event_log = False
        else:
            self._event_log = open(event_log, "a", encoding="utf-8")
            self._owns_event_log = True

    # -- lifecycle -------------------------------------------------------------

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        return self._port

    @property
    def store(self) -> ResultStore:
        return self._store

    @property
    def scheduler(self) -> CampaignScheduler:
        return self._scheduler

    async def start(self) -> None:
        """Bind the store, warm-start the study, and open the socket.

        With ``recover=True``, every journal entry left ``pending`` by
        the previous incarnation is resubmitted through the scheduler
        (as priority work) before the socket opens, so replays are first
        in the queue ahead of any fresh traffic."""
        if self._fingerprint is not None:
            self._store.check_fingerprint(self._fingerprint)
        if self._trace_requests:
            tracer = default_tracer()
            self._tracer_was_enabled = tracer.is_enabled
            tracer.enable()
        self.restored = self._store.warm_start(self._study)
        await self._scheduler.start()
        if self._recover:
            self._start_recovery()
        self._server = await self._bind()
        self._port = self._server.sockets[0].getsockname()[1]
        self._started_monotonic = time.monotonic()

    async def _bind(self) -> asyncio.base_events.Server:
        """Open the listening socket, retrying EADDRINUSE with bounded
        backoff — a freshly killed incarnation's socket can outlive the
        process for a moment, and a crash-restart loop must not flake on
        that race."""
        for attempt in range(BIND_ATTEMPTS):
            try:
                return await asyncio.start_server(
                    self._handle_connection, self._host, self._port
                )
            except OSError as exc:
                if (
                    exc.errno != errno.EADDRINUSE
                    or attempt == BIND_ATTEMPTS - 1
                ):
                    raise
                await asyncio.sleep(BIND_BACKOFF_S * (2 ** attempt))
        raise RuntimeError("unreachable")  # pragma: no cover

    def _start_recovery(self) -> None:
        """Resubmit every pending journal entry as a recovery replay.

        Entries that no longer parse (an unknown benchmark or
        configuration — the store predates a catalog change) are marked
        ``failed`` with the reason rather than crash-looping the server.
        Each replay runs with ``recovery=True`` so it bypasses the
        admission bound: this is work the previous incarnation already
        accepted, and it outranks fresh arrivals under overload."""
        for entry in self._store.journal_pending():
            try:
                bench, config, plan = self._resolve_journal_entry(entry)
            except (KeyError, ValueError) as exc:
                self._store.journal_fail(
                    [entry.request_key], f"unresolvable at recovery: {exc}"
                )
                self.recovery["failed"] += 1
                _RECOVERY_FAILED.inc()
                continue
            self.recovery["replayed"] += 1
            _RECOVERY_REPLAYED.inc()
            self._recovery_tasks.append(
                asyncio.get_running_loop().create_task(
                    self._replay(entry, bench, config, plan),
                    name=f"repro-recover-{entry.request_key}",
                )
            )

    def _resolve_journal_entry(self, entry: JournalEntry):
        bench = benchmark(entry.benchmark)
        config = self._configs_by_key.get(entry.config)
        if config is None:
            raise KeyError(f"unknown configuration key {entry.config!r}")
        plan = (
            FaultPlan.from_dict(json.loads(entry.plan))
            if entry.plan is not None
            else None
        )
        return bench, config, plan

    async def _replay(
        self,
        entry: JournalEntry,
        bench,
        config,
        plan: Optional[FaultPlan],
    ) -> None:
        """One recovery replay.  Completion/failure lands in the journal
        through the scheduler's normal resolve path; a drain mid-replay
        leaves the entry pending for the *next* recovery — replays are
        at-least-once, and the journal+store transaction makes their
        effects exactly-once."""
        try:
            await self._scheduler.submit(
                bench,
                config,
                plan,
                request_key=entry.request_key,
                recovery=True,
            )
        except Draining:
            pass  # still pending; the next --recover finishes it
        except SchedulerError:
            self.recovery["failed"] += 1
            _RECOVERY_FAILED.inc()
        else:
            self.recovery["completed"] += 1
            _RECOVERY_COMPLETED.inc()

    async def shutdown(self) -> dict[str, object]:
        """Graceful drain: finish in-flight jobs, flush, close, report.

        Bounded by the server's ``drain_timeout`` (``None`` waits for
        in-flight measurements indefinitely, the pre-PR-7 behaviour)."""
        summary = await self._scheduler.drain(deadline_s=self._drain_timeout)
        if self._recovery_tasks:
            await asyncio.gather(*self._recovery_tasks, return_exceptions=True)
            self._recovery_tasks = []
        journal_pending = self._store.journal_counts()["pending"]
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._owns_store:
            self._store.close()
        if self._trace_requests and not self._tracer_was_enabled:
            default_tracer().disable()
        if self._owns_event_log and self._event_log is not None:
            self._event_log.close()
            self._event_log = None
        return {
            "restored": self.restored,
            **summary,
            "recovered": self.recovery["completed"],
            "journal_pending": journal_pending,
        }

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await self._read_request(reader, writer)
                response = await self.handle(request)
            except BadRequest as exc:
                response = _error(400, str(exc))
            except (asyncio.TimeoutError, asyncio.IncompleteReadError, ValueError):
                response = _error(400, "malformed request")
            except Exception as exc:  # noqa: BLE001 - last-resort 500
                response = _error(500, f"internal error: {exc}")
            writer.write(response.encode())
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass  # the client went away; nothing left to tell it
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> Request:
        line = await asyncio.wait_for(reader.readline(), IO_TIMEOUT_S)
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise BadRequest("malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), IO_TIMEOUT_S)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length < 0 or length > MAX_BODY_BYTES:
            raise BadRequest(f"body too large (limit {MAX_BODY_BYTES} bytes)")
        body = (
            await asyncio.wait_for(reader.readexactly(length), IO_TIMEOUT_S)
            if length
            else b""
        )
        split = urlsplit(target)
        peername = writer.get_extra_info("peername")
        peer = peername[0] if isinstance(peername, tuple) else "unknown"
        return Request(
            method=method,
            path=split.path or "/",
            query=dict(parse_qsl(split.query)),
            headers=headers,
            body=body,
            peer=peer,
        )

    # -- routing ---------------------------------------------------------------

    def _route(self, request: Request):
        """Resolve a path to its canonical route name and handler.

        The canonical name is what metric labels carry: ``/trace/<id>``
        collapses to ``/trace`` so the label space stays bounded no
        matter how many request ids clients probe."""
        routes = {
            "/measure": ("POST", self._measure_route),
            "/results": ("GET", self._results),
            "/pareto": ("GET", self._pareto),
            "/project": ("GET", self._project),
            "/healthz": ("GET", self._healthz),
            "/metrics": ("GET", self._metrics),
            "/slo": ("GET", self._slo_route),
            "/trace": ("GET", self._trace),
        }
        if request.path == "/trace" or request.path.startswith("/trace/"):
            return "/trace", routes["/trace"]
        return request.path, routes.get(request.path)

    async def handle(self, request: Request) -> Response:
        """Route one request; usable directly in tests (no sockets)."""
        route, entry = self._route(request)
        started = time.perf_counter()
        if entry is None:
            response = _error(404, f"no route {request.path}")
        elif request.method != entry[0]:
            response = _error(405, f"{request.path} accepts {entry[0]} only")
        else:
            response = await entry[1](request)
        label = route if entry is not None else "unknown"
        REQUEST_SECONDS.labels(route=label).observe(
            time.perf_counter() - started
        )
        _REQUESTS.labels(route=label, status=str(response.status)).inc()
        return response

    # -- routes ----------------------------------------------------------------

    async def _measure_route(self, request: Request) -> Response:
        """``POST /measure``: the traced wrapper around :meth:`_measure`.

        Every measure request gets a request id and (when tracing is
        armed) an ``http.request`` root span.  A valid W3C
        ``traceparent`` header continues the caller's trace; a malformed
        one is ignored per spec (fresh trace, never an error).  After
        the response is built, the finished span subtree is archived
        under the request id for ``GET /trace/<id>`` and pruned from the
        live tracer so a long-running server's span list stays bounded.
        """
        request_id = new_request_id()
        tracer = default_tracer()
        ctx: dict[str, object] = {}
        if not (self._trace_requests and tracer.is_enabled):
            response = await self._measure(request, ctx, request_id=request_id)
            self._log_event(request, response, request_id, None, ctx)
            return replace(
                response,
                headers=response.headers + ((REQUEST_ID_HEADER, request_id),),
            )
        remote = parse_traceparent(request.headers.get("traceparent", ""))
        trace_id = remote.trace_id if remote is not None else new_trace_id()
        with tracer.span(
            "http.request",
            method=request.method,
            route="/measure",
            request_id=request_id,
            trace_id=trace_id,
            remote_parent=remote.span_id if remote is not None else None,
        ) as root:
            response = await self._measure(request, ctx, request_id=request_id)
            root.set_attribute("status", response.status)
        # Archive the Span objects as-is: dict conversion happens on the
        # cold /trace read path, keeping it off the per-request one.
        spans = tracer.detach_subtree(root.span_id)
        self._traces.put(
            request_id,
            {
                "request_id": request_id,
                "trace_id": trace_id,
                "spans": spans,
            },
        )
        self._log_event(request, response, request_id, trace_id, ctx)
        return replace(
            response,
            headers=response.headers
            + (
                (REQUEST_ID_HEADER, request_id),
                ("traceparent", format_traceparent(trace_id, root.span_id)),
            ),
        )

    def _log_event(
        self,
        request: Request,
        response: Response,
        request_id: str,
        trace_id: Optional[str],
        ctx: Optional[dict[str, object]],
    ) -> None:
        """One structured JSON line per served measure request: the join
        key between the HTTP exchange (request id), the span tree (trace
        id), and the durable record (store rowid)."""
        if self._event_log is None:
            return
        ctx = ctx or {}
        bench = ctx.get("benchmark")
        config = ctx.get("config")
        event = {
            "ts": round(time.time(), 6),
            "event": "measure",
            "request_id": request_id,
            "trace_id": trace_id,
            "status": response.status,
            "benchmark": bench,
            "config": config,
            "plan": ctx.get("plan"),
            "request_key": ctx.get("request_key"),
            "store_row": (
                self._store.rowid(str(bench), str(config))
                if response.status == 200 and bench and config
                else None
            ),
        }
        try:
            self._event_log.write(json.dumps(event) + "\n")
            self._event_log.flush()
        except (OSError, ValueError):  # pragma: no cover - log never fatal
            pass

    async def _measure(
        self,
        request: Request,
        ctx: Optional[dict[str, object]] = None,
        request_id: Optional[str] = None,
    ) -> Response:
        tracer = default_tracer()
        admission_started = time.perf_counter()
        with tracer.span("service.admission", client=request.client_id):
            try:
                admitted, retry_after_s = self._limiter.admit(request.client_id)
                if not admitted:
                    _RATELIMITED.inc()
                    return _error(
                        429,
                        "rate limit exceeded",
                        retry_after_s=round(retry_after_s, 3),
                    )
                try:
                    bench, config, plan = self._parse_measure_body(request.body)
                    request_key = self._parse_idempotency_key(request)
                    budget_s = self._parse_deadline_budget(request)
                except BadRequest as exc:
                    return _error(400, str(exc))
            finally:
                observe_stage(
                    "admission", time.perf_counter() - admission_started
                )
        if request_key is None:
            # No client key: the request id is the journal identity (a
            # fresh one per request, so no accidental dedup).
            request_key = request_id if request_id is not None else new_request_id()
        if ctx is not None:
            ctx["benchmark"] = bench.name
            ctx["config"] = config.key
            ctx["plan"] = plan.fingerprint if plan is not None else None
            ctx["request_key"] = request_key
        # Write-ahead journal: the request is durable *before* it is
        # scheduled.  From here on, a coordinator crash cannot lose it —
        # recovery replays every key still pending.
        try:
            prior = self._store.journal_admit(
                request_key,
                bench.name,
                config.key,
                plan=(
                    json.dumps(plan.as_dict(), sort_keys=True)
                    if plan is not None
                    else None
                ),
                plan_fp=plan.fingerprint if plan is not None else None,
            )
        except JournalConflict as exc:
            return _error(409, str(exc))
        coordinator_fault_point("admit")
        if prior == "done":
            # Exactly-once effects: the key's result is already durable,
            # so the retry is answered from the store with zero engine
            # work (and no duplicate execution, by construction).
            stored = self._store.get(bench.name, config.key)
            if stored is not None:
                _IDEMPOTENT_REPLAYS.inc()
                return Response(
                    200,
                    json.dumps(stored.as_record()).encode("utf-8"),
                    headers=(("Idempotent-Replay", "true"),),
                )
        deadline = (
            self._scheduler.now() + budget_s if budget_s is not None else None
        )
        try:
            result = await self._scheduler.submit(
                bench,
                config,
                plan,
                request_key=request_key,
                deadline=deadline,
            )
        except Draining:
            # Refused before it was queued: terminal in the journal (the
            # client got a clear 503 and may retry the same key later).
            self._store.journal_fail([request_key], "server draining")
            return _error(503, "server is draining; no new measurements")
        except Saturated as exc:
            self._store.journal_fail([request_key], "queue full")
            return _error(
                429,
                "measurement queue is full",
                retry_after_s=exc.retry_after_s,
            )
        except InvalidPlan as exc:
            self._store.journal_fail([request_key], str(exc))
            return _error(400, str(exc))
        except DeadlineExceeded as exc:
            # Already journalled as shed and counted by the scheduler —
            # a 504 is the "never silent" client half of the contract.
            return _error(504, str(exc))
        except MeasurementFailed as exc:
            return _error(500, f"measurement failed: {exc}")
        # The byte-identity contract: exactly json.dumps(as_record()),
        # the same bytes a sequential Study.run record serialises to.
        return Response(200, json.dumps(result.as_record()).encode("utf-8"))

    @staticmethod
    def _parse_idempotency_key(request: Request) -> Optional[str]:
        """The client's ``Idempotency-Key`` header, validated, or None."""
        raw = request.headers.get("idempotency-key")
        if raw is None:
            return None
        key = raw.strip()
        if not key:
            raise BadRequest("'Idempotency-Key' must not be empty")
        if len(key) > MAX_IDEMPOTENCY_KEY_CHARS:
            raise BadRequest(
                f"'Idempotency-Key' is limited to "
                f"{MAX_IDEMPOTENCY_KEY_CHARS} characters"
            )
        return key

    @staticmethod
    def _parse_deadline_budget(request: Request) -> Optional[float]:
        """The ``X-Deadline-Ms`` header as a seconds budget, or None."""
        raw = request.headers.get("x-deadline-ms")
        if raw is None:
            return None
        try:
            budget_ms = float(raw)
        except ValueError as exc:
            raise BadRequest(
                f"'X-Deadline-Ms' must be a number of milliseconds, "
                f"got {raw!r}"
            ) from exc
        if not (0 < budget_ms < float("inf")):  # rejects NaN, inf, <= 0
            raise BadRequest("'X-Deadline-Ms' must be a positive finite number")
        return budget_ms / 1000.0

    #: Every field POST /measure understands; anything else is a 400.
    #: A misspelt field silently ignored would measure the wrong thing
    #: and cache it under the wrong identity — refusing loudly is the
    #: only response that cannot corrupt a client's dataset.
    MEASURE_FIELDS = frozenset(
        {
            "benchmark",
            "config",
            "processor",
            "cores",
            "threads",
            "clock",
            "turbo",
            "inject",
            "iterations",
        }
    )

    def _parse_measure_body(self, body: bytes):
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, ValueError) as exc:
            raise BadRequest(f"body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise BadRequest("body must be a JSON object")
        unknown = sorted(set(payload) - self.MEASURE_FIELDS)
        if unknown:
            raise BadRequest(
                f"unknown field(s) {', '.join(repr(f) for f in unknown)}; "
                f"accepted: {', '.join(sorted(self.MEASURE_FIELDS))}"
            )
        name = payload.get("benchmark")
        if not isinstance(name, str):
            raise BadRequest("missing required field 'benchmark'")
        try:
            bench = benchmark(name)
        except KeyError as exc:
            raise BadRequest(f"unknown benchmark {name!r}") from exc
        config = self._parse_configuration(payload)
        plan = _parse_plan(payload.get("inject"))
        iterations = payload.get("iterations")
        if iterations is not None:
            # Iteration counts are pinned by the run fingerprint (the
            # protocol times the server's invocation scale): honouring a
            # per-request count would produce records other clients'
            # cached/coalesced responses could never match.  Accept only
            # the count this server will actually run.
            planned = self._study.scaled_invocations(bench)
            try:
                requested = int(iterations)  # type: ignore[arg-type]
            except (TypeError, ValueError) as exc:
                raise BadRequest("'iterations' must be an integer") from exc
            if requested != planned:
                raise BadRequest(
                    f"iterations are fixed by the measurement protocol: "
                    f"this server runs {planned} for {name!r} (launch with "
                    f"a different --quick/scale to change it)"
                )
        return bench, config, plan

    def _parse_configuration(self, payload: Mapping[str, object]):
        key = payload.get("config")
        if key is not None:
            config = self._configs_by_key.get(str(key))
            if config is None:
                raise BadRequest(f"unknown configuration key {key!r}")
            return config
        proc = payload.get("processor")
        if not isinstance(proc, str):
            raise BadRequest("need 'config' (a configuration key) or 'processor'")
        try:
            config = stock(processor(proc))
            cores = payload.get("cores")
            if cores is not None:
                config = config.with_cores(int(cores))  # type: ignore[arg-type]
            threads = payload.get("threads")
            if threads is not None:
                config = (
                    config.without_smt()
                    if int(threads) == 1  # type: ignore[arg-type]
                    else config.with_smt()
                )
            clock = payload.get("clock")
            if clock is not None:
                config = config.at_clock(float(clock))  # type: ignore[arg-type]
            if payload.get("turbo") is False:
                config = config.without_turbo()
        except KeyError as exc:
            raise BadRequest(f"unknown processor {proc!r}") from exc
        except (UnsupportedConfigurationError, TypeError, ValueError) as exc:
            raise BadRequest(f"unsupported configuration: {exc}") from exc
        return config

    async def _results(self, request: Request) -> Response:
        records = self._store.records(
            benchmark=request.query.get("benchmark"),
            config=request.query.get("config"),
        )
        return _json_response(
            200,
            {
                "count": len(records),
                "results": [r.as_record() for r in records],
            },
        )

    async def _pareto(self, request: Request) -> Response:
        """Energy/performance points from *stored* records only — a GET
        never triggers measurement; POST the missing cells first."""
        by_config: dict[str, list] = {}
        for record in self._store.records():
            by_config.setdefault(record.config_key, []).append(record)
        points = []
        for key in sorted(by_config):
            rows = by_config[key]
            speed = group_means(
                {r.benchmark_name: r.speedup for r in rows}, BENCHMARKS
            )
            energy = group_means(
                {r.benchmark_name: r.normalized_energy for r in rows}, BENCHMARKS
            )
            points.append(
                TradeoffPoint(
                    key=key,
                    performance=weighted_average(speed),
                    energy=weighted_average(energy),
                )
            )
        efficient = {p.key for p in pareto_efficient(points)}
        return _json_response(
            200,
            {
                "count": len(points),
                "points": [
                    {
                        "configuration": p.key,
                        "performance": p.performance,
                        "normalized_energy": p.energy,
                        "efficient": p.key in efficient,
                    }
                    for p in points
                ],
            },
        )

    #: Per-request ceiling on /project candidates per node: a GET should
    #: stay an interactive sweep; bigger searches belong on the CLI.
    PROJECT_MAX_SAMPLES = 512

    async def _project(self, request: Request) -> Response:
        """``GET /project``: frontier search over synthesized machines.

        Query parameters mirror the ``repro project`` CLI: ``nodes``
        (comma-separated projected nanometers), ``samples`` (per node),
        ``seed``, ``area`` (mm^2), ``tdp`` (W).  The search runs on the
        scheduler's measurement thread, serialized with /measure batches,
        and its deterministic payload is cached by canonical parameters.
        """
        from repro.hardware.technology import PROJECTED_NODES
        from repro.projection import Budget, evaluate_projection_finding

        query = request.query
        try:
            nodes = tuple(
                int(part)
                for part in query.get("nodes", "22,14,10,7").split(",")
                if part
            )
            samples = int(query.get("samples", "64"))
            seed = int(query.get("seed", "0"))
            area = float(query.get("area", "260"))
            tdp = float(query.get("tdp", "130"))
        except ValueError as exc:
            return _error(400, f"bad projection parameter: {exc}")
        unknown = [nm for nm in nodes if nm not in PROJECTED_NODES]
        if unknown or not nodes:
            return _error(
                400,
                f"nodes must name projected nodes "
                f"{sorted(PROJECTED_NODES, reverse=True)}, got {query.get('nodes')!r}",
            )
        if not 1 <= samples <= self.PROJECT_MAX_SAMPLES:
            return _error(
                400,
                f"samples must be in [1, {self.PROJECT_MAX_SAMPLES}], got {samples}",
            )
        try:
            budget = Budget(area_mm2=area, tdp_w=tdp)
        except ValueError as exc:
            return _error(400, str(exc))
        cache_key = (nodes, samples, seed, area, tdp)
        payload = self._projection_cache.get(cache_key)
        if payload is None:
            try:
                dataset = await self._scheduler.offload(
                    self._scheduler.run_projection, nodes, samples, budget, seed
                )
            except ValueError as exc:
                return _error(500, f"projection search failed: {exc}")
            report = evaluate_projection_finding(dataset)
            payload = {
                "params": {
                    "nodes": list(nodes),
                    "samples": samples,
                    "seed": seed,
                    "area_mm2": area,
                    "tdp_w": tdp,
                },
                "candidates": dataset.candidate_count(),
                "dataset": dataset.to_dict(),
                "finding": {
                    "id": report.finding_id,
                    "holds": report.holds,
                    "evidence": report.evidence,
                },
            }
            self._projection_cache[cache_key] = payload
        return _json_response(200, payload)

    async def _healthz(self, request: Request) -> Response:
        draining = self._scheduler.draining
        payload = self.health()
        return _json_response(503 if draining else 200, payload)

    def health(self) -> dict[str, object]:
        """The health snapshot ``/healthz`` serves (and drain prints)."""
        return {
            "status": "draining" if self._scheduler.draining else "ok",
            "uptime_s": round(time.monotonic() - self._started_monotonic, 3),
            "pending_jobs": self._scheduler.pending,
            "completed": self._scheduler.completed,
            "coalesced": self._scheduler.coalesced,
            "rejected": self._scheduler.rejected,
            "failed": self._scheduler.failed,
            "shed": self._scheduler.shed,
            "cached_pairs": self._study.cached_pairs,
            "quarantined": len(self._study.quarantined),
            "store_records": len(self._store),
            "restored": self.restored,
            "in_flight": self._scheduler.inflight_snapshot(),
            "fleet": self._study.fleet_snapshot(),
            "journal": self._store.journal_counts(),
            "recovery": dict(self.recovery),
            "kernels": kernel_stats(),
        }

    async def _metrics(self, request: Request) -> Response:
        return Response(
            200,
            render_prometheus().encode("utf-8"),
            content_type=PROMETHEUS_CONTENT_TYPE,
        )

    async def _slo_route(self, request: Request) -> Response:
        """Latency quantiles, availability, and error-budget burn against
        the declared targets (or observations only when none are set)."""
        return _json_response(200, slo_report(self._slo))

    async def _trace(self, request: Request) -> Response:
        """``GET /trace`` lists archived request ids; ``GET /trace/<id>``
        serves one request's span tree (404 for unknown/evicted ids)."""
        if request.path in ("/trace", "/trace/"):
            ids = self._traces.request_ids()
            return _json_response(
                200, {"count": len(ids), "request_ids": ids}
            )
        request_id = request.path[len("/trace/"):]
        payload = self._traces.get(request_id)
        if payload is None:
            return _error(404, f"no trace for request id {request_id!r}")
        spans = [span.as_dict() for span in payload["spans"]]
        orphans = sorted(orphan_parent_ids(spans))
        return _json_response(
            200,
            {
                "request_id": payload["request_id"],
                "trace_id": payload["trace_id"],
                "span_count": len(spans),
                "orphans": orphans,
                "root": build_span_tree(spans),
                "spans": spans,
            },
        )


def _parse_plan(raw: object) -> Optional[FaultPlan]:
    """Per-request fault plan: a canned name or an inline plan object.

    File paths are deliberately *not* accepted here — unlike the CLI's
    ``--inject``, this value crosses a network boundary and must not
    reach the filesystem.
    """
    if raw is None:
        return None
    if isinstance(raw, str):
        if raw == "ci":
            return fail_stop_plan()
        if raw == "demo":
            return demo_plan()
        if raw == "chaos":
            return worker_chaos_plan()
        raise BadRequest(
            f"unknown plan {raw!r}: use 'ci', 'demo', 'chaos', or an "
            f"inline plan object"
        )
    if isinstance(raw, dict):
        try:
            return FaultPlan.from_dict(raw)
        except ValueError as exc:
            raise BadRequest(f"invalid fault plan: {exc}") from exc
    raise BadRequest("'inject' must be a plan name or a plan object")


async def serve_async(
    server: CampaignServer, stream: TextIO = sys.stderr
) -> dict[str, object]:
    """Run ``server`` until SIGTERM/SIGINT, then drain and report."""
    await server.start()
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    installed = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
            installed.append(sig)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # platform without signal support; Ctrl-C still raises
    recovery_note = (
        f", recovering {server.recovery['replayed']} journalled requests"
        if server.recovery["replayed"]
        else ""
    )
    print(
        f"serving on http://{server.host}:{server.port} "
        f"(store: {server.store.path}, warm-started {server.restored} "
        f"records{recovery_note})",
        file=stream,
        flush=True,
    )
    try:
        await stop.wait()
    finally:
        for sig in installed:
            loop.remove_signal_handler(sig)
    print("draining: finishing in-flight measurements ...", file=stream, flush=True)
    report = await server.shutdown()
    print(
        "drained: "
        + ", ".join(f"{key}={value}" for key, value in report.items()),
        file=stream,
        flush=True,
    )
    return report


def serve(server: CampaignServer, stream: TextIO = sys.stderr) -> dict[str, object]:
    """Blocking entry point the CLI uses."""
    return asyncio.run(serve_async(server, stream=stream))
