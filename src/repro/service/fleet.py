"""Supervised measurement worker fleet: heartbeats, liveness, requeue.

The :class:`~repro.core.executor.SweepPool` path (PR 3) trusts its
workers: a process that dies takes the whole ``ProcessPoolExecutor``
down (``BrokenProcessPool``) and the sweep falls back to the sequential
loop.  That is fine for a one-shot CLI sweep and unacceptable for a
long-lived campaign server, where the dominant operational threat is no
longer sensor noise but node-level failure — a worker that crashes,
wedges, or silently slows down mid-chunk.

:class:`FleetSupervisor` owns N long-lived worker *processes* directly:

* each worker runs a background :class:`_Beater` thread that sends a
  sequenced heartbeat over the shared result queue every
  ``heartbeat_s`` seconds — independent of the measurement loop, so a
  slow chunk never reads as a dead worker;
* the supervisor's liveness loop (injectable monotonic ``clock``, like
  :mod:`repro.service.ratelimit`) marks a worker dead after
  ``liveness_misses`` missed beats or a reaped process, SIGKILLs and
  joins it, respawns a replacement initialised with the same
  :class:`~repro.core.executor.WorkerSetup` (calibration preload
  included), and **requeues the dead worker's in-flight chunk**;
* re-dispatch is keyed by the same (site, attempt) discipline as the
  retry loop: the worker-fault site is ``fleet/<chunk>/<attempt>``, so
  fault dice re-roll per dispatch while measurement noise — keyed by the
  measurement site alone — does not.  A replacement worker re-measures
  the whole chunk from scratch and produces the byte-identical
  :class:`~repro.core.executor.ChunkResult` the dead worker would have;
  partial results die with the process and are never merged.  A run
  with any number of worker deaths therefore yields byte-identical
  records, :class:`~repro.core.results.CampaignHealth`, and checkpoint
  bytes to a clean sequential ``Study.run``;
* a chunk that crash-loops ``max_chunk_attempts`` times is given up on:
  its pairs come back as failed outcomes, which the study's merge
  quarantines with the PR 2 semantics, instead of respawning forever;
* a fleet that shrinks below ``min_workers`` (respawn failures) keeps
  serving with reduced parallelism and says so; only a fleet with *no*
  live workers raises :class:`FleetUnavailable`, which the study
  catches and falls back to the pool/sequential paths.

The process-level fault kinds (``worker.crash``, ``worker.hang``,
``worker.slow``) are armed through the ordinary
:class:`~repro.faults.plan.FaultPlan` machinery; the injector *decides*
(:meth:`~repro.faults.injector.FaultInjector.check_worker`) and the
worker loop *enacts* — ``os._exit`` for a crash, heartbeat silence for
a hang or slow-down — so CI can kill workers deterministically
mid-sweep and assert the bytes did not move.
"""

from __future__ import annotations

import os
import queue
import sys
import threading
import time
from collections import deque
from typing import Callable, Optional, Sequence

from repro.core.executor import (
    CHUNKS_PER_WORKER,
    ChunkResult,
    PairOutcome,
    WorkerSetup,
    _init_worker,
    _measure_chunk,
    _pool_context,
)
from repro.obs.metrics import default_registry
from repro.obs.tracing import default_tracer

_REGISTRY = default_registry()
_RESTARTS = _REGISTRY.counter(
    "repro_fleet_worker_restarts_total",
    "Fleet workers respawned after a crash, hang, or missed heartbeats",
)
_REQUEUES = _REGISTRY.counter(
    "repro_fleet_requeues_total",
    "In-flight chunks requeued from dead workers",
)
_HEARTBEATS = _REGISTRY.counter(
    "repro_fleet_heartbeats_total",
    "Heartbeats received from fleet workers",
)
_WORKERS_GAUGE = _REGISTRY.gauge(
    "repro_fleet_workers",
    "Live fleet worker processes",
)
_HEARTBEAT_AGE = _REGISTRY.gauge(
    "repro_fleet_heartbeat_age_seconds",
    "Age of the stalest live worker's last heartbeat",
)

#: Exit code a worker uses for an injected ``worker.crash`` (visible in
#: the supervisor's log line, distinguishing planned chaos from SIGKILL).
CRASH_EXIT_CODE = 73

#: How often an idle worker wakes from ``tasks.get`` to check that its
#: supervisor is still alive (seconds).
ORPHAN_CHECK_S = 1.0


class FleetUnavailable(RuntimeError):
    """No fleet worker could be spawned (or every worker died and no
    replacement could be started); the caller should fall back to the
    pool or sequential path — same bytes, just less resilience."""


def _worker_site(chunk_index: int, attempt: int) -> str:
    """The fault site for one chunk dispatch.

    The attempt is part of the *site* (not just the contextvar) so a
    probability-1.0 spec can be scoped to a single dispatch —
    ``fleet/0/0`` kills exactly the first assignee of chunk 0 and lets
    the attempt-1 requeue through on fresh dice."""
    return f"fleet/{chunk_index}/{attempt}"


class _Beater(threading.Thread):
    """Background heartbeat pump inside a worker process.

    Beats ride the shared result queue so the supervisor has one place
    to listen.  The thread is a daemon and starts *before* worker
    initialisation, so a slow calibration preload cannot read as a dead
    worker.  ``silence()`` (the ``worker.slow`` fault) suppresses beats
    for a window without stopping the measurement loop; ``stop()`` (the
    ``worker.hang`` fault, and clean shutdown) ends them for good."""

    def __init__(self, worker_id: int, results, interval_s: float) -> None:
        super().__init__(daemon=True, name=f"fleet-beater-{worker_id}")
        self._worker_id = worker_id
        self._results = results
        self._interval_s = interval_s
        self._stopped = threading.Event()
        self._lock = threading.Lock()
        self._silent_until = 0.0
        self._seq = 0

    def run(self) -> None:
        while not self._stopped.wait(self._interval_s):
            with self._lock:
                silent = time.monotonic() < self._silent_until
            if silent:
                continue
            self._seq += 1
            try:
                self._results.put(("beat", self._worker_id, self._seq))
            except (OSError, ValueError):  # queue closed: supervisor gone
                return

    def silence(self, seconds: float) -> None:
        with self._lock:
            self._silent_until = time.monotonic() + seconds

    def stop(self) -> None:
        self._stopped.set()


def _fleet_worker_main(
    worker_id: int,
    setup: WorkerSetup,
    tasks,
    results,
    heartbeat_s: float,
) -> None:
    """Entry point of one fleet worker process.

    Protocol: read ``(generation, chunk_index, attempt, chunk)`` tasks
    until the ``None`` sentinel; answer each with
    ``("done", worker_id, generation, chunk_index, attempt, result)``.
    Heartbeats flow from the beater thread the whole time.

    A worker whose supervisor vanishes (e.g. a SIGKILL'd coordinator,
    which never gets to send the shutdown sentinel) is reparented to
    init; the idle loop notices the parent pid changed and exits, so a
    crashed coordinator leaves no orphan processes pinning the machine
    while the operator restarts it with ``--recover``."""
    from repro.faults import injector

    beater = _Beater(worker_id, results, heartbeat_s)
    beater.start()
    _init_worker(setup)
    parent = os.getppid()
    while True:
        try:
            task = tasks.get(timeout=ORPHAN_CHECK_S)
        except queue.Empty:
            if os.getppid() != parent:
                break  # supervisor died without a sentinel: orphaned
            continue
        if task is None:
            break
        generation, chunk_index, attempt, chunk = task
        armed = injector.active()
        if armed is not None:
            with injector.attempt_scope(attempt):
                spec = armed.check_worker(_worker_site(chunk_index, attempt))
            if spec is not None:
                if spec.kind == "worker.crash":
                    # Die the way a real crash does: no cleanup, no
                    # flushing — the queued partial state dies with us.
                    os._exit(CRASH_EXIT_CODE)
                if spec.kind == "worker.hang":
                    beater.stop()
                    while True:  # wedged until the supervisor SIGKILLs us
                        time.sleep(3600)
                beater.silence(spec.severity)  # worker.slow: stall, recover
        result = _measure_chunk(chunk_index, chunk)
        results.put(("done", worker_id, generation, chunk_index, attempt, result))
    beater.stop()


class WorkerHandle:
    """Supervisor-side view of one worker process."""

    __slots__ = (
        "worker_id",
        "process",
        "tasks",
        "state",
        "last_beat",
        "beats",
        "chunks_done",
        "current",
    )

    def __init__(self, worker_id: int, process, tasks, now: float) -> None:
        self.worker_id = worker_id
        self.process = process
        self.tasks = tasks
        self.state = "idle"  # idle | busy | dead
        self.last_beat = now  # spawn counts as the first sign of life
        self.beats = 0
        self.chunks_done = 0
        self.current: Optional[tuple] = None  # (gen, chunk, attempt, pairs)


class FleetSupervisor:
    """Owns N worker processes and survives their deaths.

    ``clock`` must be monotonic; it is injectable so liveness tests can
    step time instead of sleeping.  ``process_factory(worker_id, tasks)``
    is the spawn seam for the same reason — the default starts a real
    process running :func:`_fleet_worker_main`."""

    def __init__(
        self,
        setup: WorkerSetup,
        workers: int,
        *,
        heartbeat_s: float = 0.25,
        liveness_misses: int = 4,
        max_chunk_attempts: int = 3,
        min_workers: int = 1,
        clock: Callable[[], float] = time.monotonic,
        process_factory: Optional[Callable] = None,
        log=None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if heartbeat_s <= 0:
            raise ValueError(f"heartbeat interval must be positive: {heartbeat_s}")
        if liveness_misses < 1:
            raise ValueError(f"need at least one miss to die: {liveness_misses}")
        if max_chunk_attempts < 1:
            raise ValueError(f"need at least one attempt: {max_chunk_attempts}")
        self.setup = setup
        self.workers = workers
        self.heartbeat_s = heartbeat_s
        self.liveness_misses = liveness_misses
        self.max_chunk_attempts = max_chunk_attempts
        self.min_workers = max(1, min_workers)
        self.restarts = 0
        self.requeues = 0
        self._clock = clock
        self._log = log or (lambda msg: print(msg, file=sys.stderr))
        self._ctx = _pool_context()
        self._process_factory = process_factory or self._default_factory
        self._generation = 0
        self._next_worker_id = 0
        self._closed = False
        # run() owns the result queue while a sweep is in flight; poll()
        # (called from the server's event-loop thread between batches)
        # must never steal a "done" message from under it.
        self._queue_owner = threading.Lock()
        try:
            self._results = self._ctx.Queue()
        except OSError as exc:  # pragma: no cover - sandboxed platforms
            raise FleetUnavailable(f"cannot create fleet queues: {exc}") from exc
        self._workers: list[WorkerHandle] = []
        for _ in range(workers):
            handle = self._spawn()
            if handle is None:
                self.close()
                raise FleetUnavailable("cannot spawn any fleet worker")
        _WORKERS_GAUGE.set(len(self._workers))

    # -- spawning ------------------------------------------------------------

    def _default_factory(self, worker_id: int, tasks):
        process = self._ctx.Process(
            target=_fleet_worker_main,
            args=(worker_id, self.setup, tasks, self._results, self.heartbeat_s),
            name=f"fleet-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        return process

    def _spawn(self) -> Optional[WorkerHandle]:
        """Start one worker; ``None`` if the platform refuses (degraded
        mode — the fleet keeps going with the workers it has)."""
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        try:
            tasks = self._ctx.Queue()
            process = self._process_factory(worker_id, tasks)
        except (OSError, ValueError, PermissionError) as exc:
            self._log(f"fleet: cannot spawn worker {worker_id}: {exc}")
            return None
        handle = WorkerHandle(worker_id, process, tasks, self._clock())
        self._workers.append(handle)
        return handle

    # -- compatibility (mirrors SweepPool) -----------------------------------

    def compatible_with(self, setup: WorkerSetup) -> bool:
        mine = self.setup
        return (
            mine.references is setup.references
            and mine.invocation_scale == setup.invocation_scale
            and mine.retry == setup.retry
            and mine.instrument == setup.instrument
            and mine.metrics_enabled == setup.metrics_enabled
            and mine.fault_plan == setup.fault_plan
            and mine.trace_enabled == setup.trace_enabled
            # ``kernels`` is a warm-start hint (as in SweepPool); the
            # path flag pins which code path measures, so it gates.
            and mine.vectorize == setup.vectorize
        )

    # -- the sweep -----------------------------------------------------------

    @property
    def liveness_deadline_s(self) -> float:
        return self.heartbeat_s * self.liveness_misses

    def run(self, pending: Sequence, progress=None) -> list[ChunkResult]:
        """Measure ``pending`` (benchmark, config, index) triples.

        Returns chunk results sorted by chunk index, exactly like
        :func:`repro.core.executor.run_pairs`; the study's merge cannot
        tell the two apart.  Raises :class:`FleetUnavailable` only when
        every worker is dead and none can be respawned — nothing has
        been merged at that point, so falling back re-measures from a
        clean slate."""
        if self._closed:
            raise FleetUnavailable("fleet already closed")
        if not pending:
            return []
        with self._queue_owner:
            return self._run_locked(pending, progress)

    def _run_locked(self, pending: Sequence, progress) -> list[ChunkResult]:
        self._generation += 1
        generation = self._generation
        live = [h for h in self._workers if h.state != "dead"]
        workers = min(len(live), len(pending)) or 1
        chunk_count = min(len(pending), workers * CHUNKS_PER_WORKER)
        # Same round-robin deal as the pool path: neighbouring pairs
        # usually share a benchmark, so striding spreads protocol cost.
        chunks = [tuple(pending[i::chunk_count]) for i in range(chunk_count)]
        todo: deque = deque(
            (generation, index, 0, chunk) for index, chunk in enumerate(chunks)
        )
        completed: dict[int, ChunkResult] = {}
        poll_s = min(max(self.heartbeat_s / 2.0, 0.005), 0.25)
        while len(completed) < chunk_count:
            self._assign(todo)
            self._drain(completed, todo, generation, progress, timeout=poll_s)
            self._reap(self._clock(), todo, completed, generation, chunks)
            if not any(h.state != "dead" for h in self._workers):
                raise FleetUnavailable(
                    "every fleet worker died and none could be respawned"
                )
        self._update_gauges()
        return [completed[index] for index in range(chunk_count)]

    def _assign(self, todo: deque) -> None:
        tracer = default_tracer()
        for handle in self._workers:
            if not todo:
                return
            if handle.state != "idle":
                continue
            task = todo.popleft()
            _, chunk_index, attempt, chunk = task
            handle.current = task
            handle.state = "busy"
            with tracer.span(
                "fleet.dispatch",
                worker=handle.worker_id,
                chunk=chunk_index,
                attempt=attempt,
                pairs=len(chunk),
            ):
                handle.tasks.put(task)

    def _drain(
        self,
        completed: dict[int, ChunkResult],
        todo: deque,
        generation: int,
        progress,
        timeout: float,
    ) -> None:
        """Pull everything currently on the result queue (blocking up to
        ``timeout`` for the first message so the loop idles cheaply)."""
        block = True
        while True:
            try:
                message = self._results.get(timeout=timeout) if block \
                    else self._results.get_nowait()
            except queue.Empty:
                return
            except (EOFError, OSError):  # torn write from a killed worker
                return
            block = False
            kind = message[0]
            if kind == "beat":
                _, worker_id, _seq = message
                handle = self._by_id(worker_id)
                if handle is not None and handle.state != "dead":
                    handle.last_beat = self._clock()
                    handle.beats += 1
                    _HEARTBEATS.inc()
            elif kind == "done":
                _, worker_id, gen, chunk_index, _attempt, result = message
                handle = self._by_id(worker_id)
                if handle is not None and handle.state == "busy":
                    handle.state = "idle"
                    handle.current = None
                if gen != generation or chunk_index in completed:
                    continue  # stale duplicate: first result won
                completed[chunk_index] = result
                if handle is not None:
                    handle.chunks_done += 1
                # A requeued copy racing on another worker (or still in
                # the todo queue) is now moot.
                for task in [t for t in todo if t[1] == chunk_index]:
                    todo.remove(task)
                if progress is not None and result.invocations:
                    progress.advance(result.invocations)

    def _by_id(self, worker_id: int) -> Optional[WorkerHandle]:
        for handle in self._workers:
            if handle.worker_id == worker_id:
                return handle
        return None

    def _reap(
        self,
        now: float,
        todo: deque,
        completed: dict[int, ChunkResult],
        generation: int,
        chunks: Sequence,
    ) -> None:
        """The liveness pass: detect, kill, requeue, respawn."""
        tracer = default_tracer()
        deadline = self.liveness_deadline_s
        for handle in list(self._workers):
            if handle.state == "dead":
                continue
            reaped = not handle.process.is_alive()
            stale = (now - handle.last_beat) > deadline
            if not (reaped or stale):
                continue
            exit_code = getattr(handle.process, "exitcode", None)
            if not reaped:
                handle.process.kill()
            handle.process.join(timeout=5.0)
            handle.state = "dead"
            self._workers.remove(handle)
            cause = (
                f"exited with code {exit_code}" if reaped
                else f"missed {self.liveness_misses} heartbeats "
                     f"({now - handle.last_beat:.2f}s silent)"
            )
            self._log(
                f"fleet: worker {handle.worker_id} "
                f"(pid {getattr(handle.process, 'pid', '?')}) died: {cause}"
            )
            if handle.current is not None:
                gen, chunk_index, attempt, chunk = handle.current
                if gen == generation and chunk_index not in completed:
                    next_attempt = attempt + 1
                    if next_attempt >= self.max_chunk_attempts:
                        completed[chunk_index] = _crash_loop_result(
                            chunk_index, chunk, next_attempt
                        )
                        self._log(
                            f"fleet: chunk {chunk_index} crash-looped "
                            f"{next_attempt} times; quarantining its pairs"
                        )
                    else:
                        todo.append((gen, chunk_index, next_attempt, chunk))
                        self.requeues += 1
                        _REQUEUES.inc()
                        with tracer.span(
                            "fleet.requeue",
                            chunk=chunk_index,
                            attempt=next_attempt,
                            worker=handle.worker_id,
                        ):
                            pass
            replacement = self._spawn()
            if replacement is not None:
                self.restarts += 1
                _RESTARTS.inc()
            live = sum(1 for h in self._workers if h.state != "dead")
            if live < self.min_workers:
                self._log(
                    f"fleet: degraded to {live} live worker(s) "
                    f"(floor {self.min_workers}); serving with reduced "
                    f"parallelism"
                )
        self._update_gauges(now)

    # -- introspection -------------------------------------------------------

    def _update_gauges(self, now: Optional[float] = None) -> None:
        now = self._clock() if now is None else now
        live = [h for h in self._workers if h.state != "dead"]
        _WORKERS_GAUGE.set(len(live))
        if live:
            _HEARTBEAT_AGE.set(max(0.0, max(now - h.last_beat for h in live)))

    def snapshot(self) -> dict:
        """The per-worker table served by ``/healthz`` and ``repro top``."""
        now = self._clock()
        workers = []
        # Copy first: the measurement thread may be reaping/respawning.
        for handle in list(self._workers):
            workers.append(
                {
                    "id": handle.worker_id,
                    "pid": getattr(handle.process, "pid", None),
                    "state": handle.state,
                    "beats": handle.beats,
                    "chunks_done": handle.chunks_done,
                    "heartbeat_age_s": round(max(0.0, now - handle.last_beat), 3),
                }
            )
        return {
            "size": self.workers,
            "live": sum(1 for h in self._workers if h.state != "dead"),
            "restarts": self.restarts,
            "requeues": self.requeues,
            "heartbeat_s": self.heartbeat_s,
            "liveness_misses": self.liveness_misses,
            "workers": workers,
        }

    def poll(self) -> None:
        """Idle-time liveness housekeeping (no sweep running): absorb
        queued beats and refresh the staleness gauges.  The campaign
        server calls this from ``/healthz`` so the worker table stays
        current between batches."""
        if self._closed:
            return
        if not self._queue_owner.acquire(blocking=False):
            return  # a sweep is running; run()'s drain owns the queue
        try:
            self._drain({}, deque(), self._generation, None, timeout=0.0)
            self._update_gauges()
        finally:
            self._queue_owner.release()

    # -- shutdown ------------------------------------------------------------

    def close(self) -> None:
        """Stop every worker: polite sentinel first, SIGKILL stragglers."""
        if self._closed:
            return
        self._closed = True
        for handle in self._workers:
            try:
                handle.tasks.put(None)
            except (OSError, ValueError):
                pass
        for handle in self._workers:
            process = handle.process
            if hasattr(process, "join"):
                process.join(timeout=2.0)
            if getattr(process, "is_alive", lambda: False)():
                process.kill()
                process.join(timeout=5.0)
            handle.state = "dead"
        self._workers.clear()
        _WORKERS_GAUGE.set(0)
        try:
            self._results.close()
        except (OSError, AttributeError):
            pass


def _crash_loop_result(
    chunk_index: int, chunk: Sequence, attempts: int
) -> ChunkResult:
    """Give-up outcome for a chunk that kills every worker it touches.

    Shaped exactly like a worker's failure report, so the study's merge
    quarantines the pairs with the ordinary PR 2 semantics — recorded in
    CampaignHealth, skipped by later sweeps — instead of the supervisor
    respawning forever."""
    outcomes = tuple(
        PairOutcome(
            index=index,
            result=None,
            failure=(
                f"worker crash-loop: chunk {chunk_index} killed "
                f"{attempts} workers in a row"
            ),
            retries=0,
            remeasures=0,
            failure_events=("WorkerCrashLoop",),
        )
        for _benchmark, _config, index in chunk
    )
    return ChunkResult(
        chunk_index=chunk_index,
        outcomes=outcomes,
        metrics_delta={},
        invocations=0,
    )
