"""Measurement-as-a-service: the campaign server and its parts.

``repro serve`` exposes the study over HTTP (:mod:`repro.service.server`),
scheduled through a coalescing, admission-controlled job queue
(:mod:`repro.service.scheduler`), rate-limited per client
(:mod:`repro.service.ratelimit`), and made durable by a SQLite result
store that warm-starts the study cache across restarts
(:mod:`repro.service.store`).  See ``docs/service.md``.
"""

from repro.service.ratelimit import ClientRateLimiter, TokenBucket
from repro.service.scheduler import (
    CampaignScheduler,
    Draining,
    InvalidPlan,
    MeasurementFailed,
    Saturated,
    SchedulerError,
)
from repro.service.server import CampaignServer, Request, Response, serve, serve_async
from repro.service.store import ResultStore, StoreError

__all__ = [
    "CampaignScheduler",
    "CampaignServer",
    "ClientRateLimiter",
    "Draining",
    "InvalidPlan",
    "MeasurementFailed",
    "Request",
    "Response",
    "ResultStore",
    "Saturated",
    "SchedulerError",
    "StoreError",
    "TokenBucket",
    "serve",
    "serve_async",
]
