"""The campaign server's job scheduler: coalescing, admission, dispatch.

Three queueing ideas turn the batch :class:`~repro.core.study.Study`
into something that can serve heavy concurrent traffic:

**Coalescing.**  Every in-flight job is keyed by (benchmark,
configuration, fault-plan fingerprint); a request whose key is already
in flight awaits the *same* future instead of enqueuing a duplicate.
Because measurements are pure, N concurrent identical requests are one
engine execution whose single result answers all N — and the response
bytes equal the sequential ``Study.run`` record, so coalescing is
invisible to clients.

**Admission control.**  The in-flight table is bounded; past
``max_pending`` jobs a submit fails with :class:`Saturated`, which the
HTTP layer turns into ``429`` plus a ``Retry-After`` derived from the
observed per-job service time.  Backpressure therefore arrives *before*
the measurement queue grows without bound, not after the process OOMs.

**Batched dispatch.**  Jobs that arrive while a batch is measuring are
drained together on the next cycle and dispatched as one
``Study.run_pairs`` sweep — which shards across the existing parallel
executor (``jobs``), keeps the retry/fault-injection stack intact, and
merges deterministically.  All measurement happens on one dedicated
thread; the study is single-threaded by design, and the event loop only
ever awaits it.

Per-request fault plans must be *fail-stop only*: the study cache and
result store are keyed by (benchmark, configuration) alone, which is
sound precisely because retried fail-stop faults reproduce the
fault-free bytes.  A corrupting per-request plan would poison shared
state, so :meth:`CampaignScheduler.submit` rejects it.

PR 8 adds two more:

**Deadline propagation + load shedding.**  A request may carry an
absolute deadline (on the scheduler's injectable clock).  Coalesced
requests relax the shared job's deadline (latest wins; no-deadline
wins outright), and the dispatch loop sheds any job whose deadline has
already passed *before* it reaches the engine — resolved with
:class:`DeadlineExceeded` (HTTP 504), journalled as ``shed``, and
counted in ``repro_requests_shed_total``.  Never a silent drop: an
expired request always produces a response, a journal row, and a
metric increment.

**Journal coupling + recovery priority.**  Jobs carry the journal
request keys riding on them; a batch's keys are marked ``done`` in the
same SQLite transaction that persists its records
(:meth:`ResultStore.commit_batch`), and recovery replays submit with
``recovery=True``, which bypasses the ``max_pending`` admission bound —
under overload the server degrades by priority (finish what it already
owes before taking on more) instead of collapsing.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

from repro.core.results import RunResult
from repro.core.study import Study
from repro.faults.injector import coordinator_fault_point, injected
from repro.faults.plan import FaultPlan
from repro.hardware.config import Configuration
from repro.obs.metrics import default_registry
from repro.obs.slo import observe_stage
from repro.obs.tracing import default_tracer, wall_time_of
from repro.service.store import ResultStore
from repro.workloads.benchmark import Benchmark

_REGISTRY = default_registry()
_JOBS = _REGISTRY.counter(
    "repro_service_jobs_total",
    "Unique measurement jobs accepted by the scheduler",
)
_COALESCED = _REGISTRY.counter(
    "repro_service_coalesced_total",
    "Requests answered by an already-in-flight identical job",
)
_REJECTED = _REGISTRY.counter(
    "repro_service_rejected_total",
    "Requests refused by admission control, by reason",
)
_PENDING = _REGISTRY.gauge(
    "repro_service_pending_jobs",
    "Jobs currently queued or measuring in the scheduler",
)
_BATCH_PAIRS = _REGISTRY.histogram(
    "repro_service_batch_pairs",
    "Pairs dispatched per measurement batch",
    buckets=(1, 2, 4, 8, 16, 32, 64),
)
_BATCH_SECONDS = _REGISTRY.histogram(
    "repro_service_batch_seconds",
    "Wall-clock seconds per measurement batch",
)
_JOB_SECONDS = _REGISTRY.histogram(
    "repro_service_job_seconds",
    "Amortised wall seconds per job (batch seconds / batch pairs)",
)
SHED_TOTAL = _REGISTRY.counter(
    "repro_requests_shed_total",
    "Requests shed because their deadline expired before dispatch, by stage",
)

#: Quantile-informed Retry-After needs this many job-seconds samples
#: before the p95 estimate is trusted over the EWMA.
_RETRY_AFTER_MIN_SAMPLES = 8

#: Job identity: what must match for two requests to share one result.
JobKey = tuple[str, str, Optional[str]]


@dataclass
class _Job:
    """One queued measurement plus the trace context that submitted it.

    ``submit_span_id`` is the request's ``service.submit`` span (None
    when tracing is disarmed); the dispatch loop parents each job's
    ``service.schedule`` span under it, so the queue wait and the batch
    work land inside the right request's trace even though they happen
    on other tasks/threads where contextvars cannot carry the parent."""

    key: JobKey
    benchmark: Benchmark
    config: Configuration
    plan: Optional[FaultPlan]
    submit_span_id: Optional[int] = None
    enqueued_perf: float = 0.0
    #: Journal request keys riding this job (the first submitter's plus
    #: every coalescer's) — marked done/shed/failed when it resolves.
    request_keys: list[str] = field(default_factory=list)
    #: Absolute deadline on the scheduler clock; ``None`` = unbounded.
    #: Coalescing relaxes it (latest wins, no-deadline wins outright) so
    #: a shed can never 504 a waiter who asked for no deadline.
    deadline: Optional[float] = None
    #: Recovery replays bypass the admission bound (they are work the
    #: server already owes) and are flagged for the ops view.
    recovery: bool = False
    #: HTTP requests awaiting this job (1 + coalescers), so a shed can
    #: count every affected request, not just the job.
    waiters: int = 1


class SchedulerError(RuntimeError):
    """Base class for submit-time refusals."""


class Saturated(SchedulerError):
    """The bounded job table is full; retry after ``retry_after_s``."""

    def __init__(self, pending: int, retry_after_s: float) -> None:
        super().__init__(
            f"measurement queue is full ({pending} jobs in flight)"
        )
        self.retry_after_s = retry_after_s


class Draining(SchedulerError):
    """The server is shutting down and no longer accepts work."""


class InvalidPlan(SchedulerError):
    """A per-request fault plan that could corrupt shared results."""


class MeasurementFailed(SchedulerError):
    """The pair exhausted its retries and was quarantined."""


class DeadlineExceeded(SchedulerError):
    """The request's deadline expired before its work was dispatched.

    The HTTP layer maps this to 504: the client's budget ran out while
    the job sat in the queue, so the engine was never invoked for it."""


class CampaignScheduler:
    """Bounded, coalescing front-end over one :class:`Study`.

    ``max_pending`` bounds the in-flight job table (queued + measuring).
    ``jobs`` is forwarded to ``Study.run_pairs`` per batch, so batches
    shard across the parallel executor exactly like CLI sweeps do.
    ``store`` (optional) receives every newly measured record and is the
    warm-start source across restarts.
    """

    def __init__(
        self,
        study: Study,
        store: Optional[ResultStore] = None,
        max_pending: int = 64,
        jobs: Optional[int | str] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"need max_pending >= 1, got {max_pending}")
        self._study = study
        self._clock = clock
        self._store = store
        self._max_pending = max_pending
        self._jobs = jobs
        self._inflight: dict[JobKey, asyncio.Future] = {}
        self._jobs_meta: dict[JobKey, _Job] = {}
        self._queue: list[_Job] = []
        self._wake: Optional[asyncio.Event] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._worker = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-measure"
        )
        self._draining = False
        # EWMA of per-job service seconds, seeding Retry-After estimates.
        self._job_seconds = 1.0
        self.completed = 0
        self.coalesced = 0
        self.rejected = 0
        self.failed = 0
        self.shed = 0

    @property
    def study(self) -> Study:
        return self._study

    async def offload(self, fn, *args):
        """Run ``fn(*args)`` on the single measurement thread and await it.

        Every study access in the service funnels through this one-thread
        executor, so ad-hoc work (the ``/project`` frontier search)
        serializes with ``/measure`` batch dispatches instead of racing
        them on the shared study.
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._worker, fn, *args)

    def run_projection(self, nodes, samples, budget, seed):
        """Synchronous frontier search with the scheduler's study and
        worker setting; call via :meth:`offload`."""
        from repro.projection import search

        return search(
            study=self._study,
            nodes=nodes,
            samples=samples,
            budget=budget,
            seed=seed,
            jobs=self._jobs,
        )

    def now(self) -> float:
        """The scheduler's clock — the timebase request deadlines live on
        (injectable, so tests can expire deadlines without sleeping)."""
        return self._clock()

    @property
    def pending(self) -> int:
        """Jobs queued or measuring right now."""
        return len(self._inflight)

    @property
    def draining(self) -> bool:
        return self._draining

    def retry_after_s(self) -> float:
        """Suggested client back-off: the queue's estimated drain time.

        Per-job service time comes from the p95 of the observed
        job-seconds histogram once enough samples exist — a tail-aware
        estimate, so clients backing off under load do not return while a
        slow batch is still draining — and falls back to the EWMA while
        the histogram is cold."""
        per_job = self._job_seconds
        if _JOB_SECONDS.count >= _RETRY_AFTER_MIN_SAMPLES:
            per_job = max(per_job, _JOB_SECONDS.quantile(0.95))
        return max(1.0, round(self.pending * per_job, 1))

    def inflight_snapshot(self) -> list[dict[str, object]]:
        """The in-flight job table (queued + measuring) for the ops view."""
        now = time.perf_counter()
        clock_now = self._clock()
        return [
            {
                "benchmark": job.benchmark.name,
                "config": job.config.key,
                "plan": job.key[2],
                "age_s": round(now - job.enqueued_perf, 3),
                "deadline_s": (
                    None
                    if job.deadline is None
                    else round(job.deadline - clock_now, 3)
                ),
                "recovery": job.recovery,
            }
            for job in self._jobs_meta.values()
        ]

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        if self._dispatcher is not None:
            raise RuntimeError("scheduler already started")
        self._wake = asyncio.Event()
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="repro-service-dispatch"
        )

    async def drain(
        self, deadline_s: Optional[float] = None
    ) -> dict[str, object]:
        """Stop admitting, finish every in-flight job, release workers.

        ``deadline_s`` bounds how long the drain waits for in-flight
        measurements (measured on the injectable ``clock``): past it the
        dispatcher is cancelled, every unresolved request fails with
        :class:`Draining`, and the measurement thread is abandoned rather
        than joined — a hung measurement can no longer hold SIGTERM
        hostage.  ``None`` preserves the wait-forever behaviour.

        Returns a summary dict for the final health report (including
        ``drain_timed_out`` and ``cancelled``).  Idempotent: a second
        drain returns the same summary without re-draining.
        """
        self._draining = True
        if self._wake is not None:
            self._wake.set()
        timed_out = False
        if self._dispatcher is not None:
            if deadline_s is None:
                await self._dispatcher
            else:
                deadline = self._clock() + deadline_s
                remaining = deadline - self._clock()
                finished = False
                if remaining > 0:
                    done, _ = await asyncio.wait(
                        {self._dispatcher}, timeout=remaining
                    )
                    finished = bool(done)
                if not finished:
                    timed_out = True
                    self._dispatcher.cancel()
                    try:
                        await self._dispatcher
                    except asyncio.CancelledError:
                        pass
            self._dispatcher = None
        cancelled = 0
        if timed_out:
            # Escalate: fail whatever is still unresolved and walk away
            # from the measurement thread instead of joining a hung one.
            error = Draining("drain deadline exceeded; measurement cancelled")
            for key in list(self._inflight):
                self._resolve(key, error=error)
                cancelled += 1
            self._queue.clear()
            self._worker.shutdown(wait=False, cancel_futures=True)
            # The fleet's close is SIGKILL-bounded, so it is safe here;
            # joining a possibly-hung SweepPool is not.
            self._study.close_fleet()
        else:
            self._worker.shutdown(wait=True)
            self._study.close_pool()
        if self._store is not None:
            self._store.flush()
        return {
            "completed": self.completed,
            "coalesced": self.coalesced,
            "rejected": self.rejected,
            "failed": self.failed,
            "shed": self.shed,
            "quarantined": len(self._study.quarantined),
            "store_records": len(self._store) if self._store is not None else 0,
            "drain_timed_out": timed_out,
            "cancelled": cancelled,
        }

    # -- submission ------------------------------------------------------------

    @staticmethod
    def job_key(
        benchmark: Benchmark,
        config: Configuration,
        plan: Optional[FaultPlan] = None,
    ) -> JobKey:
        return (
            benchmark.name,
            config.key,
            plan.fingerprint if plan is not None else None,
        )

    async def submit(
        self,
        benchmark: Benchmark,
        config: Configuration,
        plan: Optional[FaultPlan] = None,
        *,
        request_key: Optional[str] = None,
        deadline: Optional[float] = None,
        recovery: bool = False,
    ) -> RunResult:
        """One measurement request: coalesced, admitted, and awaited.

        ``request_key`` is the request's journal key (already admitted by
        the server); it rides the job so completion can be marked in the
        record-persisting transaction.  ``deadline`` is absolute on the
        scheduler clock; expired work is shed with
        :class:`DeadlineExceeded` instead of reaching the engine.
        ``recovery=True`` marks a journal replay: it bypasses the
        ``max_pending`` bound, because replays are work the server
        already accepted — shedding *new* work first is the priority
        order that keeps overload from collapsing into lost history.

        Raises :class:`Draining`, :class:`Saturated`, :class:`InvalidPlan`,
        :class:`DeadlineExceeded` at submit time and
        :class:`MeasurementFailed` when the pair exhausts its retries.
        """
        if self._wake is None:
            raise RuntimeError("scheduler not started")
        # The submit span stays open across the await, so its duration is
        # the request's full scheduling + measurement wait; refusals
        # (Draining/Saturated/InvalidPlan) close it via the exception.
        with default_tracer().span(
            "service.submit", benchmark=benchmark.name, config=config.key
        ) as span:
            if self._draining:
                raise Draining("server is draining; no new measurements")
            if plan is not None and not plan.fail_stop_only:
                raise InvalidPlan(
                    "per-request fault plans must be fail-stop only "
                    "(corrupting faults would poison the shared result cache)"
                )
            if deadline is not None and deadline <= self._clock():
                # Dead on arrival: journal it as shed and refuse before
                # any queue state exists for it.
                self._count_shed("admit", 1, [request_key] if request_key else [])
                raise DeadlineExceeded(
                    "deadline expired before the request could be queued"
                )
            key = self.job_key(benchmark, config, plan)
            future = self._inflight.get(key)
            if future is not None:
                self.coalesced += 1
                _COALESCED.inc()
                span.set_attribute("coalesced", True)
                job = self._jobs_meta.get(key)
                if job is not None:
                    job.waiters += 1
                    if request_key is not None:
                        job.request_keys.append(request_key)
                    # Latest deadline wins; a no-deadline waiter unbounds
                    # the job (shedding it would 504 that waiter).
                    if job.deadline is not None:
                        job.deadline = (
                            None if deadline is None
                            else max(job.deadline, deadline)
                        )
                return await future
            if not recovery and len(self._inflight) >= self._max_pending:
                self.rejected += 1
                _REJECTED.labels(reason="saturated").inc()
                raise Saturated(len(self._inflight), self.retry_after_s())
            future = asyncio.get_running_loop().create_future()
            self._inflight[key] = future
            job = _Job(
                key=key,
                benchmark=benchmark,
                config=config,
                plan=plan,
                submit_span_id=span.span_id,
                enqueued_perf=time.perf_counter(),
                request_keys=[request_key] if request_key is not None else [],
                deadline=deadline,
                recovery=recovery,
            )
            self._jobs_meta[key] = job
            self._queue.append(job)
            _JOBS.inc()
            _PENDING.set(len(self._inflight))
            self._wake.set()
            return await future

    def _count_shed(
        self, stage: str, requests: int, request_keys: Sequence[str]
    ) -> None:
        """Account for shed work: metric + journal, never silent."""
        self.shed += requests
        SHED_TOTAL.labels(stage=stage).inc(requests)
        if self._store is not None and request_keys:
            self._store.journal_shed(
                request_keys, f"deadline expired before {stage}"
            )

    # -- dispatch --------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            if not self._queue:
                if self._draining and not self._inflight:
                    return
                # clear-then-wait is race-free here: submit/drain only run
                # while this coroutine is suspended, never between the
                # clear and the wait.
                self._wake.clear()
                await self._wake.wait()
                continue
            batch, self._queue = self._queue, []
            coordinator_fault_point("schedule")
            # Load shedding: a job whose deadline has already passed is
            # resolved (504) and journalled *here*, before the engine is
            # ever invoked for it — the shed is counted, never silent.
            # (The clock is only read when a deadline exists: tests
            # inject finite tick sequences for the drain path.)
            live: list[_Job] = batch
            if any(job.deadline is not None for job in batch):
                now = self._clock()
                live = []
                for job in batch:
                    if job.deadline is not None and job.deadline <= now:
                        self._count_shed(
                            "dispatch", job.waiters, job.request_keys
                        )
                        self._resolve(
                            job.key,
                            error=DeadlineExceeded(
                                "deadline expired while the job was queued; "
                                "shed before dispatch"
                            ),
                        )
                    else:
                        live.append(job)
            # One sweep per distinct plan: the injector is process-global,
            # so a batch's plan must be uniform while it measures.
            groups: dict[Optional[str], list[_Job]] = {}
            for job in live:
                groups.setdefault(job.key[2], []).append(job)
            for jobs in groups.values():
                plan = jobs[0].plan
                pairs = [(job.benchmark, job.config) for job in jobs]
                schedule_spans = self._record_schedule_spans(jobs)
                # Snapshot each pair's journal keys on the event loop —
                # the measurement thread marks exactly these done in the
                # record-persisting transaction; coalescers who attach
                # later are completed (idempotently) at resolve time.
                batch_keys = {
                    (job.benchmark.name, job.config.key): list(job.request_keys)
                    for job in jobs
                }
                started = time.perf_counter()
                try:
                    results, failures = await loop.run_in_executor(
                        self._worker,
                        self._measure_batch,
                        plan,
                        pairs,
                        schedule_spans,
                        batch_keys,
                    )
                except asyncio.CancelledError:
                    # Drain escalation: leave the jobs unresolved so the
                    # drain path can fail them all with Draining.
                    raise
                except BaseException as exc:  # noqa: BLE001 - fan the error out
                    for job in jobs:
                        self._resolve(job.key, error=exc)
                    continue
                elapsed = time.perf_counter() - started
                _BATCH_PAIRS.observe(len(pairs))
                _BATCH_SECONDS.observe(elapsed)
                observe_stage("batch", elapsed)
                _JOB_SECONDS.observe(elapsed / max(1, len(pairs)))
                self._job_seconds = 0.7 * self._job_seconds + 0.3 * (
                    elapsed / max(1, len(pairs))
                )
                for job in jobs:
                    pair_key = (job.benchmark.name, job.config.key)
                    if pair_key in results:
                        self._resolve(job.key, result=results[pair_key])
                    else:
                        self.failed += 1
                        self._resolve(
                            job.key,
                            error=MeasurementFailed(
                                failures.get(
                                    pair_key, "measurement produced no result"
                                )
                            ),
                        )

    def _record_schedule_spans(
        self, jobs: Sequence[_Job]
    ) -> dict[tuple[str, str], int]:
        """One finished ``service.schedule`` span per job, covering its
        queue wait (enqueue → dispatch), parented under the job's submit
        span.  Returns ``{(benchmark, config): schedule span id}`` so the
        measurement thread can hang the batch's work under each owner."""
        tracer = default_tracer()
        spans: dict[tuple[str, str], int] = {}
        now = time.perf_counter()
        for job in jobs:
            wait_s = max(0.0, now - job.enqueued_perf)
            observe_stage("schedule", wait_s)
            if not tracer.is_enabled or job.submit_span_id is None:
                continue
            span = tracer.record_span(
                "service.schedule",
                parent_id=job.submit_span_id,
                start_unix_s=wall_time_of(job.enqueued_perf),
                duration_s=wait_s,
                benchmark=job.benchmark.name,
                config=job.config.key,
                batch_pairs=len(jobs),
            )
            if span.span_id is not None:
                spans[(job.benchmark.name, job.config.key)] = span.span_id
        return spans

    def _resolve(
        self,
        key: JobKey,
        result: Optional[RunResult] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        future = self._inflight.pop(key, None)
        job = self._jobs_meta.pop(key, None)
        _PENDING.set(len(self._inflight))
        self._journal_transition(job, error)
        if future is None or future.done():
            return
        if error is not None:
            future.set_exception(error)
        else:
            self.completed += 1
            future.set_result(result)

    def _journal_transition(
        self, job: Optional[_Job], error: Optional[BaseException]
    ) -> None:
        """Settle a resolving job's journal keys.  Every transition here
        is idempotent (only ``pending`` rows move), so this can safely
        overlap the batch transaction's own completions.

        Draining and cancellation deliberately *leave the keys pending*:
        a drain that expires mid-batch is exactly the crash-shaped case
        the journal exists for, and recovery will replay those requests
        byte-identically on the next ``--recover`` start."""
        if job is None or self._store is None or not job.request_keys:
            return
        if error is None:
            self._store.journal_complete(job.request_keys)
        elif isinstance(error, DeadlineExceeded):
            self._store.journal_shed(job.request_keys, str(error))
        elif isinstance(error, (Draining, asyncio.CancelledError)):
            pass
        else:
            self._store.journal_fail(job.request_keys, str(error))

    def _measure_batch(
        self,
        plan: Optional[FaultPlan],
        pairs: Sequence[tuple[Benchmark, Configuration]],
        schedule_spans: Optional[Mapping[tuple[str, str], int]] = None,
        batch_keys: Optional[Mapping[tuple[str, str], Sequence[str]]] = None,
    ) -> tuple[dict[tuple[str, str], RunResult], dict[tuple[str, str], str]]:
        """Measure one batch on the measurement thread.

        Returns results and quarantine reasons keyed by (benchmark name,
        config key).  Newly measured records are persisted to the store
        before the event loop sees them, so a crash after a response was
        sent can never lose the record behind it.

        ``batch_keys`` maps each pair to the journal request keys riding
        it; the keys of *successful* pairs are marked ``done`` in the
        same transaction that persists the batch's records
        (:meth:`ResultStore.commit_batch`) — the exactly-once coupling.
        A coordinator crash before that commit leaves every key pending
        and no new rows visible; after it, both are durable together.

        ``run_in_executor`` does not carry contextvars onto this thread,
        so the batch span takes an explicit parent: the first job's
        schedule span.  Afterwards each pair's measurement subtree is
        re-homed under *its own* job's schedule span, so every request's
        trace contains exactly its own measurement work.
        """
        tracer = default_tracer()
        schedule_spans = schedule_spans or {}
        batch_keys = batch_keys or {}
        batch_parent = next(iter(schedule_spans.values()), None)
        with tracer.child_span(
            "service.batch",
            parent_id=batch_parent,
            pairs=len(pairs),
            plan=plan.fingerprint if plan is not None else None,
        ) as batch_span:
            coordinator_fault_point("batch")
            scope = injected(plan) if plan is not None else nullcontext()
            with scope:
                outcome = self._study.run_pairs(pairs, jobs=self._jobs)
            results = {
                (r.benchmark_name, r.config_key): r for r in outcome
            }
            if self._store is not None:
                fresh = [
                    result
                    for key, result in results.items()
                    if key not in self._store
                ]
                done_keys = [
                    request_key
                    for pair_key in results
                    for request_key in batch_keys.get(pair_key, ())
                ]
                store_started = time.perf_counter()
                coordinator_fault_point("store")
                with tracer.span(
                    "store.put", records=len(fresh), journal_done=len(done_keys)
                ):
                    self._store.commit_batch(fresh, done_keys)
                observe_stage("store", time.perf_counter() - store_started)
        if batch_span.span_id is not None and schedule_spans:
            tracer.reparent_children(
                batch_span.span_id,
                lambda span: schedule_spans.get(
                    (
                        span.attributes.get("benchmark"),
                        span.attributes.get("config"),
                    )
                ),
            )
        failures: dict[tuple[str, str], str] = {}
        if outcome.health is not None:
            for entry in outcome.health.quarantined:
                failures[(entry.benchmark_name, entry.config_key)] = entry.reason
        return results, failures
