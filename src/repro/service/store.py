"""SQLite-backed persistent result store for the campaign server.

The JSONL checkpoint (PR 2) is an append-only crash log: perfect for
resuming one interrupted campaign, wrong for a long-lived server that
must answer queries from every measurement it has ever made.  This store
is the serving path's durability layer: one row per (benchmark,
configuration) holding the full-precision :meth:`RunResult.as_record`
JSON, plus a metadata table carrying the run fingerprint
(:func:`repro.core.study.run_fingerprint`) so a restarted server refuses
to serve records measured under different run parameters instead of
silently mixing datasets.

Records round-trip exactly: JSON serialises floats via ``repr``, so a
record read back from the store re-serialises to the byte-identical
response a fresh measurement would have produced — which is what lets a
warm-started server honour the byte-identity guarantee without
re-measuring.

Since PR 8 the same database also holds the **request journal**: a
write-ahead record of every admitted POST /measure, appended *before*
the request is scheduled and marked complete *in the same transaction*
that persists its result rows (:meth:`ResultStore.commit_batch`).  That
transactional coupling is the exactly-once-effects argument: a request
is either journalled-pending with no visible result (crash → recovery
replays it) or journalled-done with its records durable (crash → the
retry is served straight from the store) — there is no intermediate
state in which a result exists but the journal still owes work, so a
replay can never re-run the engine for a completed request.

Thread-safety: the server touches the store from the event-loop thread
(reads) and the measurement thread (writes), so the single shared
connection is guarded by one re-entrant lock.  SQLite serialises at the
file level anyway; the lock just keeps cursor use coherent.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping, Optional, Sequence

from repro.core.results import RunResult
from repro.obs.metrics import default_registry

_REGISTRY = default_registry()
_WRITES = _REGISTRY.counter(
    "repro_store_writes_total",
    "Result records persisted to the SQLite result store",
)
_READS = _REGISTRY.counter(
    "repro_store_reads_total",
    "Result records served back out of the SQLite result store",
)
_JOURNAL = _REGISTRY.counter(
    "repro_journal_transitions_total",
    "Request-journal state transitions, by resulting status",
)

#: v1: results + meta tables (PR 4).  v2: adds the request journal.  A
#: v1 store opened by v2 code is migrated in place (the journal table is
#: purely additive); anything else refuses with a hint — exit 4 at the
#: CLI, matching the fingerprint guard.
SCHEMA_VERSION = 2

#: Version of the journal table's own shape, tracked separately so a
#: future journal-only change doesn't force a full-store version bump.
JOURNAL_SCHEMA_VERSION = 1

#: Journal lifecycle states (see docs/robustness.md for the diagram):
#: ``pending`` → admitted, effects not yet durable; ``done`` → records
#: committed in the same transaction; ``shed`` → deadline expired before
#: dispatch; ``failed`` → measurement raised.  ``shed``/``failed`` rows
#: re-admit to ``pending`` when the same key is retried.
JOURNAL_STATUSES = ("pending", "done", "shed", "failed")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    benchmark TEXT NOT NULL,
    config    TEXT NOT NULL,
    record    TEXT NOT NULL,
    created_s REAL NOT NULL,
    PRIMARY KEY (benchmark, config)
);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS journal (
    request_key TEXT PRIMARY KEY,
    benchmark   TEXT NOT NULL,
    config      TEXT NOT NULL,
    plan        TEXT,
    plan_fp     TEXT,
    status      TEXT NOT NULL DEFAULT 'pending',
    detail      TEXT,
    admitted_s  REAL NOT NULL,
    completed_s REAL,
    attempts    INTEGER NOT NULL DEFAULT 1
);
CREATE INDEX IF NOT EXISTS journal_status ON journal (status);
"""


class StoreError(RuntimeError):
    """The store cannot be used as asked (version or fingerprint clash)."""


class JournalConflict(StoreError):
    """An idempotency key was reused for a *different* request.

    Serving the stored result would silently answer the wrong question;
    the server surfaces this as 409 Conflict instead."""


@dataclass(frozen=True)
class JournalEntry:
    """One journalled request, as read back from the store."""

    request_key: str
    benchmark: str
    config: str
    plan: Optional[str]  # canonical FaultPlan JSON, or None
    plan_fp: Optional[str]
    status: str
    detail: Optional[str]
    admitted_s: float
    completed_s: Optional[float]
    attempts: int


class ResultStore:
    """Durable (benchmark, configuration) -> :class:`RunResult` map.

    ``path`` may be ``":memory:"`` for tests; anything else is a SQLite
    database file created on first use.  The store is a *superset* cache:
    ``put`` is idempotent (INSERT OR REPLACE on the pair key) and
    :meth:`records` returns rows in sorted (benchmark, config) order, the
    same canonical order ``Study.save_checkpoint`` uses.
    """

    def __init__(
        self,
        path: Path | str = ":memory:",
        busy_timeout_s: float = 5.0,
    ) -> None:
        self._path = str(path)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(self._path, check_same_thread=False)
        with self._lock:
            # Crash robustness for on-disk stores: WAL keeps a torn write
            # (a writer SIGKILLed mid-`put`) from corrupting committed
            # rows — readers see the last committed snapshot and recovery
            # happens automatically on the next open.  NORMAL sync is the
            # WAL-safe durability point (fsync on checkpoint, not per
            # commit); the busy timeout makes concurrent openers wait for
            # a writer's lock instead of failing with "database is
            # locked".  ``:memory:`` has no journal, so leave it alone.
            if self._path != ":memory:":
                self._conn.execute("PRAGMA journal_mode=WAL")
                self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute(
                f"PRAGMA busy_timeout={int(busy_timeout_s * 1000)}"
            )
            self._conn.executescript(_SCHEMA)
            self._check_schema_version()

    def _check_schema_version(self) -> None:
        """Adopt, migrate, or refuse based on the stored schema versions.

        A fresh store adopts the current versions; a v1 store (PR 4-7,
        pre-journal) migrates in place because v2 only *adds* the journal
        table — existing result rows and the fingerprint are untouched.
        Any other version refuses with a hint (the CLI maps this to
        exit 4, like a fingerprint mismatch) rather than guessing at a
        shape this build does not understand."""
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is None:
            self._conn.execute(
                "INSERT INTO meta (key, value) VALUES (?, ?)",
                ("schema_version", str(SCHEMA_VERSION)),
            )
        elif int(row[0]) == 1:
            self._conn.execute(
                "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                (str(SCHEMA_VERSION),),
            )
        elif int(row[0]) != SCHEMA_VERSION:
            raise StoreError(
                f"{self._path}: store schema v{row[0]} != supported "
                f"v{SCHEMA_VERSION}; this store was written by a "
                "different build — point the server at a fresh --store "
                "or use the build that created it"
            )
        journal_row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'journal_schema_version'"
        ).fetchone()
        if journal_row is None:
            self._conn.execute(
                "INSERT INTO meta (key, value) VALUES (?, ?)",
                ("journal_schema_version", str(JOURNAL_SCHEMA_VERSION)),
            )
        elif int(journal_row[0]) != JOURNAL_SCHEMA_VERSION:
            raise StoreError(
                f"{self._path}: journal schema v{journal_row[0]} != "
                f"supported v{JOURNAL_SCHEMA_VERSION}; recovery cannot "
                "safely replay a journal it does not understand — point "
                "the server at a fresh --store or use the build that "
                "created it"
            )
        self._conn.commit()

    @property
    def path(self) -> str:
        return self._path

    # -- result rows ----------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            (count,) = self._conn.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()
        return int(count)

    def __contains__(self, key: tuple[str, str]) -> bool:
        benchmark, config = key
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM results WHERE benchmark = ? AND config = ?",
                (benchmark, config),
            ).fetchone()
        return row is not None

    def put(self, result: RunResult) -> None:
        self.put_many((result,))

    def put_many(self, results: Iterable[RunResult]) -> int:
        """Persist results (idempotently); returns the rows written."""
        rows = [
            (
                result.benchmark_name,
                result.config_key,
                json.dumps(result.as_record()),
                time.time(),
            )
            for result in results
        ]
        if not rows:
            return 0
        with self._lock:
            self._conn.executemany(
                "INSERT OR REPLACE INTO results "
                "(benchmark, config, record, created_s) VALUES (?, ?, ?, ?)",
                rows,
            )
            self._conn.commit()
        _WRITES.inc(len(rows))
        return len(rows)

    def get(self, benchmark: str, config: str) -> Optional[RunResult]:
        with self._lock:
            row = self._conn.execute(
                "SELECT record FROM results WHERE benchmark = ? AND config = ?",
                (benchmark, config),
            ).fetchone()
        if row is None:
            return None
        _READS.inc()
        return RunResult.from_record(json.loads(row[0]))

    def rowid(self, benchmark: str, config: str) -> Optional[int]:
        """The SQLite rowid behind one stored pair, or ``None``.

        The durable correlation handle the server's event log records
        next to the request and trace IDs: a row outlives the process,
        so an audit can join a served response back to the exact stored
        record that produced it."""
        with self._lock:
            row = self._conn.execute(
                "SELECT rowid FROM results WHERE benchmark = ? AND config = ?",
                (benchmark, config),
            ).fetchone()
        return None if row is None else int(row[0])

    def records(
        self,
        benchmark: Optional[str] = None,
        config: Optional[str] = None,
    ) -> list[RunResult]:
        """Stored results in sorted (benchmark, config) order, optionally
        filtered to one benchmark and/or one configuration key."""
        query = "SELECT record FROM results"
        clauses, args = [], []
        if benchmark is not None:
            clauses.append("benchmark = ?")
            args.append(benchmark)
        if config is not None:
            clauses.append("config = ?")
            args.append(config)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY benchmark, config"
        with self._lock:
            rows = self._conn.execute(query, args).fetchall()
        _READS.inc(len(rows))
        return [RunResult.from_record(json.loads(row[0])) for row in rows]

    # -- request journal -------------------------------------------------------

    _JOURNAL_COLS = (
        "request_key, benchmark, config, plan, plan_fp, status, detail, "
        "admitted_s, completed_s, attempts"
    )

    @staticmethod
    def _entry(row: Sequence) -> JournalEntry:
        return JournalEntry(
            request_key=str(row[0]),
            benchmark=str(row[1]),
            config=str(row[2]),
            plan=None if row[3] is None else str(row[3]),
            plan_fp=None if row[4] is None else str(row[4]),
            status=str(row[5]),
            detail=None if row[6] is None else str(row[6]),
            admitted_s=float(row[7]),
            completed_s=None if row[8] is None else float(row[8]),
            attempts=int(row[9]),
        )

    def journal_admit(
        self,
        request_key: str,
        benchmark: str,
        config: str,
        plan: Optional[str] = None,
        plan_fp: Optional[str] = None,
    ) -> str:
        """Write-ahead admit: durably record the request *before* it is
        scheduled.  Returns the key's prior status — ``"new"`` for a
        first admission, ``"pending"`` for a retry of in-flight work
        (the scheduler coalesces it), ``"done"`` when the result is
        already durable (the caller serves it straight from the store,
        zero engine work), and ``"shed"``/``"failed"`` when a terminal
        row was re-opened to ``pending`` for another try.

        Reusing a key with a different (benchmark, config, plan) raises
        :class:`JournalConflict` — an idempotency key names *one*
        request, and answering with another request's bytes would be a
        silent lie."""
        with self._lock:
            row = self._conn.execute(
                f"SELECT {self._JOURNAL_COLS} FROM journal "
                "WHERE request_key = ?",
                (request_key,),
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO journal (request_key, benchmark, config, "
                    "plan, plan_fp, status, admitted_s, attempts) "
                    "VALUES (?, ?, ?, ?, ?, 'pending', ?, 1)",
                    (request_key, benchmark, config, plan, plan_fp, time.time()),
                )
                self._conn.commit()
                _JOURNAL.labels(status="pending").inc()
                return "new"
            entry = self._entry(row)
            if (entry.benchmark, entry.config, entry.plan_fp) != (
                benchmark,
                config,
                plan_fp,
            ):
                raise JournalConflict(
                    f"idempotency key {request_key!r} was already used for "
                    f"({entry.benchmark}, {entry.config}, "
                    f"plan={entry.plan_fp or 'none'}); it cannot also name "
                    f"({benchmark}, {config}, plan={plan_fp or 'none'})"
                )
            if entry.status in ("shed", "failed"):
                # Terminal-but-retryable: re-open for another attempt.
                self._conn.execute(
                    "UPDATE journal SET status = 'pending', detail = NULL, "
                    "completed_s = NULL, attempts = attempts + 1 "
                    "WHERE request_key = ?",
                    (request_key,),
                )
                self._conn.commit()
                _JOURNAL.labels(status="pending").inc()
            return entry.status

    def journal_entry(self, request_key: str) -> Optional[JournalEntry]:
        with self._lock:
            row = self._conn.execute(
                f"SELECT {self._JOURNAL_COLS} FROM journal "
                "WHERE request_key = ?",
                (request_key,),
            ).fetchone()
        return None if row is None else self._entry(row)

    def journal_pending(self) -> list[JournalEntry]:
        """Unfinished entries in admission order — the recovery worklist."""
        with self._lock:
            rows = self._conn.execute(
                f"SELECT {self._JOURNAL_COLS} FROM journal "
                "WHERE status = 'pending' ORDER BY admitted_s, request_key"
            ).fetchall()
        return [self._entry(row) for row in rows]

    def journal_counts(self) -> dict[str, int]:
        """Row counts by status (every known status present, 0 or not)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT status, COUNT(*) FROM journal GROUP BY status"
            ).fetchall()
        counts = {status: 0 for status in JOURNAL_STATUSES}
        for status, count in rows:
            counts[str(status)] = int(count)
        return counts

    def _journal_finish(
        self,
        keys: Sequence[str],
        status: str,
        detail: Optional[str],
        cursor=None,
    ) -> int:
        """Move pending keys to a terminal status; returns rows changed.
        Only ``pending`` rows transition — finishing is idempotent, so a
        late duplicate completion cannot clobber an earlier one."""
        if not keys:
            return 0
        conn = cursor if cursor is not None else self._conn
        now = time.time()
        changed = 0
        for key in keys:
            result = conn.execute(
                "UPDATE journal SET status = ?, detail = ?, completed_s = ? "
                "WHERE request_key = ? AND status = 'pending'",
                (status, detail, now, key),
            )
            changed += result.rowcount
        if changed:
            _JOURNAL.labels(status=status).inc(changed)
        return changed

    def journal_complete(self, keys: Sequence[str]) -> int:
        """Mark pending keys done *without* new result rows — the path
        for requests wholly served from cache or the store."""
        with self._lock:
            changed = self._journal_finish(keys, "done", None)
            self._conn.commit()
        return changed

    def journal_shed(self, keys: Sequence[str], detail: str) -> int:
        """Mark pending keys shed (deadline expired before dispatch)."""
        with self._lock:
            changed = self._journal_finish(keys, "shed", detail)
            self._conn.commit()
        return changed

    def journal_fail(self, keys: Sequence[str], detail: str) -> int:
        """Mark pending keys failed (measurement raised)."""
        with self._lock:
            changed = self._journal_finish(keys, "failed", detail)
            self._conn.commit()
        return changed

    def commit_batch(
        self,
        results: Iterable[RunResult],
        done_keys: Sequence[str] = (),
    ) -> int:
        """Persist a batch's result rows *and* mark its journal keys done
        in one SQLite transaction — the exactly-once coupling point.

        A crash strictly before the commit leaves every key pending and
        no new result visible (recovery re-measures, reproducing the
        same bytes from the seeded engine); a crash strictly after
        leaves the results durable and the keys done (recovery serves
        the store).  No interleaving exposes a half-state, because WAL
        commits are atomic.  Returns the result rows written."""
        rows = [
            (
                result.benchmark_name,
                result.config_key,
                json.dumps(result.as_record()),
                time.time(),
            )
            for result in results
        ]
        with self._lock:
            if rows:
                self._conn.executemany(
                    "INSERT OR REPLACE INTO results "
                    "(benchmark, config, record, created_s) VALUES (?, ?, ?, ?)",
                    rows,
                )
            self._journal_finish(done_keys, "done", None)
            self._conn.commit()
        if rows:
            _WRITES.inc(len(rows))
        return len(rows)

    # -- run fingerprint -------------------------------------------------------

    def get_meta(self, key: str) -> Optional[str]:
        with self._lock:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = ?", (key,)
            ).fetchone()
        return None if row is None else str(row[0])

    def set_meta(self, key: str, value: str) -> None:
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                (key, value),
            )
            self._conn.commit()

    def check_fingerprint(self, current: Mapping[str, object]) -> None:
        """Bind the store to one run fingerprint.

        A fresh store adopts ``current``; an existing store must match
        on seed and invocation scale, because records measured at
        another scale are *different data*, and serving them as a warm
        start would silently break the byte-identity guarantee.  The
        fault plan is deliberately *not* compared: a faulty invocation
        is retried or quarantined, never persisted wrong, so stored
        bytes are plan-invariant — and ``--recover`` must be able to
        restart against the store *without* the plan that crashed the
        previous coordinator.  Raises :class:`StoreError` on mismatch.
        """
        from repro.core.study import fingerprint_mismatch

        stored = self.get_meta("fingerprint")
        if stored is None:
            self.set_meta("fingerprint", json.dumps(dict(current), sort_keys=True))
            return
        mismatch = fingerprint_mismatch(
            json.loads(stored), current, fields=("root_seed", "invocation_scale")
        )
        if mismatch is not None:
            raise StoreError(
                f"{self._path}: store was written by a different run "
                f"({mismatch}); point the server at a fresh --store or "
                f"re-launch with the matching flags"
            )

    # -- warm start / lifecycle ------------------------------------------------

    def warm_start(self, study) -> int:
        """Preload every stored record into ``study``'s result cache;
        returns the number restored (skipping pairs already cached)."""
        return study.restore_records(self.records())

    def flush(self) -> None:
        with self._lock:
            self._conn.commit()

    def close(self) -> None:
        with self._lock:
            self._conn.commit()
            self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
