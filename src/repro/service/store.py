"""SQLite-backed persistent result store for the campaign server.

The JSONL checkpoint (PR 2) is an append-only crash log: perfect for
resuming one interrupted campaign, wrong for a long-lived server that
must answer queries from every measurement it has ever made.  This store
is the serving path's durability layer: one row per (benchmark,
configuration) holding the full-precision :meth:`RunResult.as_record`
JSON, plus a metadata table carrying the run fingerprint
(:func:`repro.core.study.run_fingerprint`) so a restarted server refuses
to serve records measured under different run parameters instead of
silently mixing datasets.

Records round-trip exactly: JSON serialises floats via ``repr``, so a
record read back from the store re-serialises to the byte-identical
response a fresh measurement would have produced — which is what lets a
warm-started server honour the byte-identity guarantee without
re-measuring.

Thread-safety: the server touches the store from the event-loop thread
(reads) and the measurement thread (writes), so the single shared
connection is guarded by one re-entrant lock.  SQLite serialises at the
file level anyway; the lock just keeps cursor use coherent.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path
from typing import Iterable, Mapping, Optional

from repro.core.results import RunResult
from repro.obs.metrics import default_registry

_REGISTRY = default_registry()
_WRITES = _REGISTRY.counter(
    "repro_store_writes_total",
    "Result records persisted to the SQLite result store",
)
_READS = _REGISTRY.counter(
    "repro_store_reads_total",
    "Result records served back out of the SQLite result store",
)

SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    benchmark TEXT NOT NULL,
    config    TEXT NOT NULL,
    record    TEXT NOT NULL,
    created_s REAL NOT NULL,
    PRIMARY KEY (benchmark, config)
);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


class StoreError(RuntimeError):
    """The store cannot be used as asked (version or fingerprint clash)."""


class ResultStore:
    """Durable (benchmark, configuration) -> :class:`RunResult` map.

    ``path`` may be ``":memory:"`` for tests; anything else is a SQLite
    database file created on first use.  The store is a *superset* cache:
    ``put`` is idempotent (INSERT OR REPLACE on the pair key) and
    :meth:`records` returns rows in sorted (benchmark, config) order, the
    same canonical order ``Study.save_checkpoint`` uses.
    """

    def __init__(
        self,
        path: Path | str = ":memory:",
        busy_timeout_s: float = 5.0,
    ) -> None:
        self._path = str(path)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(self._path, check_same_thread=False)
        with self._lock:
            # Crash robustness for on-disk stores: WAL keeps a torn write
            # (a writer SIGKILLed mid-`put`) from corrupting committed
            # rows — readers see the last committed snapshot and recovery
            # happens automatically on the next open.  NORMAL sync is the
            # WAL-safe durability point (fsync on checkpoint, not per
            # commit); the busy timeout makes concurrent openers wait for
            # a writer's lock instead of failing with "database is
            # locked".  ``:memory:`` has no journal, so leave it alone.
            if self._path != ":memory:":
                self._conn.execute("PRAGMA journal_mode=WAL")
                self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute(
                f"PRAGMA busy_timeout={int(busy_timeout_s * 1000)}"
            )
            self._conn.executescript(_SCHEMA)
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO meta (key, value) VALUES (?, ?)",
                    ("schema_version", str(SCHEMA_VERSION)),
                )
                self._conn.commit()
            elif int(row[0]) != SCHEMA_VERSION:
                raise StoreError(
                    f"{self._path}: store schema v{row[0]} != "
                    f"supported v{SCHEMA_VERSION}"
                )

    @property
    def path(self) -> str:
        return self._path

    # -- result rows ----------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            (count,) = self._conn.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()
        return int(count)

    def __contains__(self, key: tuple[str, str]) -> bool:
        benchmark, config = key
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM results WHERE benchmark = ? AND config = ?",
                (benchmark, config),
            ).fetchone()
        return row is not None

    def put(self, result: RunResult) -> None:
        self.put_many((result,))

    def put_many(self, results: Iterable[RunResult]) -> int:
        """Persist results (idempotently); returns the rows written."""
        rows = [
            (
                result.benchmark_name,
                result.config_key,
                json.dumps(result.as_record()),
                time.time(),
            )
            for result in results
        ]
        if not rows:
            return 0
        with self._lock:
            self._conn.executemany(
                "INSERT OR REPLACE INTO results "
                "(benchmark, config, record, created_s) VALUES (?, ?, ?, ?)",
                rows,
            )
            self._conn.commit()
        _WRITES.inc(len(rows))
        return len(rows)

    def get(self, benchmark: str, config: str) -> Optional[RunResult]:
        with self._lock:
            row = self._conn.execute(
                "SELECT record FROM results WHERE benchmark = ? AND config = ?",
                (benchmark, config),
            ).fetchone()
        if row is None:
            return None
        _READS.inc()
        return RunResult.from_record(json.loads(row[0]))

    def rowid(self, benchmark: str, config: str) -> Optional[int]:
        """The SQLite rowid behind one stored pair, or ``None``.

        The durable correlation handle the server's event log records
        next to the request and trace IDs: a row outlives the process,
        so an audit can join a served response back to the exact stored
        record that produced it."""
        with self._lock:
            row = self._conn.execute(
                "SELECT rowid FROM results WHERE benchmark = ? AND config = ?",
                (benchmark, config),
            ).fetchone()
        return None if row is None else int(row[0])

    def records(
        self,
        benchmark: Optional[str] = None,
        config: Optional[str] = None,
    ) -> list[RunResult]:
        """Stored results in sorted (benchmark, config) order, optionally
        filtered to one benchmark and/or one configuration key."""
        query = "SELECT record FROM results"
        clauses, args = [], []
        if benchmark is not None:
            clauses.append("benchmark = ?")
            args.append(benchmark)
        if config is not None:
            clauses.append("config = ?")
            args.append(config)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY benchmark, config"
        with self._lock:
            rows = self._conn.execute(query, args).fetchall()
        _READS.inc(len(rows))
        return [RunResult.from_record(json.loads(row[0])) for row in rows]

    # -- run fingerprint -------------------------------------------------------

    def get_meta(self, key: str) -> Optional[str]:
        with self._lock:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = ?", (key,)
            ).fetchone()
        return None if row is None else str(row[0])

    def set_meta(self, key: str, value: str) -> None:
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                (key, value),
            )
            self._conn.commit()

    def check_fingerprint(self, current: Mapping[str, object]) -> None:
        """Bind the store to one run fingerprint.

        A fresh store adopts ``current``; an existing store must match it
        exactly, because records measured at another scale or under
        another fault plan are *different data*, and serving them as a
        warm start would silently break the byte-identity guarantee.
        Raises :class:`StoreError` on mismatch.
        """
        from repro.core.study import fingerprint_mismatch

        stored = self.get_meta("fingerprint")
        if stored is None:
            self.set_meta("fingerprint", json.dumps(dict(current), sort_keys=True))
            return
        mismatch = fingerprint_mismatch(json.loads(stored), current)
        if mismatch is not None:
            raise StoreError(
                f"{self._path}: store was written by a different run "
                f"({mismatch}); point the server at a fresh --store or "
                f"re-launch with the matching flags"
            )

    # -- warm start / lifecycle ------------------------------------------------

    def warm_start(self, study) -> int:
        """Preload every stored record into ``study``'s result cache;
        returns the number restored (skipping pairs already cached)."""
        return study.restore_records(self.records())

    def flush(self) -> None:
        with self._lock:
            self._conn.commit()

    def close(self) -> None:
        with self._lock:
            self._conn.commit()
            self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
