"""Sensor calibration (§2.5).

"To calibrate the meters, we use a current source to provide 28 reference
currents between 300 mA and 3 A, and for each meter record the output value
(an integer in the range 400-503).  We compute linear fits for each of the
sensors.  Each sensor has an R² value of 0.999 or better."

The calibration inverts the sensor's code-versus-current line so logged
codes can be mapped back to amperes during measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.quantities import Amperes
from repro.core.statistics import LinearFit, linear_fit
from repro.measurement.sensor import HallEffectSensor

#: The paper's calibration sweep.
REFERENCE_POINT_COUNT = 28
REFERENCE_MIN_AMPS = 0.3
REFERENCE_MAX_AMPS = 3.0

#: Fit quality the paper reports ("0.999 or better").
REQUIRED_R_SQUARED = 0.999


class CalibrationError(RuntimeError):
    """Raised when a sensor's calibration fit is below the paper's bar."""


def reference_currents(
    count: int = REFERENCE_POINT_COUNT,
    low: float = REFERENCE_MIN_AMPS,
    high: float = REFERENCE_MAX_AMPS,
) -> np.ndarray:
    """The bench current source's sweep: ``count`` evenly spaced points."""
    if count < 2:
        raise ValueError("a sweep needs at least two points")
    if not 0 < low < high:
        raise ValueError("sweep bounds must be positive and ordered")
    return np.linspace(low, high, count)


def sweep_for(sensor: HallEffectSensor) -> np.ndarray:
    """The calibration sweep appropriate to a sensor's range.

    The paper's 0.3-3 A sweep matches the +/-5 A part's useful span; the
    +/-30 A part on high-draw machines needs a proportionally wider sweep
    to exercise enough of its shallower 66 mV/A transfer to resolve the
    fit above quantisation noise.
    """
    scale = sensor.range_amps / 5.0
    return reference_currents(
        low=REFERENCE_MIN_AMPS * scale, high=REFERENCE_MAX_AMPS * scale
    )


@dataclass(frozen=True)
class SensorCalibration:
    """A fitted code->current transfer for one sensor."""

    sensor_key: str
    fit: LinearFit  # code as a function of amps

    def current_from_code(self, code: float) -> Amperes:
        """Invert the fit: logged ADC code to amperes."""
        return Amperes(self.fit.invert(code))

    @property
    def r_squared(self) -> float:
        return self.fit.r_squared


def calibrate(
    sensor: HallEffectSensor,
    currents: np.ndarray | None = None,
    require_quality: bool = True,
) -> SensorCalibration:
    """Run the paper's calibration procedure against ``sensor``.

    Raises :class:`CalibrationError` if the fit is worse than the paper's
    observed R² of 0.999 (a broken or saturating sensor would fail here,
    not silently corrupt the study).
    """
    sweep = currents if currents is not None else sweep_for(sensor)
    codes = sensor.read_codes(sweep, seed_salt="calibration")
    fit = linear_fit(sweep.tolist(), codes.tolist())
    if require_quality and fit.r_squared < REQUIRED_R_SQUARED:
        raise CalibrationError(
            f"sensor {sensor.sensor_key}: calibration R^2 {fit.r_squared:.5f} "
            f"below required {REQUIRED_R_SQUARED}"
        )
    return SensorCalibration(sensor_key=sensor.sensor_key, fit=fit)
