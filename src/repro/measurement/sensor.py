"""The ACS714 Hall-effect current sensor (§2.5).

The paper uses Pololu's carrier for Allegro's ACS714 Hall-effect linear
current sensor: a bidirectional +/-5 A part (a +/-30 A sibling on the
high-draw i7) whose output is an analog voltage of 185 mV/A centred at
2.5 V, with a typical error under 1.5 %.  The logging stick digitises that
voltage to an integer code; across the calibration sweep the observed codes
span roughly 400-503, so quantisation contributes about 1 % per-sample
error ("the fidelity of the quantization (103 points)").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.quantities import Amperes, Volts
from repro.core.seeding import rng_for, run_key

#: Transfer slope of the +/-5 A ACS714.
MV_PER_AMP_5A = 185.0
#: Transfer slope of the +/-30 A variant (66 mV/A per its data sheet).
MV_PER_AMP_30A = 66.0
#: Output is centred at mid-supply.
ZERO_CURRENT_VOLTS = 2.5
#: Typical total output error of the part.
TYPICAL_ERROR = 0.015

#: The logging stick's ADC: code = round(volts * counts / full-scale).
ADC_COUNTS = 1024
ADC_FULL_SCALE_VOLTS = 5.0


@dataclass(frozen=True)
class HallEffectSensor:
    """One physical sensor instance with its own (stable) imperfections.

    A real part's gain and offset deviate from nominal but are fixed for
    the life of the device — which is exactly why the paper calibrates
    each sensor against reference currents and fits a line per sensor.
    """

    sensor_key: str
    range_amps: float = 5.0
    mv_per_amp: float = MV_PER_AMP_5A
    #: Per-sample noise as a fraction of full scale.  The ACS714's 1.5 %
    #: "typical error" is dominated by gain/offset error (removed by
    #: calibration); the residual noise floor is a few millivolts.
    noise_fraction: float = 0.003

    def __post_init__(self) -> None:
        if self.range_amps <= 0 or self.mv_per_amp <= 0:
            raise ValueError("sensor range and slope must be positive")
        rng = rng_for(run_key("sensor-build", self.sensor_key))
        # Per-device gain within +/-1.5 % and a small offset, fixed at
        # manufacture.
        object.__setattr__(self, "_gain_error", float(rng.normal(0.0, 0.007)))
        object.__setattr__(self, "_offset_volts", float(rng.normal(0.0, 0.004)))

    # -- analog path ---------------------------------------------------------

    def output_volts(self, current: Amperes, noise: float = 0.0) -> Volts:
        """Analog output for ``current`` with additive noise (volts)."""
        if abs(current.value) > self.range_amps:
            # Saturate rather than fold over, as the real part does.
            clipped = np.clip(current.value, -self.range_amps, self.range_amps)
        else:
            clipped = current.value
        slope = self.mv_per_amp / 1000.0 * (1.0 + self._gain_error)
        volts = ZERO_CURRENT_VOLTS + self._offset_volts + slope * clipped + noise
        return Volts(float(np.clip(volts, 0.0, ADC_FULL_SCALE_VOLTS)))

    def digitise(self, volts: Volts) -> int:
        """The logging stick's ADC code for an analog level."""
        code = round(volts.value / ADC_FULL_SCALE_VOLTS * ADC_COUNTS)
        return int(np.clip(code, 0, ADC_COUNTS - 1))

    @property
    def noise_sigma_volts(self) -> float:
        """Per-sample noise sigma in volts — the draw parameter every
        read path (scalar, batched, compiled kernel) shares.  Noise is
        proportional to full scale (Hall sensors are dominated by a fixed
        noise floor, not signal-proportional noise)."""
        full_scale_volts = self.mv_per_amp / 1000.0 * self.range_amps
        return self.noise_fraction * full_scale_volts

    def transfer_codes(self, currents: np.ndarray, noise: np.ndarray) -> np.ndarray:
        """The sensor transfer for pre-drawn noise: clip to range, apply
        the device's affine response, clip to the ADC input, quantise.

        Every read path funnels through this one function, so the
        per-run, batched, and compiled-kernel pipelines are bit-identical
        by construction: same ufuncs, same operand order, only the noise
        array's provenance differs (and that is keyed per run salt)."""
        clipped = np.clip(currents, -self.range_amps, self.range_amps)
        slope = self.mv_per_amp / 1000.0 * (1.0 + self._gain_error)
        volts = ZERO_CURRENT_VOLTS + self._offset_volts + slope * clipped + noise
        volts = np.clip(volts, 0.0, ADC_FULL_SCALE_VOLTS)
        codes = np.rint(volts / ADC_FULL_SCALE_VOLTS * ADC_COUNTS).astype(int)
        return np.clip(codes, 0, ADC_COUNTS - 1)

    def read_codes(self, currents: np.ndarray, seed_salt: str) -> np.ndarray:
        """Digitised codes for an array of instantaneous currents.
        Vectorised equivalent of :meth:`output_volts` + :meth:`digitise`
        per sample, with the run's noise stream keyed by ``seed_salt``.
        """
        currents = np.asarray(currents, dtype=float)
        rng = rng_for(run_key("sensor-read", self.sensor_key, seed_salt))
        noise = rng.normal(0.0, self.noise_sigma_volts, size=len(currents))
        return self.transfer_codes(currents, noise)

    def read_codes_batch(
        self, segments: "Sequence[np.ndarray]", seed_salts: "Sequence[str]"
    ) -> np.ndarray:
        """Digitised codes for several runs' currents in one vectorised
        transfer, returned concatenated in segment order.

        The noise stream is still drawn *per salt* — each segment's draws
        are exactly what :meth:`read_codes` would have drawn for it — and
        the transfer is the shared elementwise :meth:`transfer_codes`, so
        each output element is bit-identical to the per-run path; only
        the Python/numpy dispatch overhead is amortised across the batch.
        """
        if len(segments) != len(seed_salts):
            raise ValueError("segments and seed salts must align")
        sigma = self.noise_sigma_volts
        noise = np.concatenate(
            [
                rng_for(run_key("sensor-read", self.sensor_key, salt)).normal(
                    0.0, sigma, size=len(segment)
                )
                for segment, salt in zip(segments, seed_salts)
            ]
        )
        currents = np.concatenate(
            [np.asarray(segment, dtype=float) for segment in segments]
        )
        return self.transfer_codes(currents, noise)


def sensor_for_processor(processor_key: str, max_power_watts: float) -> HallEffectSensor:
    """Pick the sensor variant for a machine, as the paper did: the
    +/-30 A part for the i7-class draw, the +/-5 A part elsewhere."""
    if max_power_watts <= 0:
        raise ValueError("maximum power must be positive")
    max_current = max_power_watts / 12.0
    if max_current > 5.0:
        return HallEffectSensor(
            sensor_key=processor_key, range_amps=30.0, mv_per_amp=MV_PER_AMP_30A
        )
    return HallEffectSensor(sensor_key=processor_key)
