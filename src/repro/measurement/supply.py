"""The isolated processor power supply (§2.5).

Each experimental machine has an isolated supply for the processor on the
motherboard — a prerequisite the paper verified against motherboard
specifications and empirically (it excluded the Pentium M for lacking one).
The sensor sits on the 12 V line feeding only the processor; measured
voltage is stable to within 1 %.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.quantities import Amperes, Volts, Watts
from repro.core.seeding import rng_for, run_key

#: The processor rail the paper instruments.
RAIL_VOLTS = 12.0

#: Measured voltage stability: "varying less than 1%" (§2.5).
VOLTAGE_STABILITY = 0.01


@dataclass(frozen=True)
class ProcessorSupply:
    """The 12 V processor rail of one experimental machine."""

    machine_key: str
    nominal: Volts = Volts(RAIL_VOLTS)
    stability: float = VOLTAGE_STABILITY

    def __post_init__(self) -> None:
        if not 0.0 <= self.stability < 0.1:
            raise ValueError("rail stability outside plausible range")

    def current_for(self, power: Watts) -> Amperes:
        """Current the processor draws from the rail at ``power``."""
        if power.value < 0:
            raise ValueError("power cannot be negative")
        return Amperes(power.value / self.nominal.value)

    @property
    def wander_sigma(self) -> float:
        """Sigma of the per-sample wander draw (the +/-stability band is
        three sigmas out, so clipping is rare) — shared by the per-run
        sampler and the compiled-kernel path."""
        return self.stability / 3.0

    def volts_from_wander(self, wander: np.ndarray) -> np.ndarray:
        """Rail voltage for pre-drawn wander samples.  The one transfer
        every path shares, so per-run and compiled-kernel sampling are
        bit-identical by construction."""
        return self.nominal.value * (1.0 + np.clip(wander, -self.stability, self.stability))

    def voltage_samples(self, count: int, seed_salt: str = "") -> np.ndarray:
        """Rail voltage at ``count`` sampling instants (slow wander within
        the measured +/-1 % band)."""
        if count < 1:
            raise ValueError("need at least one sample")
        rng = rng_for(run_key("supply", self.machine_key, seed_salt))
        wander = rng.normal(0.0, self.wander_sigma, size=count)
        return self.volts_from_wander(wander)
