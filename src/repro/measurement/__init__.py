"""Measurement substrate: the Hall-effect sensor pipeline of §2.5."""

from repro.measurement.calibration import (
    CalibrationError,
    SensorCalibration,
    calibrate,
    reference_currents,
)
from repro.measurement.logger import DataLogger, LoggedRun, SAMPLE_RATE_HZ
from repro.measurement.meter import Measurement, PowerMeter, meter_for, reset_meters
from repro.measurement.sensor import HallEffectSensor, sensor_for_processor
from repro.measurement.supply import ProcessorSupply

__all__ = [
    "CalibrationError",
    "DataLogger",
    "HallEffectSensor",
    "LoggedRun",
    "Measurement",
    "PowerMeter",
    "ProcessorSupply",
    "SAMPLE_RATE_HZ",
    "SensorCalibration",
    "calibrate",
    "meter_for",
    "reference_currents",
    "reset_meters",
    "sensor_for_processor",
]
