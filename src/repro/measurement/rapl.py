"""A RAPL/powercap-style energy-counter interface.

The paper predates RAPL; its closing recommendation — "expose on-chip
power meters to the community" (§6) — is exactly what Intel shipped in
the generation after the study.  This module provides that interface over
the simulated testbed: a monotonically increasing package *energy*
counter in microjoules with a bounded register width (so it wraps, as the
real MSR does), sampled by a reader that differences consecutive counter
values.

It exists for two reasons: to validate the Hall-effect pipeline against
an independent instrument, and to document how the methodology would run
on modern hardware — replace :class:`SimulatedRaplDomain` with sysfs
``powercap`` reads and everything downstream is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.quantities import Watts
from repro.execution.engine import Execution
from repro.execution.trace import PowerTrace, trace_of

#: The real MSR_PKG_ENERGY_STATUS counter is 32 bits of energy units.
COUNTER_BITS = 32

#: Typical RAPL energy unit: 15.3 microjoules (2^-16 J).
ENERGY_UNIT_UJ = 1e6 / 2**16

#: RAPL updates roughly every millisecond.
UPDATE_INTERVAL_S = 0.001


class CounterWrapped(RuntimeError):
    """Raised when a naive reader differences across a counter wrap."""


@dataclass(frozen=True)
class SimulatedRaplDomain:
    """The package energy counter of one machine, fed by the engine.

    ``counter_at`` exposes the register value an OS driver would read at
    a given time into a run: cumulative energy quantised to RAPL units,
    truncated to the register width.
    """

    trace: PowerTrace
    energy_unit_uj: float = ENERGY_UNIT_UJ

    @classmethod
    def for_execution(cls, execution: Execution) -> "SimulatedRaplDomain":
        return cls(trace=trace_of(execution))

    def _cumulative_uj(self, t: float) -> float:
        """True cumulative package energy (microjoules) at time ``t``."""
        if t < 0:
            raise ValueError("time cannot be negative")
        t = min(t, self.trace.boundaries[-1])
        start = 0.0
        total = 0.0
        for end, level in zip(self.trace.boundaries, self.trace.levels):
            if t <= start:
                break
            total += level * (min(t, end) - start) * 1e6
            start = end
        return total

    def counter_at(self, t: float) -> int:
        """Register value at time ``t``: quantised, width-truncated."""
        units = int(self._cumulative_uj(t) / self.energy_unit_uj)
        return units % (1 << COUNTER_BITS)

    @property
    def wrap_seconds_at(self) -> float:
        """Seconds until the counter wraps at a given constant power.

        At ~60 W the 32-bit counter wraps in roughly 18 minutes — the
        reason RAPL readers must sample faster than the wrap period.
        """
        level = max(self.trace.levels)
        uj_per_s = level * 1e6
        return (1 << COUNTER_BITS) * self.energy_unit_uj / uj_per_s


@dataclass(frozen=True)
class RaplReader:
    """Samples an energy counter and reports average power.

    Differences consecutive counter reads, handling single wraps the way
    production readers do (add 2^32 units when the counter goes
    backwards).  ``sample_interval_s`` must stay below the wrap period or
    a wrap is unrecoverable.
    """

    sample_interval_s: float = 0.2

    def __post_init__(self) -> None:
        if self.sample_interval_s < UPDATE_INTERVAL_S:
            raise ValueError(
                "sampling faster than the counter updates reads duplicates"
            )

    def average_power(self, domain: SimulatedRaplDomain) -> Watts:
        """Average package power over the whole run."""
        duration = domain.trace.duration.value
        times = np.arange(0.0, duration, self.sample_interval_s)
        times = np.append(times, duration)
        if domain.wrap_seconds_at <= self.sample_interval_s:
            raise CounterWrapped(
                "sample interval exceeds the counter wrap period"
            )
        total_units = 0
        previous = domain.counter_at(float(times[0]))
        for t in times[1:]:
            current = domain.counter_at(float(t))
            delta = current - previous
            if delta < 0:  # the counter wrapped once between samples
                delta += 1 << COUNTER_BITS
            total_units += delta
            previous = current
        joules = total_units * domain.energy_unit_uj / 1e6
        return Watts(joules / duration)


def rapl_power(execution: Execution, sample_interval_s: float = 0.2) -> Watts:
    """Convenience: the RAPL-reported average power of one execution."""
    domain = SimulatedRaplDomain.for_execution(execution)
    return RaplReader(sample_interval_s=sample_interval_s).average_power(domain)
