"""Whole-system AC clamp-ammeter measurement (§2.5's contrast, §5).

Prior studies (Isci & Martonosi; Bircher & John; Le Sueur & Heiser)
measured *system* power with a clamp ammeter on the AC feed.  The paper
deliberately isolates the chip instead.  This module models the
whole-system path — board overhead, VRM losses, PSU conversion
efficiency, and the clamp meter's coarser accuracy — so the difference
between the two methodologies can be demonstrated quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.quantities import Watts
from repro.core.seeding import rng_for, run_key
from repro.execution.engine import Execution


@dataclass(frozen=True, slots=True)
class SystemPlatform:
    """DC power draw of everything on the board except the processor."""

    #: Motherboard, DRAM, disk, fans: roughly constant while running.
    board_watts: float
    #: Voltage-regulator loss as a fraction of processor power.
    vrm_overhead: float = 0.15
    #: AC->DC conversion efficiency of the power supply.
    psu_efficiency: float = 0.78

    def __post_init__(self) -> None:
        if self.board_watts < 0:
            raise ValueError("board power cannot be negative")
        if not 0.0 <= self.vrm_overhead < 1.0:
            raise ValueError("VRM overhead must be a fraction")
        if not 0.0 < self.psu_efficiency <= 1.0:
            raise ValueError("PSU efficiency must be in (0, 1]")

    def wall_power(self, chip: Watts) -> Watts:
        """AC power at the wall for a given chip draw."""
        if chip.value < 0:
            raise ValueError("chip power cannot be negative")
        dc = self.board_watts + chip.value * (1.0 + self.vrm_overhead)
        return Watts(dc / self.psu_efficiency)


#: Typical platforms for the study's machine classes: desktop boards for
#: the big parts, a nettop board for the Atoms.
DESKTOP_PLATFORM = SystemPlatform(board_watts=45.0)
NETTOP_PLATFORM = SystemPlatform(board_watts=14.0, psu_efficiency=0.72)


def platform_for(processor_key: str) -> SystemPlatform:
    if processor_key.startswith("atom"):
        return NETTOP_PLATFORM
    return DESKTOP_PLATFORM


@dataclass(frozen=True, slots=True)
class ClampMeter:
    """An AC clamp ammeter: convenient, but coarse (+/- a few percent)."""

    meter_key: str
    accuracy: float = 0.03

    def measure_wall(self, execution: Execution, run_salt: str = "r0") -> Watts:
        """Whole-system average power for a run, as a clamp meter sees it."""
        platform = platform_for(execution.config.spec.key)
        truth = platform.wall_power(execution.average_power)
        rng = rng_for(run_key("clamp", self.meter_key, run_salt))
        error = 1.0 + float(rng.normal(0.0, self.accuracy / 2.0))
        return Watts(truth.value * error)


def chip_share_of_wall(execution: Execution) -> float:
    """Fraction of wall power the processor itself accounts for.

    The paper's methodological point in one number: on an Atom nettop the
    chip is a sliver of the wall draw, so whole-system measurement cannot
    resolve chip-level effects.
    """
    platform = platform_for(execution.config.spec.key)
    wall = platform.wall_power(execution.average_power)
    return execution.average_power.value / wall.value
