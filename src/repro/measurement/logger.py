"""The AVR data-logging stick (§2.5).

"We send the measured values from the current sensor to the measured
machine's USB port using Sparkfun's Atmel AVR Stick, which is a simple
data-logging device.  We use a data-sampling rate of 50 Hz."

The logger samples the sensor's analog output on a fixed clock for the
duration of a benchmark run and emits the raw integer codes.

This is also where an armed fault injector touches the sample stream:
sensor-stage corruptions (glitches, drift, stuck-at codes) apply to the
codes as they are read, and logger-stage faults (sample gaps, mid-run
disconnects) to what survives onto the USB bus.  Calibration reads the
sensor directly and is never corrupted — a broken calibration would fail
the R² gate rather than model a run-time fault.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.execution.trace import PowerTrace
from repro.faults.injector import active as _faults_active
from repro.measurement.sensor import ADC_COUNTS, HallEffectSensor
from repro.measurement.supply import ProcessorSupply

#: The paper's sampling rate.
SAMPLE_RATE_HZ = 50.0


@dataclass(frozen=True)
class LoggedRun:
    """Raw output of one logged benchmark run."""

    sample_times: np.ndarray
    codes: np.ndarray
    rate_hz: float

    def __post_init__(self) -> None:
        if len(self.sample_times) != len(self.codes):
            raise ValueError("sample times and codes must align")
        if len(self.codes) == 0:
            raise ValueError(
                "a logged run needs at least one sample: the sample array "
                "is empty, which usually means a logger dropout or "
                "disconnect consumed the whole record — re-run the "
                "invocation rather than averaging nothing"
            )

    @property
    def sample_count(self) -> int:
        return len(self.codes)


#: Sample cap for very long runs: the power signal has at most a handful
#: of constant pieces, so two thousand samples average the noise as well
#: as a hundred thousand would.
DEFAULT_MAX_SAMPLES = 2000


@dataclass(frozen=True)
class DataLogger:
    """A 50 Hz sampling logger attached to one sensor and supply rail."""

    sensor: HallEffectSensor
    supply: ProcessorSupply
    rate_hz: float = SAMPLE_RATE_HZ
    max_samples: int | None = DEFAULT_MAX_SAMPLES

    def __post_init__(self) -> None:
        if self.rate_hz <= 0:
            raise ValueError("sampling rate must be positive")
        if self.max_samples is not None and self.max_samples < 1:
            raise ValueError("max_samples must be >= 1")

    def log(self, trace: PowerTrace, run_salt: str) -> LoggedRun:
        """Sample a run's true power through the sensor into ADC codes.

        ``run_salt`` distinguishes repeated runs so their noise streams
        are independent but reproducible.
        """
        times = trace.sample_times(self.rate_hz, max_samples=self.max_samples)
        voltages = self.supply.voltage_samples(len(times), seed_salt=run_salt)
        true_watts = trace.powers_at(times)
        currents = true_watts / voltages
        codes = self.sensor.read_codes(currents, seed_salt=run_salt)
        injector = _faults_active()
        if injector is not None:
            codes = injector.corrupt_sensor_codes(
                run_salt, codes, ADC_COUNTS - 1
            )
            times, codes = injector.filter_logged_samples(run_salt, times, codes)
        return LoggedRun(sample_times=times, codes=codes, rate_hz=self.rate_hz)

    def log_batch(
        self, traces: Sequence[PowerTrace], run_salts: Sequence[str]
    ) -> list[LoggedRun]:
        """Log several runs through one vectorised sensor pass.

        All segments' currents go through a single
        :meth:`~repro.measurement.sensor.HallEffectSensor.read_codes_batch`
        call; each returned :class:`LoggedRun` views its slice of the
        shared code array and is bit-identical to what :meth:`log` would
        have produced.  With a fault injector armed the batch falls back
        to the per-run path, because sensor- and logger-stage faults are
        defined on individual runs.
        """
        if len(traces) != len(run_salts):
            raise ValueError("traces and run salts must align")
        if _faults_active() is not None:
            return [
                self.log(trace, run_salt=salt)
                for trace, salt in zip(traces, run_salts)
            ]
        times_list = [
            trace.sample_times(self.rate_hz, max_samples=self.max_samples)
            for trace in traces
        ]
        currents = [
            trace.powers_at(times)
            / self.supply.voltage_samples(len(times), seed_salt=salt)
            for trace, times, salt in zip(traces, times_list, run_salts)
        ]
        codes = self.sensor.read_codes_batch(currents, run_salts)
        runs: list[LoggedRun] = []
        start = 0
        for times in times_list:
            end = start + len(times)
            runs.append(
                LoggedRun(
                    sample_times=times,
                    codes=codes[start:end],
                    rate_hz=self.rate_hz,
                )
            )
            start = end
        return runs
