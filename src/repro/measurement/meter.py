"""End-to-end power measurement (§2.5).

"We execute each benchmark, log its measured power values, and then compute
the average power consumption over the duration of the benchmark."

:class:`PowerMeter` assembles the full physical pipeline — isolated 12 V
rail, Hall-effect sensor, 50 Hz logger, per-sensor calibration — and turns
an :class:`~repro.execution.engine.Execution` into the measured average
power the analyses consume.  Meters are built once per machine, mirroring
the physical setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.quantities import Watts
from repro.execution.engine import Execution
from repro.execution.trace import trace_of
from repro.faults.injector import active as _faults_active
from repro.hardware.processor import ProcessorSpec
from repro.measurement.calibration import SensorCalibration, calibrate
from repro.measurement.logger import DataLogger, LoggedRun
from repro.measurement.sensor import ADC_COUNTS, HallEffectSensor, sensor_for_processor
from repro.measurement.supply import ProcessorSupply
from repro.obs.metrics import default_registry, enabled as _metrics_enabled

_REGISTRY = default_registry()
_SAMPLES = _REGISTRY.counter(
    "repro_meter_samples_total",
    "50 Hz power samples drawn through the sensor pipeline, by machine",
)
_CLAMP_EVENTS = _REGISTRY.counter(
    "repro_meter_clamp_events_total",
    "Samples clamped at the sensor or ADC rails (saturation), by machine",
)

#: Codes within this band of the rail count as clamped: a railed sample
#: still scatters by quantisation, sensor noise, and fit error.
_SAT_GUARD_CODES = 3.0


@dataclass(frozen=True)
class Measurement:
    """One measured run: the quantities the paper's dataset records."""

    average_watts: float
    sample_count: int
    seconds: float

    @property
    def average_power(self) -> Watts:
        return Watts(self.average_watts)

    @property
    def energy_joules(self) -> float:
        return self.average_watts * self.seconds


class PowerMeter:
    """The measurement rig attached to one experimental machine."""

    def __init__(self, spec: ProcessorSpec) -> None:
        self._spec = spec
        self._sensor = sensor_for_processor(spec.key, max_power_watts=spec.tdp_w)
        self._supply = ProcessorSupply(machine_key=spec.key)
        self._logger = DataLogger(sensor=self._sensor, supply=self._supply)
        self._calibration = calibrate(self._sensor)
        self._samples_metric = _SAMPLES.labels(machine=spec.key)
        self._clamp_metric = _CLAMP_EVENTS.labels(machine=spec.key)
        # Saturation telemetry, precomputed: the codes the logger reports
        # when the Hall sensor rails at +/- its current range (the ADC
        # itself clips too, whichever bites first), and the true package
        # power below which no sample can rail.  The guard keeps the
        # per-sample scan off the hot path — a 0.9 margin absorbs supply
        # droop and sensor noise.
        fit = self._calibration.fit
        rail = self._sensor.range_amps
        # A railed sample still carries quantisation + sensor noise
        # (+/- a couple of codes), so the rail threshold gets a guard band.
        guard = _SAT_GUARD_CODES
        self._sat_code_high = min(fit.intercept + fit.slope * rail - guard,
                                  float(ADC_COUNTS - 1))
        self._sat_code_low = max(fit.intercept - fit.slope * rail + guard, 0.0)
        self._sat_scan_watts = 0.9 * rail * self._supply.nominal.value
        # The unguarded code the sensor pins at when driven past +range —
        # where an injected saturation burst parks its samples.
        self._rail_code = int(round(min(fit.intercept + fit.slope * rail,
                                        float(ADC_COUNTS - 1))))

    @property
    def spec(self) -> ProcessorSpec:
        return self._spec

    @property
    def sensor(self) -> HallEffectSensor:
        return self._sensor

    @property
    def supply(self) -> ProcessorSupply:
        return self._supply

    @property
    def logger(self) -> DataLogger:
        return self._logger

    @property
    def calibration(self) -> SensorCalibration:
        return self._calibration

    @property
    def sat_scan_watts(self) -> float:
        """True package power above which a sample can sit on a rail —
        the guard the clamp-telemetry scan is gated on."""
        return self._sat_scan_watts

    def clamped_sample_count(self, codes: np.ndarray) -> int:
        """Samples sitting on (or within the guard band of) either rail —
        the quantity the clamp-event telemetry reports."""
        return int(np.count_nonzero(
            (codes <= self._sat_code_low) | (codes >= self._sat_code_high)
        ))

    def measure(self, execution: Execution, run_salt: str = "run0") -> Measurement:
        """Measure one execution: log at 50 Hz, calibrate codes back to
        amperes, convert to watts on the nominal rail, and average."""
        if execution.config.spec.key != self._spec.key:
            raise ValueError(
                f"meter is attached to {self._spec.key}, not "
                f"{execution.config.spec.key}"
            )
        trace = trace_of(execution)
        logged = self._logger.log(trace, run_salt=run_salt)
        injector = _faults_active()
        if injector is not None:
            faulted = injector.saturate_meter_codes(
                run_salt, logged.codes, self._rail_code
            )
            if faulted is not logged.codes:
                logged = LoggedRun(
                    sample_times=logged.sample_times,
                    codes=faulted,
                    rate_hz=logged.rate_hz,
                )
        if _metrics_enabled():
            self._samples_metric.inc(logged.sample_count)
            # Samples can only sit on a rail if some phase's true power
            # approaches the sensor's range, so a scalar compare against
            # the trace's peak level gates the per-sample scan — except
            # under fault injection, where a saturation burst can rail
            # samples at any true power and must still be counted.
            if injector is not None or trace.peak >= self._sat_scan_watts:
                clamped = self.clamped_sample_count(logged.codes)
                if clamped:
                    self._clamp_metric.inc(clamped)
        return Measurement(
            average_watts=self._average_watts(logged.codes),
            sample_count=logged.sample_count,
            seconds=execution.seconds.value,
        )

    def measure_batch(
        self,
        executions: Sequence[Execution],
        run_salts: Sequence[str],
    ) -> list[Measurement]:
        """Measure several executions through one vectorised logger pass.

        The whole batch's samples go through the sensor transfer in a
        single numpy call (:meth:`DataLogger.log_batch`); the per-run
        supply and sensor noise streams are still drawn per ``run_salt``,
        and every downstream step is elementwise or an exact integer
        mean, so each returned :class:`Measurement` is bit-identical to a
        separate :meth:`measure` call.  With a fault injector armed the
        batch degrades to per-run measures, because injected faults are
        per-invocation decisions (and may abort individual runs).
        """
        if len(executions) != len(run_salts):
            raise ValueError("executions and run salts must align")
        if _faults_active() is not None:
            return [
                self.measure(execution, run_salt=salt)
                for execution, salt in zip(executions, run_salts)
            ]
        for execution in executions:
            if execution.config.spec.key != self._spec.key:
                raise ValueError(
                    f"meter is attached to {self._spec.key}, not "
                    f"{execution.config.spec.key}"
                )
        traces = [trace_of(execution) for execution in executions]
        logged_runs = self._logger.log_batch(traces, run_salts)
        metrics_on = _metrics_enabled()
        out: list[Measurement] = []
        for execution, trace, logged in zip(executions, traces, logged_runs):
            if metrics_on:
                self._samples_metric.inc(logged.sample_count)
                if trace.peak >= self._sat_scan_watts:
                    clamped = self.clamped_sample_count(logged.codes)
                    if clamped:
                        self._clamp_metric.inc(clamped)
            out.append(
                Measurement(
                    average_watts=self._average_watts(logged.codes),
                    sample_count=logged.sample_count,
                    seconds=execution.seconds.value,
                )
            )
        return out

    def measure_kernel(
        self,
        true_watts: np.ndarray,
        counts: np.ndarray,
        offsets: np.ndarray,
        peaks: np.ndarray,
        wander: np.ndarray,
        sensor_noise: np.ndarray,
    ) -> list[float]:
        """Meter a compiled pair kernel: every invocation's samples in
        one array pass.

        ``true_watts`` concatenates the pair's per-sample ground-truth
        power (segment ``i`` spans ``offsets[i]:offsets[i]+counts[i]``);
        ``wander``/``sensor_noise`` are the pre-drawn per-salt noise
        streams (:mod:`repro.execution.kernels` draws them from the same
        seeds the per-run path derives).  The pipeline reuses the exact
        shared transfers — :meth:`ProcessorSupply.volts_from_wander` and
        :meth:`HallEffectSensor.transfer_codes` — and the per-segment
        reduction is an exact integer sum (``np.add.reduceat`` over
        int64 codes), so each returned average is bit-identical to
        :meth:`measure` on that invocation alone.  Saturation telemetry
        follows :meth:`measure_batch`'s gate: segments whose true peak
        (``peaks``) clears the scan threshold contribute their clamped
        samples to the clamp counter.
        """
        voltages = self._supply.volts_from_wander(wander)
        currents = true_watts / voltages
        codes = self._sensor.transfer_codes(currents, sensor_noise)
        sums = np.add.reduceat(codes, offsets)
        mean_codes = sums / counts
        fit = self._calibration.fit
        watts = (mean_codes - fit.intercept) / fit.slope * self._supply.nominal.value
        if _metrics_enabled():
            self._samples_metric.inc(int(counts.sum()))
            hot = peaks >= self._sat_scan_watts
            if hot.any():
                railed = (codes <= self._sat_code_low) | (codes >= self._sat_code_high)
                per_run = np.add.reduceat(railed.astype(np.int64), offsets)
                clamped = int(per_run[hot].sum())
                if clamped:
                    self._clamp_metric.inc(clamped)
        return watts.tolist()

    def _average_watts(self, codes: np.ndarray) -> float:
        """Calibrated average power of one run's codes, in a single fused
        pass.

        The sum is taken over the codes as exact integers
        (``np.add.reduce`` with an int64 accumulator) rather than by
        float accumulation: ADC codes are < 2**10 and runs < 2**11
        samples, so the integer sum — hence the mean and everything
        downstream — is *provably* exact at any magnitude, and in
        particular equal to the compiled-kernel path's per-segment
        ``np.add.reduceat`` regardless of summation order.  Averaging
        the codes first and applying the affine calibration once is then
        bit-for-bit independent of whether the codes arrived standalone,
        as a slice of a batch, or as a kernel segment — and skips the
        ``astype(float)`` copy and per-sample affine of the naive path."""
        fit = self._calibration.fit
        total = int(np.add.reduce(codes, dtype=np.int64))
        mean_code = total / codes.size
        return (mean_code - fit.intercept) / fit.slope * self._supply.nominal.value


_METERS: dict[str, PowerMeter] = {}


def meter_for(spec: ProcessorSpec) -> PowerMeter:
    """The process-wide meter for a machine (built and calibrated once)."""
    meter = _METERS.get(spec.key)
    if meter is None:
        meter = PowerMeter(spec)
        _METERS[spec.key] = meter
    return meter


def reset_meters() -> None:
    """Tear down every cached meter so the next :func:`meter_for` builds
    and recalibrates afresh — test fixtures use this to stop one test's
    rig state leaking into the next."""
    _METERS.clear()
