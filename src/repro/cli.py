"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list processors|benchmarks|configurations|experiments|nodes`` —
  catalog views (``nodes`` includes the projected 22-7 nm operating
  points, flagged as synthetic);
* ``measure <benchmark> <processor> [--cores N --threads N --clock GHZ
  --no-turbo --quick]`` — one measurement through the full pipeline;
* ``experiment <id>`` — regenerate one paper artifact (``table1``..``fig12``);
* ``findings`` — evaluate the thirteen findings;
* ``dataset <out.csv> [--configs stock|45nm|all]`` — export the run dataset;
* ``figure <fig2|fig3|fig7c|fig11|fig12>`` — draw a character figure;
* ``project [--nodes 22,14,10,7 --samples N --area MM2 --tdp W --seed S
  --out DIR]`` — synthesize post-2011 candidate machines and search the
  per-node Pareto frontiers (docs/projection.md); ``--out`` writes the
  canonical ``frontier.json`` dataset and the extended fig12-style
  ``figure.txt``, byte-identical at any ``--jobs``/kernel setting;
* ``stats`` — run a small sweep and print the telemetry summary table;
* ``serve [--host H --port P --store DB --slo SPEC --event-log PATH
  ...]`` — run the measurement campaign as an HTTP service (see
  docs/service.md);
* ``top [--url U --interval S --once]`` — live ops dashboard for a
  running server (polls ``/healthz``, ``/slo``, ``/metrics``).

Global telemetry flags (before the command):

* ``--trace PATH.jsonl`` — export a span per experiment/measurement;
* ``--trace-chrome PATH.json`` — also export the spans as a Chrome-trace
  file loadable in ``chrome://tracing`` / Perfetto;
* ``--metrics`` — dump Prometheus-style exposition after the command;
* ``--progress`` — live rate/ETA line on stderr (composes with
  ``--quick``: totals reflect the scaled invocation counts);
* ``--jobs N`` — worker processes for sweeps (default ``auto`` = CPU
  count; ``none`` forces the in-process path).  Results, health, and
  checkpoints are byte-identical at any worker count.

Robustness flags on ``measure`` and ``dataset`` (see docs/robustness.md):

* ``--inject PLAN`` — arm a fault plan (``demo``, ``ci``, or a JSON path);
* ``--max-retries N`` — bound per-invocation retries (default 3);
* ``--checkpoint PATH`` — append each new result to a JSONL checkpoint;
* ``--resume PATH`` — preload a checkpoint before running (commonly the
  same path as ``--checkpoint``, so a killed campaign picks up where it
  stopped).

``--checkpoint`` also writes a ``<path>.meta`` sidecar recording the run
fingerprint (root seed, invocation scale, fault plan); ``--resume``
refuses a checkpoint whose sidecar mismatches the current run (exit
code 4) instead of silently mixing incompatible datasets.

Exit codes: 0 success, 2 usage error, 3 measurement failed, 4 resume /
store fingerprint or schema mismatch.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.core.study import (
    Study,
    fingerprint_mismatch,
    read_checkpoint_meta,
    run_fingerprint,
    write_checkpoint_meta,
)
from repro.experiments.findings import evaluate_all
from repro.faults.errors import MeasurementError
from repro.faults.injector import install as install_faults, uninstall as uninstall_faults
from repro.faults.plan import plan_from_arg
from repro.faults.retry import RetryPolicy
from repro.experiments.registry import EXPERIMENTS, EXTENSIONS, run_experiment
from repro.hardware.catalog import ATOM_45, CORE_I7_45, PROCESSORS, processor
from repro.hardware.config import stock
from repro.hardware.configurations import (
    all_configurations,
    node_45nm_configurations,
    stock_configurations,
)
from repro.obs.export import render_prometheus, render_summary
from repro.obs.progress import ProgressReporter
from repro.obs.tracing import default_tracer
from repro.reporting import figures
from repro.reporting.tables import render_experiment, render_rows
from repro.workloads.catalog import BENCHMARKS, benchmark


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Measured Power, Performance, and "
        "Scaling' (ASPLOS 2011)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run 20%% of the paper's repetition protocol",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH.jsonl",
        default=None,
        help="record tracing spans and export them as JSONL on exit",
    )
    parser.add_argument(
        "--trace-chrome",
        metavar="PATH.json",
        default=None,
        help="also export recorded spans as a Chrome-trace / Perfetto "
        "JSON file on exit (implies tracing)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="dump Prometheus-style metrics exposition after the command",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="show a live rate/ETA progress line on stderr",
    )
    parser.add_argument(
        "--jobs",
        metavar="N",
        default="auto",
        help="worker processes for sweeps: an integer, 'auto' (CPU "
        "count; the default), or 'none' to force the in-process path — "
        "results are byte-identical at any setting",
    )
    parser.add_argument(
        "--supervised",
        action="store_true",
        help="run parallel sweeps on the supervised worker fleet "
        "(heartbeats, crash detection, deterministic requeue) instead "
        "of the plain process pool — same bytes, survives worker death",
    )
    parser.add_argument(
        "--heartbeat-interval",
        type=float,
        default=0.25,
        metavar="S",
        help="seconds between fleet worker heartbeats (default 0.25)",
    )
    parser.add_argument(
        "--liveness-misses",
        type=int,
        default=4,
        metavar="K",
        help="missed heartbeats before a fleet worker is declared dead, "
        "killed, and its chunk requeued (default 4)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_robustness_flags(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument(
            "--inject",
            metavar="PLAN",
            default=None,
            help="arm a fault plan: 'demo', 'ci', 'chaos', or a JSON "
            "plan path",
        )
        cmd.add_argument(
            "--max-retries",
            type=int,
            default=None,
            metavar="N",
            help="retries per invocation before quarantine (default 3)",
        )
        cmd.add_argument(
            "--checkpoint",
            metavar="PATH",
            default=None,
            help="append each newly measured result to a JSONL checkpoint",
        )
        cmd.add_argument(
            "--resume",
            metavar="PATH",
            default=None,
            help="preload a JSONL checkpoint before running",
        )

    list_cmd = commands.add_parser("list", help="catalog views")
    list_cmd.add_argument(
        "what",
        choices=(
            "processors",
            "benchmarks",
            "configurations",
            "experiments",
            "nodes",
        ),
    )

    measure = commands.add_parser("measure", help="measure one benchmark")
    measure.add_argument("benchmark")
    measure.add_argument("processor")
    measure.add_argument("--cores", type=int, default=None)
    measure.add_argument("--threads", type=int, default=None)
    measure.add_argument("--clock", type=float, default=None)
    measure.add_argument("--no-turbo", action="store_true")
    add_robustness_flags(measure)

    experiment = commands.add_parser("experiment", help="regenerate an artifact")
    experiment.add_argument(
        "experiment_id", choices=sorted(EXPERIMENTS) + sorted(EXTENSIONS)
    )

    commands.add_parser("findings", help="evaluate the thirteen findings")

    dataset = commands.add_parser("dataset", help="export the run dataset")
    dataset.add_argument("output")
    dataset.add_argument(
        "--configs", choices=("stock", "45nm", "all"), default="stock"
    )
    add_robustness_flags(dataset)

    figure = commands.add_parser("figure", help="draw a character figure")
    figure.add_argument(
        "figure_id", choices=("fig2", "fig3", "fig7c", "fig11", "fig12")
    )

    project = commands.add_parser(
        "project",
        help="search Pareto frontiers over synthesized post-2011 machines",
    )
    project.add_argument(
        "--nodes",
        default="22,14,10,7",
        metavar="NM[,NM...]",
        help="comma-separated projected nodes to search (default all four)",
    )
    project.add_argument(
        "--samples",
        type=int,
        default=512,
        metavar="N",
        help="candidate machines per node (default 512; the four-node "
        "default searches 2048 configurations)",
    )
    project.add_argument(
        "--area",
        type=float,
        default=260.0,
        metavar="MM2",
        help="die area budget per candidate in mm^2 (default 260)",
    )
    project.add_argument(
        "--tdp",
        type=float,
        default=130.0,
        metavar="W",
        help="package power budget per candidate in watts (default 130)",
    )
    project.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="S",
        help="candidate-generator seed (default 0)",
    )
    project.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="write frontier.json (canonical dataset bytes) and "
        "figure.txt (extended fig12) into DIR",
    )
    add_robustness_flags(project)

    commands.add_parser(
        "stats",
        help="run a small demonstration sweep and print the telemetry "
        "summary table",
    )

    serve_cmd = commands.add_parser(
        "serve", help="run the campaign as an HTTP measurement service"
    )
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument(
        "--port",
        type=int,
        default=8080,
        help="listen port (0 picks an ephemeral port and prints it)",
    )
    serve_cmd.add_argument(
        "--store",
        metavar="PATH.sqlite",
        default=None,
        help="SQLite result store; warm-starts the cache across restarts "
        "(default: in-memory, lost on exit)",
    )
    serve_cmd.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        metavar="N",
        help="in-flight job bound before requests get 429 (default 64)",
    )
    serve_cmd.add_argument(
        "--rate",
        type=float,
        default=None,
        metavar="R",
        help="per-client measure requests per second (default: unlimited)",
    )
    serve_cmd.add_argument(
        "--burst",
        type=float,
        default=5.0,
        metavar="B",
        help="per-client burst allowance when --rate is set (default 5)",
    )
    serve_cmd.add_argument(
        "--cache-cap",
        type=int,
        default=None,
        metavar="N",
        help="LRU-bound the in-memory result cache to N pairs "
        "(default: unbounded; the store still holds everything)",
    )
    serve_cmd.add_argument(
        "--inject",
        metavar="PLAN",
        default=None,
        help="arm a server-wide fault plan: 'demo', 'ci', 'chaos', or a "
        "JSON path",
    )
    serve_cmd.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="retries per invocation before quarantine (default 3)",
    )
    serve_cmd.add_argument(
        "--slo",
        metavar="SPEC",
        default=None,
        help="declare SLO targets for GET /slo, e.g. "
        "'p99=250ms,avail=99.9' (latency clauses take us/ms/s suffixes)",
    )
    serve_cmd.add_argument(
        "--event-log",
        metavar="PATH.jsonl",
        default=None,
        help="append one JSON line per served /measure correlating "
        "request id, trace id, and store row",
    )
    serve_cmd.add_argument(
        "--no-trace",
        action="store_true",
        help="disable per-request tracing (GET /trace will hold no data)",
    )
    serve_cmd.add_argument(
        "--drain-timeout",
        type=float,
        default=None,
        metavar="S",
        help="bound the SIGTERM drain: after S seconds in-flight "
        "measurements are cancelled and the final health report printed "
        "(default: wait for them indefinitely)",
    )
    serve_cmd.add_argument(
        "--recover",
        action="store_true",
        help="replay unfinished journalled requests from --store before "
        "serving fresh traffic (see docs/robustness.md)",
    )

    top_cmd = commands.add_parser(
        "top", help="live ops dashboard for a running campaign server"
    )
    top_cmd.add_argument(
        "--url",
        default="http://127.0.0.1:8080",
        help="base URL of the server to watch (default %(default)s)",
    )
    top_cmd.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="S",
        help="seconds between refreshes (default 2)",
    )
    top_cmd.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit (no screen clearing)",
    )
    return parser


def _list(what: str) -> str:
    if what == "processors":
        rows = [
            {
                "key": spec.key,
                "label": spec.label,
                "uarch": spec.family.name,
                "config": spec.cmp_smt,
                "clock_ghz": spec.stock_clock.ghz,
                "node_nm": spec.node.nanometers,
                "tdp_w": spec.tdp_w,
            }
            for spec in PROCESSORS
        ]
    elif what == "benchmarks":
        rows = [
            {
                "name": b.name,
                "suite": b.suite.value,
                "group": b.group.value,
                "reference_s": b.reference_seconds,
            }
            for b in BENCHMARKS
        ]
    elif what == "configurations":
        rows = [{"key": c.key, "label": c.label} for c in all_configurations()]
    elif what == "nodes":
        from repro.hardware.technology import ALL_NODES

        rows = [
            {
                "node_nm": node.nanometers,
                "kind": "projected/synthetic" if node.synthetic else "measured",
                "nominal_v": node.nominal_voltage.value,
                "v_floor": (
                    node.voltage_floor.value
                    if node.voltage_floor is not None
                    else "-"
                ),
                "cap_scale": node.capacitance_scale,
                "leak_scale": node.leakage_scale,
                "dark_frac": node.dark_silicon_fraction,
            }
            for node in sorted(
                ALL_NODES.values(), key=lambda n: -n.nanometers
            )
        ]
    else:
        rows = [{"id": eid, "kind": "paper artifact"} for eid in EXPERIMENTS]
        rows += [{"id": eid, "kind": "extension"} for eid in EXTENSIONS]
    return render_rows(rows)


def _measure(args: argparse.Namespace, study: Study) -> str:
    bench = benchmark(args.benchmark)
    spec = processor(args.processor)
    config = stock(spec)
    if args.cores is not None:
        config = config.with_cores(args.cores)
    if args.threads is not None:
        config = (
            config.without_smt() if args.threads == 1 else config.with_smt()
        )
    if args.clock is not None:
        config = config.at_clock(args.clock)
    if args.no_turbo:
        config = config.without_turbo()
    result = study.measure(bench, config)
    return render_rows([result.as_row()])


def _findings(study: Study) -> str:
    rows = [
        {
            "id": report.finding_id,
            "holds": "yes" if report.holds else "NO",
            "statement": report.statement,
        }
        for report in evaluate_all(study)
    ]
    return render_rows(rows, max_width=78)


def _stats(study: Study) -> str:
    """Run a tiny 2-benchmark x 2-config sweep twice (the second pass is
    fully cached) and render the resulting telemetry."""
    benches = (benchmark("mcf"), benchmark("db"))
    configs = (stock(CORE_I7_45), stock(ATOM_45))
    for _ in range(2):
        study.run(configs, benches)
    lines = [
        "== telemetry after a 2 benchmark x 2 configuration sweep "
        "(run twice; second pass cached) ==",
        render_summary(),
    ]
    return "\n".join(lines)


def _dataset(args: argparse.Namespace, study: Study) -> str:
    configs = {
        "stock": stock_configurations,
        "45nm": node_45nm_configurations,
        "all": all_configurations,
    }[args.configs]()
    results = study.run(configs)
    path = results.to_csv(args.output)
    lines = [f"wrote {len(results)} rows to {path}"]
    health = results.health
    if health is not None and (
        health.total_failures
        or health.quarantined
        or health.restored_pairs
        or health.remeasured_outliers
    ):
        lines.append(health.summary())
    return "\n".join(lines)


def _project(args: argparse.Namespace, study: Study) -> str:
    """Run the frontier search and render/persist its artifacts."""
    from repro.hardware.technology import PROJECTED_NODES
    from repro.projection import Budget, evaluate_projection_finding, search
    from repro.reporting.figures import projection_figure

    try:
        nodes = tuple(int(part) for part in args.nodes.split(",") if part)
    except ValueError:
        print(
            f"error: --nodes must be comma-separated integers, got "
            f"{args.nodes!r}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    unknown = [nm for nm in nodes if nm not in PROJECTED_NODES]
    if unknown or not nodes:
        print(
            f"error: --nodes must name projected nodes "
            f"{sorted(PROJECTED_NODES, reverse=True)}, got {args.nodes!r}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    budget = Budget(area_mm2=args.area, tdp_w=args.tdp)
    # jobs=None inherits the worker count the study was built with, so
    # the global --jobs/--supervised flags govern the sweep.
    dataset = search(
        study=study,
        nodes=nodes,
        samples=args.samples,
        budget=budget,
        seed=args.seed,
    )
    report = evaluate_projection_finding(dataset)
    rows = []
    for frontier in dataset.frontiers:
        outcomes = frontier.outcomes
        rows.append(
            {
                "node_nm": frontier.node_nm,
                "candidates": len(outcomes),
                "efficient": len(frontier.efficient_keys),
                "best_perf": round(frontier.best_performance(), 2),
                "best_perf_per_energy": round(frontier.best_efficiency(), 1),
                "median_dark": round(
                    sorted(o.candidate.dark_fraction for o in outcomes)[
                        len(outcomes) // 2
                    ],
                    3,
                ),
            }
        )
    lines = [
        f"searched {dataset.candidate_count()} candidate machines over "
        f"{len(nodes)} projected node(s) "
        f"(budget {budget.area_mm2:g} mm^2 / {budget.tdp_w:g} W, "
        f"seed {dataset.seed})",
        render_rows(rows),
        f"finding {report.finding_id} "
        f"({'holds' if report.holds else 'DOES NOT HOLD'}): "
        f"{report.statement}",
    ]
    if args.out is not None:
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        dataset_path = out_dir / "frontier.json"
        dataset_path.write_bytes(dataset.to_json_bytes())
        figure_path = out_dir / "figure.txt"
        figure_path.write_bytes((projection_figure(dataset) + "\n").encode("ascii"))
        lines.append(f"wrote {dataset_path} and {figure_path}")
    return "\n".join(lines)


def _serve(
    args: argparse.Namespace,
    study: Study,
    jobs: Optional[int | str],
    fingerprint: dict[str, object],
) -> int:
    # Imported here so the plain CLI never pays for the service stack.
    from repro.service.server import CampaignServer, serve
    from repro.service.store import StoreError

    if args.recover and args.store is None:
        print(
            "error: --recover replays the journal in --store; an "
            "in-memory store has nothing to recover",
            file=sys.stderr,
        )
        return 2
    try:
        server = CampaignServer(
            study=study,
            host=args.host,
            port=args.port,
            store=args.store,
            fingerprint=fingerprint,
            max_pending=args.queue_depth,
            jobs=jobs,
            rate=args.rate,
            burst=args.burst,
            slo=args.slo,
            event_log=args.event_log,
            trace_requests=not args.no_trace,
            drain_timeout=args.drain_timeout,
            recover=args.recover,
        )
    except StoreError as exc:
        # The store was written by an incompatible schema or a run with
        # different parameters — same class of mismatch as a stale
        # --resume checkpoint.  The message carries its own hint.
        print(f"error: {exc}", file=sys.stderr)
        return 4
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        serve(server)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 4
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "top":
        # A pure HTTP client: no study, no tracer, no checkpoint state.
        from repro.obs.top import run_top

        return run_top(
            args.url,
            interval_s=args.interval,
            iterations=1 if args.once else None,
            clear=not args.once,
        )
    tracer = default_tracer()
    for trace_arg in (args.trace, args.trace_chrome):
        if trace_arg:
            # Fail before the (possibly long) run, not at export time.
            parent = Path(trace_arg).resolve().parent
            if not parent.is_dir():
                print(
                    f"error: trace directory does not exist: {parent}",
                    file=sys.stderr,
                )
                return 2
            tracer.enable()
    progress = ProgressReporter(stream=sys.stderr) if args.progress else None

    # Robustness options exist only on measure/dataset/serve; default
    # elsewhere.
    inject = getattr(args, "inject", None)
    max_retries = getattr(args, "max_retries", None)
    checkpoint = getattr(args, "checkpoint", None)
    resume = getattr(args, "resume", None)
    plan = None
    if inject is not None:
        try:
            plan = plan_from_arg(inject)
        except (OSError, ValueError) as exc:
            print(f"error: --inject: {exc}", file=sys.stderr)
            return 2
    scale = 0.2 if args.quick else 1.0
    fingerprint = run_fingerprint(invocation_scale=scale, plan=plan)
    if checkpoint is not None:
        parent = Path(checkpoint).resolve().parent
        if not parent.is_dir():
            print(
                f"error: --checkpoint directory does not exist: {parent}",
                file=sys.stderr,
            )
            return 2
    jobs: Optional[int | str]
    if args.jobs in ("none", "1") or args.jobs is None:
        # jobs=1 through the pool would be pure overhead from the CLI;
        # the in-process path produces the identical bytes.
        jobs = None
    elif args.jobs == "auto":
        jobs = "auto"
    else:
        try:
            jobs = int(args.jobs)
        except ValueError:
            print(
                f"error: --jobs must be an integer, 'auto', or 'none', "
                f"got {args.jobs!r}",
                file=sys.stderr,
            )
            return 2
        if jobs < 0:
            print("error: --jobs cannot be negative", file=sys.stderr)
            return 2
    study = Study(
        invocation_scale=scale,
        progress=progress,
        retry=RetryPolicy(max_retries=max_retries)
        if max_retries is not None
        else None,
        checkpoint_path=checkpoint,
        jobs=jobs,
        cache_capacity=getattr(args, "cache_cap", None),
        # The server reuses its worker pool across request batches.
        reuse_pool=args.command == "serve",
        supervised=args.supervised,
        heartbeat_s=args.heartbeat_interval,
        liveness_misses=args.liveness_misses,
    )
    if resume is not None:
        if Path(resume).exists():
            saved = read_checkpoint_meta(resume)
            mismatch = (
                fingerprint_mismatch(saved, fingerprint)
                if saved is not None
                else None  # pre-sidecar checkpoints resume unchecked
            )
            if mismatch is not None:
                print(
                    f"error: --resume checkpoint is from a different run "
                    f"({mismatch})",
                    file=sys.stderr,
                )
                print(
                    "hint: re-run with the flags that wrote it (same "
                    "--quick/--inject) or start a fresh --checkpoint",
                    file=sys.stderr,
                )
                return 4
            restored = study.restore_checkpoint(resume)
            print(f"resumed {restored} results from {resume}", file=sys.stderr)
        elif resume != checkpoint:
            # A missing --resume that is also the --checkpoint target is a
            # cold start (first run of a resumable campaign), not an error.
            print(f"error: --resume file does not exist: {resume}", file=sys.stderr)
            return 2
    if checkpoint is not None:
        # Stamp the sidecar up front so even an interrupted first run
        # leaves a checkpoint that --resume can validate.
        write_checkpoint_meta(checkpoint, fingerprint)
    if plan is not None:
        install_faults(plan)

    try:
        if args.command == "list":
            print(_list(args.what))
        elif args.command == "measure":
            print(_measure(args, study))
        elif args.command == "experiment":
            print(render_experiment(run_experiment(args.experiment_id, study)))
        elif args.command == "findings":
            print(_findings(study))
        elif args.command == "dataset":
            print(_dataset(args, study))
        elif args.command == "figure":
            renderer = {
                "fig2": figures.figure2,
                "fig3": figures.figure3,
                "fig7c": figures.figure7c,
                "fig11": figures.figure11,
                "fig12": figures.figure12,
            }[args.figure_id]
            print(renderer(study))
        elif args.command == "project":
            print(_project(args, study))
        elif args.command == "stats":
            print(_stats(study))
        elif args.command == "serve":
            code = _serve(args, study, jobs, fingerprint)
            if code != 0:
                return code
    except MeasurementError as exc:
        # A single quarantined pair fails `measure` outright; sweeps
        # (`dataset`) absorb failures into CampaignHealth instead.
        print(f"error: measurement failed: {exc}", file=sys.stderr)
        return 3
    finally:
        if inject is not None:
            uninstall_faults()
        if progress is not None:
            progress.finish()
        if args.trace:
            tracer.export_jsonl(args.trace)
        if args.trace_chrome:
            tracer.export_chrome_trace(args.trace_chrome)
    if args.metrics:
        print(render_prometheus(), end="")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
