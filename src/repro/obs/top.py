"""``repro top``: a live ASCII ops view over a running campaign server.

Polls ``/healthz``, ``/slo``, and ``/metrics`` (the Prometheus text is
re-parsed with :func:`repro.obs.export.parse_prometheus` — no external
stack needed) and renders one self-contained frame: service state and
throughput counters, cache hit rate, the in-flight job table, per-stage
and per-route latency quantiles, and error-budget burn.

Rendering is a pure function of the three payloads
(:func:`render_top`), so the screen logic is testable without a server;
:func:`run_top` owns the polling loop and terminal clearing.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from typing import Mapping, Optional, TextIO

from repro.obs.export import parse_prometheus

#: ANSI "clear screen, cursor home" — plain strings so tests can strip it.
CLEAR = "\x1b[2J\x1b[H"

_POLL_TIMEOUT_S = 10.0


def _fetch(url: str) -> tuple[int, bytes]:
    try:
        with urllib.request.urlopen(url, timeout=_POLL_TIMEOUT_S) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        # A draining server answers /healthz with 503 + a JSON body; that
        # is a frame to render, not a failure.
        return error.code, error.read()


def poll(base_url: str) -> dict[str, object]:
    """One scrape of the three ops endpoints, as parsed payloads."""
    base = base_url.rstrip("/")
    _, health_raw = _fetch(base + "/healthz")
    _, slo_raw = _fetch(base + "/slo")
    _, metrics_raw = _fetch(base + "/metrics")
    return {
        "health": json.loads(health_raw),
        "slo": json.loads(slo_raw),
        "metrics": parse_prometheus(metrics_raw.decode("utf-8")),
    }


def _metric_total(
    metrics: Mapping[str, Mapping[tuple, float]], name: str
) -> float:
    return sum((metrics.get(name) or {}).values())


def _bar(fraction: float, width: int = 24) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = round(fraction * width)
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def _quantile_row(name: str, summary: Mapping[str, object]) -> str:
    return (
        f"  {name:<12} {summary.get('count', 0):>6}  "
        f"p50 {float(summary.get('p50_s', 0.0)) * 1e3:>8.1f}ms  "
        f"p95 {float(summary.get('p95_s', 0.0)) * 1e3:>8.1f}ms  "
        f"p99 {float(summary.get('p99_s', 0.0)) * 1e3:>8.1f}ms"
    )


def render_top(
    health: Mapping[str, object],
    slo: Mapping[str, object],
    metrics: Mapping[str, Mapping[tuple, float]],
) -> str:
    """One dashboard frame from the three payloads (no trailing clear)."""
    lines: list[str] = []
    status = str(health.get("status", "?"))
    lines.append(
        f"repro top — {status.upper():<8} "
        f"up {float(health.get('uptime_s', 0.0)):.0f}s  "
        f"pending {health.get('pending_jobs', 0)}  "
        f"completed {health.get('completed', 0)}  "
        f"coalesced {health.get('coalesced', 0)}  "
        f"rejected {health.get('rejected', 0)}  "
        f"failed {health.get('failed', 0)}"
    )

    hits = _metric_total(metrics, "repro_study_cache_hits_total")
    misses = _metric_total(metrics, "repro_study_cache_misses_total")
    looked_up = hits + misses
    hit_rate = hits / looked_up if looked_up else 0.0
    lines.append(
        f"cache {_bar(hit_rate)} {hit_rate * 100:5.1f}% hit "
        f"({int(hits)}/{int(looked_up)})  "
        f"store {health.get('store_records', 0)} records  "
        f"quarantined {health.get('quarantined', 0)}"
    )

    # Compiled sweep kernels — absent on pre-kernel servers, so degrade
    # to nothing rather than crash.
    kernels = health.get("kernels")
    if isinstance(kernels, Mapping):
        fallbacks = kernels.get("fallbacks")
        fallback_total = (
            sum(int(v) for v in fallbacks.values())
            if isinstance(fallbacks, Mapping)
            else 0
        )
        lines.append(
            f"kernels: {kernels.get('compiles', 0)} compiled  "
            f"{kernels.get('cache_hits', 0)} hits  "
            f"{fallback_total} scalar fallbacks  "
            f"{float(kernels.get('cache_bytes') or 0) / 1024.0:.1f} KiB cached"
        )

    availability = slo.get("availability") or {}
    budget = availability.get("error_budget") if isinstance(availability, Mapping) else None
    if isinstance(budget, Mapping):
        consumed = float(budget.get("consumed", 0.0))
        lines.append(
            f"error budget {_bar(consumed)} {consumed * 100:5.1f}% consumed  "
            f"burn x{float(budget.get('burn_rate', 0.0)):.2f}  "
            f"availability {float(availability.get('observed', 1.0)) * 100:.3f}%"
            f" (target {float(availability.get('target') or 0.0) * 100:.3f}%)"
        )
    else:
        lines.append(
            f"availability {float(availability.get('observed', 1.0)) * 100:.3f}%"
            f"  requests {availability.get('requests', 0)}"
            f"  errors {availability.get('errors', 0)}"
            + ("" if slo.get("config") else "  (no SLO configured)")
        )
    violations = slo.get("violations") or []
    if violations:
        lines.append("SLO VIOLATIONS: " + ", ".join(str(v) for v in violations))

    # Fleet worker table — absent on pre-fleet servers and on servers
    # running the plain pool, so degrade to nothing rather than crash.
    fleet = health.get("fleet")
    if isinstance(fleet, Mapping):
        workers = fleet.get("workers")
        restarts = _metric_total(metrics, "repro_fleet_worker_restarts_total")
        requeues = _metric_total(metrics, "repro_fleet_requeues_total")
        lines.append("")
        lines.append(
            f"fleet: {fleet.get('live', '?')}/{fleet.get('size', '?')} "
            f"workers live  restarts {int(restarts) or fleet.get('restarts', 0)}  "
            f"requeues {int(requeues) or fleet.get('requeues', 0)}  "
            f"heartbeat {float(fleet.get('heartbeat_s') or 0.0) * 1e3:.0f}ms "
            f"x{fleet.get('liveness_misses', '?')} misses"
        )
        if isinstance(workers, list) and workers:
            lines.append(
                "  id   pid     state  beats  chunks  heartbeat-age"
            )
            for worker in workers:
                if not isinstance(worker, Mapping):
                    continue
                lines.append(
                    f"  {str(worker.get('id', '?')):<4} "
                    f"{str(worker.get('pid', '?')):<7} "
                    f"{str(worker.get('state', '?')):<6} "
                    f"{worker.get('beats', 0):>5}  "
                    f"{worker.get('chunks_done', 0):>6}  "
                    f"{float(worker.get('heartbeat_age_s') or 0.0):>10.3f}s"
                )

    in_flight = health.get("in_flight") or []
    lines.append("")
    lines.append(f"in-flight jobs ({len(in_flight)}):")
    if in_flight:
        for job in list(in_flight)[:10]:
            lines.append(
                f"  {str(job.get('benchmark', '?')):<14}"
                f" {str(job.get('config', '?')):<28}"
                f" {'[' + str(job.get('plan')) + ']' if job.get('plan') else '':<12}"
                f" {float(job.get('age_s', 0.0)):>7.2f}s"
            )
        if len(in_flight) > 10:
            lines.append(f"  ... and {len(in_flight) - 10} more")
    else:
        lines.append("  (idle)")

    stages = slo.get("stages") or {}
    if stages:
        lines.append("")
        lines.append("stage latency:        count")
        for name in sorted(stages):
            lines.append(_quantile_row(name, stages[name]))

    routes = slo.get("routes") or {}
    if routes:
        lines.append("")
        lines.append("route latency:        count")
        for name in sorted(routes):
            row = _quantile_row(name, routes[name])
            violating = routes[name].get("violating") or []
            if violating:
                row += "  !! " + ",".join(violating)
            lines.append(row)

    return "\n".join(lines) + "\n"


def run_top(
    url: str,
    interval_s: float = 2.0,
    iterations: Optional[int] = None,
    stream: TextIO = sys.stdout,
    clear: bool = True,
) -> int:
    """Poll-and-render until interrupted (or ``iterations`` frames).

    Returns a process exit code: 0 on a clean exit, 3 when the server
    could not be reached at all.
    """
    frames = 0
    while iterations is None or frames < iterations:
        try:
            payloads = poll(url)
        except (OSError, ValueError) as error:
            print(f"repro top: cannot poll {url}: {error}", file=sys.stderr)
            return 3
        frame = render_top(
            payloads["health"], payloads["slo"], payloads["metrics"]  # type: ignore[arg-type]
        )
        if clear and frames:
            stream.write(CLEAR)
        stream.write(frame)
        stream.flush()
        frames += 1
        if iterations is not None and frames >= iterations:
            break
        try:
            time.sleep(interval_s)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            break
    return 0
