"""Hierarchical tracing: spans over the measurement campaign.

A span is one timed unit of work (an experiment regeneration, one
``study.measure``) with wall-time, attributes, and a parent resolved
through :mod:`contextvars` — so nesting follows the call structure with
no explicit threading of span objects, and survives threads/async tasks
that copy the context.

The default tracer is **disabled**: ``span()`` then yields a shared
no-op span at negligible cost.  The CLI enables it for ``--trace`` and
exports every finished span as one JSON object per line (JSONL); the
campaign server arms it per request (see :mod:`repro.obs.distributed`).

Span identity is global, not per-process: every tracer draws IDs from a
seeded 64-bit space (a sparse base derived from the pid, a per-process
tracer ordinal, and the monotonic clock, plus a low counter field), so
spans produced in pool workers do not alias the coordinator's — and
:meth:`Tracer.adopt` additionally *re-maps* incoming worker spans onto
the adopting tracer's own ID space in a deterministic order, which is
what makes the merged trace independent of worker count.
"""

from __future__ import annotations

import contextvars
import hashlib
import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Collection, Iterable, Iterator, Mapping, Optional, Sequence, Union

_CURRENT_SPAN_ID: contextvars.ContextVar[Optional[int]] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)

# Wall-clock anchor taken once: spans pay a single perf_counter() read at
# open instead of a perf_counter() + time() pair, and wall times are
# derived at export.
_WALL_ANCHOR = time.time()
_PERF_ANCHOR = time.perf_counter()


def current_span_id() -> Optional[int]:
    """The span ID of the innermost open span in this context, if any."""
    return _CURRENT_SPAN_ID.get()


def wall_time_of(perf_t: float) -> float:
    """Convert a ``perf_counter`` reading to this process's wall clock."""
    return _WALL_ANCHOR + (perf_t - _PERF_ANCHOR)


#: Low bits of a span ID reserved for the per-tracer counter; the seeded
#: base occupies the bits above, so two tracers collide only if both
#: their bases match (a 2^-43 event) *and* their counters overlap.
_COUNTER_BITS = 20

_TRACER_ORDINAL = itertools.count(1)


def _seed_id_base() -> int:
    """A sparse positive 63-bit base with the counter field cleared.

    Seeded from (pid, per-process tracer ordinal, monotonic ns): distinct
    processes — including forked pool workers after :meth:`Tracer.reseed`
    — and distinct tracers within one process land in disjoint ID ranges.
    """
    token = f"{os.getpid()}:{next(_TRACER_ORDINAL)}:{time.monotonic_ns()}"
    digest = hashlib.blake2b(token.encode("ascii"), digest_size=8).digest()
    base = int.from_bytes(digest, "big") & ((1 << 63) - 1)
    base &= ~((1 << _COUNTER_BITS) - 1)
    # A zero base would alias the historical 1, 2, 3... sequence.
    return base or (1 << _COUNTER_BITS)


class Span:
    """One finished-or-running unit of traced work."""

    __slots__ = ("name", "span_id", "parent_id",
                 "_start_perf", "duration_s", "attributes")

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        attributes: Optional[dict[str, object]] = None,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self._start_perf = time.perf_counter()
        self.duration_s: Optional[float] = None
        # The kwargs dict handed in by Tracer.span is already fresh; take
        # ownership rather than copying on the hot path.
        self.attributes: dict[str, object] = (
            attributes if attributes is not None else {}
        )

    @property
    def start_wall(self) -> float:
        return _WALL_ANCHOR + (self._start_perf - _PERF_ANCHOR)

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value

    def finish(self) -> None:
        if self.duration_s is None:
            self.duration_s = time.perf_counter() - self._start_perf

    def as_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix_s": round(self.start_wall, 6),
            "duration_s": None if self.duration_s is None
            else round(self.duration_s, 9),
            "attributes": self.attributes,
        }

    @classmethod
    def from_dict(
        cls,
        record: Mapping[str, object],
        span_id: int,
        parent_id: Optional[int],
    ) -> "Span":
        """Reconstitute a shipped span under new identity.

        Used by :meth:`Tracer.adopt`: the wall start and duration are
        preserved; ``span_id``/``parent_id`` come from the adopter."""
        span = cls(
            str(record.get("name", "")),
            span_id=span_id,
            parent_id=parent_id,
            attributes=dict(record.get("attributes") or {}),  # type: ignore[arg-type]
        )
        start_unix = float(record.get("start_unix_s", _WALL_ANCHOR))  # type: ignore[arg-type]
        span._start_perf = _PERF_ANCHOR + (start_unix - _WALL_ANCHOR)
        duration = record.get("duration_s")
        span.duration_s = None if duration is None else float(duration)  # type: ignore[arg-type]
        return span


class _NullSpan:
    """What a disabled tracer hands out: accepts attributes, records nothing."""

    __slots__ = ()
    name = ""
    span_id = None
    parent_id = None

    def set_attribute(self, key: str, value: object) -> None:
        pass


NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context manager for one span; a plain class (not a generator
    contextmanager) because ``study.measure`` opens one per uncached
    measurement and the generator machinery costs several microseconds."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", span: "Span | _NullSpan") -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> "Span | _NullSpan":
        span = self._span
        if span is not NULL_SPAN:
            self._token = _CURRENT_SPAN_ID.set(span.span_id)
        return span

    def __exit__(self, *exc: object) -> None:
        span = self._span
        if span is not NULL_SPAN:
            _CURRENT_SPAN_ID.reset(self._token)
            span.finish()
            self._tracer._append(span)


_NULL_HANDLE = _SpanHandle(None, NULL_SPAN)  # type: ignore[arg-type]


class Tracer:
    """Collects finished spans; parenthood propagates via contextvars.

    The finished list is mutated under a lock (one uncontended acquire
    per span *close*, nothing per invocation) because the campaign server
    finishes spans on its measurement thread while the event loop prunes
    served request trees out of the same list.
    """

    def __init__(self, enabled: bool = False) -> None:
        self._enabled = enabled
        self._ids = itertools.count(1)
        self._id_base = _seed_id_base()
        self._lock = threading.Lock()
        self.finished: list[Span] = []

    # -- lifecycle -----------------------------------------------------------

    @property
    def is_enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def clear(self) -> None:
        """Drop every finished span and restart the counter (the seeded
        base is kept, so a cleared tracer re-issues its own discarded IDs
        but still cannot alias another tracer's)."""
        with self._lock:
            self.finished.clear()
        self._ids = itertools.count(1)

    def reseed(self) -> None:
        """Re-derive the ID base from the *current* process.

        Pool initializers call this: a forked worker inherits the
        parent's base, and without reseeding its spans would alias the
        coordinator's (and every sibling worker's)."""
        self._id_base = _seed_id_base()
        self._ids = itertools.count(1)

    def _next_id(self) -> int:
        return self._id_base + next(self._ids)

    def _append(self, span: Span) -> None:
        with self._lock:
            self.finished.append(span)

    # -- spans ---------------------------------------------------------------

    def span(self, name: str, **attributes: object) -> _SpanHandle:
        """Open a span; the previous open span (if any) becomes its parent."""
        if not self._enabled:
            return _NULL_HANDLE
        return _SpanHandle(
            self,
            Span(
                name,
                span_id=self._next_id(),
                parent_id=_CURRENT_SPAN_ID.get(),
                attributes=attributes,
            ),
        )

    def child_span(
        self, name: str, parent_id: Optional[int], **attributes: object
    ) -> _SpanHandle:
        """Open a span under an *explicit* parent instead of the ambient
        one — how work dispatched across threads (the scheduler's
        measurement thread) stays attached to the request that queued it.
        Spans opened inside the handle still nest normally."""
        if not self._enabled:
            return _NULL_HANDLE
        return _SpanHandle(
            self,
            Span(
                name,
                span_id=self._next_id(),
                parent_id=parent_id,
                attributes=attributes,
            ),
        )

    def record_span(
        self,
        name: str,
        parent_id: Optional[int],
        start_unix_s: float,
        duration_s: float,
        **attributes: object,
    ) -> Span | _NullSpan:
        """Record an already-elapsed interval as a finished span.

        For stages whose start predates the code that reports them — the
        scheduler's queue wait is only known at dispatch time."""
        if not self._enabled:
            return NULL_SPAN
        span = Span(
            name,
            span_id=self._next_id(),
            parent_id=parent_id,
            attributes=attributes,
        )
        span._start_perf = _PERF_ANCHOR + (start_unix_s - _WALL_ANCHOR)
        span.duration_s = float(duration_s)
        self._append(span)
        return span

    # -- cross-process merge --------------------------------------------------

    def adopt(
        self,
        spans: Sequence[Mapping[str, object]],
        parent_id: Optional[int] = None,
    ) -> list[Span]:
        """Merge externally captured spans (worker ``as_dict`` payloads)
        into this tracer.

        Every incoming span is re-issued an ID from this tracer's space
        in input order — so adopting the same payloads in the same order
        yields the same structure regardless of which worker produced
        them — and parent links are remapped alongside.  Spans whose
        parent is absent from the payload (the workers' roots) are
        attached under ``parent_id``.  Returns the adopted spans."""
        id_map: dict[int, int] = {}
        for record in spans:
            old = record.get("span_id")
            if isinstance(old, int):
                id_map[old] = self._next_id()
        adopted: list[Span] = []
        for record in spans:
            old = record.get("span_id")
            new_id = id_map[old] if isinstance(old, int) else self._next_id()
            old_parent = record.get("parent_id")
            new_parent = (
                id_map[old_parent]
                if isinstance(old_parent, int) and old_parent in id_map
                else parent_id
            )
            adopted.append(Span.from_dict(record, new_id, new_parent))
        with self._lock:
            self.finished.extend(adopted)
        return adopted

    def reparent_children(
        self,
        parent_id: int,
        new_parent_for,
    ) -> int:
        """Re-home direct children of ``parent_id``: ``new_parent_for``
        maps a child span to its new parent ID (or ``None`` to leave it).
        Returns the number of spans moved — how the scheduler attaches
        each pair's measurement subtree to the request that owns it."""
        moved = 0
        with self._lock:
            for span in self.finished:
                if span.parent_id == parent_id:
                    new_parent = new_parent_for(span)
                    if new_parent is not None and new_parent != parent_id:
                        span.parent_id = new_parent
                        moved += 1
        return moved

    # -- queries -------------------------------------------------------------

    def roots(self) -> tuple[Span, ...]:
        return tuple(s for s in self.finished if s.parent_id is None)

    def children_of(self, span: Span) -> tuple[Span, ...]:
        return tuple(s for s in self.finished if s.parent_id == span.span_id)

    def by_name(self, name: str) -> tuple[Span, ...]:
        return tuple(s for s in self.finished if s.name == name)

    def subtree(self, root_id: int) -> list[Span]:
        """The span with ``root_id`` plus every finished descendant, in
        finished order (children generally precede their parents)."""
        with self._lock:
            snapshot = list(self.finished)
        keep = {root_id}
        # Children can finish before or after their parents; sweep until
        # the reachable set stops growing (bounded by the snapshot size).
        grew = True
        while grew:
            grew = False
            for span in snapshot:
                if span.span_id not in keep and span.parent_id in keep:
                    keep.add(span.span_id)
                    grew = True
        return [s for s in snapshot if s.span_id in keep]

    def detach_subtree(self, root_id: int) -> list[Span]:
        """:meth:`subtree` and :meth:`prune` fused under one lock: return
        the subtree rooted at ``root_id`` and drop it from the finished
        list in the same pass — the campaign server's per-request archive
        step, kept to a single scan on the hot path."""
        with self._lock:
            keep = {root_id}
            grew = True
            while grew:
                grew = False
                for span in self.finished:
                    if span.span_id not in keep and span.parent_id in keep:
                        keep.add(span.span_id)
                        grew = True
            detached = [s for s in self.finished if s.span_id in keep]
            if detached:
                self.finished[:] = [
                    s for s in self.finished if s.span_id not in keep
                ]
            return detached

    def prune(self, span_ids: Collection[int]) -> int:
        """Drop finished spans by ID; returns how many were removed.

        The campaign server archives each served request's subtree into
        its bounded trace store and prunes it here, so a long-lived
        process's finished list holds only not-yet-archived spans."""
        drop = set(span_ids)
        if not drop:
            return 0
        with self._lock:
            before = len(self.finished)
            self.finished[:] = [
                s for s in self.finished if s.span_id not in drop
            ]
            return before - len(self.finished)

    # -- export --------------------------------------------------------------

    def export_jsonl(self, path: str | Path) -> Path:
        """Write every finished span as one JSON object per line."""
        out = Path(path)
        with out.open("w", encoding="utf-8") as fh:
            for span in list(self.finished):
                fh.write(json.dumps(span.as_dict(), default=str) + "\n")
        return out

    def export_chrome_trace(self, path: str | Path) -> Path:
        """Write every finished span as a Chrome-trace (``trace_event``)
        JSON file, loadable in ``chrome://tracing`` / Perfetto."""
        return write_chrome_trace(list(self.finished), path)


def read_jsonl(path: str | Path) -> list[dict[str, object]]:
    """Parse a span JSONL file back into dicts (the export round-trip)."""
    spans: list[dict[str, object]] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def chrome_trace_events(
    spans: Iterable[Union[Span, Mapping[str, object]]],
) -> list[dict[str, object]]:
    """Spans as Chrome-trace complete (``"ph": "X"``) events, in input
    order.  Span identity rides along in ``args`` (``span_id`` /
    ``parent_id``), so the export preserves exact nesting — not just the
    visual time-containment Perfetto infers — and a JSONL export of the
    same spans agrees with it span for span."""
    events: list[dict[str, object]] = []
    own_pid = os.getpid()
    for span in spans:
        record = span.as_dict() if isinstance(span, Span) else dict(span)
        attributes = dict(record.get("attributes") or {})  # type: ignore[arg-type]
        pid = attributes.get("pid", own_pid)
        events.append(
            {
                "name": record["name"],
                "ph": "X",
                "ts": round(float(record["start_unix_s"]) * 1e6, 3),  # type: ignore[arg-type]
                "dur": round(float(record.get("duration_s") or 0.0) * 1e6, 3),  # type: ignore[arg-type]
                "pid": pid,
                "tid": pid,
                "args": {
                    **attributes,
                    "span_id": record["span_id"],
                    "parent_id": record["parent_id"],
                },
            }
        )
    return events


def write_chrome_trace(
    spans: Iterable[Union[Span, Mapping[str, object]]], path: str | Path
) -> Path:
    """Write spans as a ``{"traceEvents": [...]}`` Chrome-trace file."""
    out = Path(path)
    payload = {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
    }
    out.write_text(json.dumps(payload, default=str), encoding="utf-8")
    return out


_DEFAULT_TRACER = Tracer()


def default_tracer() -> Tracer:
    """The process-wide tracer all built-in instrumentation reports to."""
    return _DEFAULT_TRACER


@contextmanager
def root_span(experiment_id: str, **attributes: object) -> Iterator[Span | _NullSpan]:
    """The experiment-level root span (``experiment:<id>``).

    :func:`repro.experiments.registry.run_experiment` wraps every
    registered experiment in one of these; extension experiments that run
    outside the registry should do the same so their telemetry nests under
    a single auditable root.
    """
    with default_tracer().span(
        f"experiment:{experiment_id}", experiment=experiment_id, **attributes
    ) as span:
        yield span
