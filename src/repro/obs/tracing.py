"""Hierarchical tracing: spans over the measurement campaign.

A span is one timed unit of work (an experiment regeneration, one
``study.measure``) with wall-time, attributes, and a parent resolved
through :mod:`contextvars` — so nesting follows the call structure with
no explicit threading of span objects, and survives threads/async tasks
that copy the context.

The default tracer is **disabled**: ``span()`` then yields a shared
no-op span at negligible cost.  The CLI enables it for ``--trace`` and
exports every finished span as one JSON object per line (JSONL).
"""

from __future__ import annotations

import contextvars
import itertools
import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Optional

_CURRENT_SPAN_ID: contextvars.ContextVar[Optional[int]] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)

# Wall-clock anchor taken once: spans pay a single perf_counter() read at
# open instead of a perf_counter() + time() pair, and wall times are
# derived at export.
_WALL_ANCHOR = time.time()
_PERF_ANCHOR = time.perf_counter()


class Span:
    """One finished-or-running unit of traced work."""

    __slots__ = ("name", "span_id", "parent_id",
                 "_start_perf", "duration_s", "attributes")

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        attributes: Optional[dict[str, object]] = None,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self._start_perf = time.perf_counter()
        self.duration_s: Optional[float] = None
        # The kwargs dict handed in by Tracer.span is already fresh; take
        # ownership rather than copying on the hot path.
        self.attributes: dict[str, object] = (
            attributes if attributes is not None else {}
        )

    @property
    def start_wall(self) -> float:
        return _WALL_ANCHOR + (self._start_perf - _PERF_ANCHOR)

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value

    def finish(self) -> None:
        if self.duration_s is None:
            self.duration_s = time.perf_counter() - self._start_perf

    def as_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix_s": round(self.start_wall, 6),
            "duration_s": None if self.duration_s is None
            else round(self.duration_s, 9),
            "attributes": self.attributes,
        }


class _NullSpan:
    """What a disabled tracer hands out: accepts attributes, records nothing."""

    __slots__ = ()
    name = ""
    span_id = None
    parent_id = None

    def set_attribute(self, key: str, value: object) -> None:
        pass


NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context manager for one span; a plain class (not a generator
    contextmanager) because ``study.measure`` opens one per uncached
    measurement and the generator machinery costs several microseconds."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", span: "Span | _NullSpan") -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> "Span | _NullSpan":
        span = self._span
        if span is not NULL_SPAN:
            self._token = _CURRENT_SPAN_ID.set(span.span_id)
        return span

    def __exit__(self, *exc: object) -> None:
        span = self._span
        if span is not NULL_SPAN:
            _CURRENT_SPAN_ID.reset(self._token)
            span.finish()
            self._tracer.finished.append(span)


_NULL_HANDLE = _SpanHandle(None, NULL_SPAN)  # type: ignore[arg-type]


class Tracer:
    """Collects finished spans; parenthood propagates via contextvars."""

    def __init__(self, enabled: bool = False) -> None:
        self._enabled = enabled
        self._ids = itertools.count(1)
        self.finished: list[Span] = []

    # -- lifecycle -----------------------------------------------------------

    @property
    def is_enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def clear(self) -> None:
        self.finished.clear()
        self._ids = itertools.count(1)

    # -- spans ---------------------------------------------------------------

    def span(self, name: str, **attributes: object) -> _SpanHandle:
        """Open a span; the previous open span (if any) becomes its parent."""
        if not self._enabled:
            return _NULL_HANDLE
        return _SpanHandle(
            self,
            Span(
                name,
                span_id=next(self._ids),
                parent_id=_CURRENT_SPAN_ID.get(),
                attributes=attributes,
            ),
        )

    # -- queries -------------------------------------------------------------

    def roots(self) -> tuple[Span, ...]:
        return tuple(s for s in self.finished if s.parent_id is None)

    def children_of(self, span: Span) -> tuple[Span, ...]:
        return tuple(s for s in self.finished if s.parent_id == span.span_id)

    def by_name(self, name: str) -> tuple[Span, ...]:
        return tuple(s for s in self.finished if s.name == name)

    # -- export --------------------------------------------------------------

    def export_jsonl(self, path: str | Path) -> Path:
        """Write every finished span as one JSON object per line."""
        out = Path(path)
        with out.open("w", encoding="utf-8") as fh:
            for span in self.finished:
                fh.write(json.dumps(span.as_dict(), default=str) + "\n")
        return out


def read_jsonl(path: str | Path) -> list[dict[str, object]]:
    """Parse a span JSONL file back into dicts (the export round-trip)."""
    spans: list[dict[str, object]] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


_DEFAULT_TRACER = Tracer()


def default_tracer() -> Tracer:
    """The process-wide tracer all built-in instrumentation reports to."""
    return _DEFAULT_TRACER


@contextmanager
def root_span(experiment_id: str, **attributes: object) -> Iterator[Span | _NullSpan]:
    """The experiment-level root span (``experiment:<id>``).

    :func:`repro.experiments.registry.run_experiment` wraps every
    registered experiment in one of these; extension experiments that run
    outside the registry should do the same so their telemetry nests under
    a single auditable root.
    """
    with default_tracer().span(
        f"experiment:{experiment_id}", experiment=experiment_id, **attributes
    ) as span:
        yield span
