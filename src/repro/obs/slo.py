"""SLO monitoring: latency/availability targets, error budgets, burn.

The campaign server accepts a declarative SLO spec
(``--slo p99=250ms,avail=99.9``), records per-route and per-stage
latency into histograms declared here, and serves a ``GET /slo`` report
computed by :func:`slo_report`:

- per-route latency quantiles (p50/p95/p99, estimated from the
  histogram buckets — see :meth:`~repro.obs.metrics.Histogram.quantile`)
  checked against the configured targets;
- availability from the request counter (a response is an *error* only
  when its status is 5xx: 4xx means the caller was wrong, the service
  still did its job).  504 is carved out of the 5xx family: a deadline
  shed means the *client's* budget expired, so it surfaces in the
  ``shed`` block instead of burning the availability error budget;
- the error budget: with availability target ``a``, the budget is the
  fraction ``1 - a`` of requests allowed to fail.  ``consumed`` is the
  fraction of that budget already spent, and ``burn_rate`` is the
  classic multiplier — observed error rate over allowed error rate, so
  1.0 means exactly on target and 10 means the budget disappears ten
  times faster than provisioned.

The stage histogram is shared with the scheduler so queue wait, batch
measurement, and store writes land in one instrument, keyed by a
``stage`` label.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.obs.metrics import Histogram, MetricsRegistry, default_registry

#: Route-level request latency (seconds), labelled by canonical route.
REQUEST_SECONDS = default_registry().histogram(
    "repro_http_request_seconds",
    "Wall seconds per HTTP request by canonical route",
)

#: Stage-level latency (seconds), labelled by pipeline stage
#: (admission, schedule, batch, store).
STAGE_SECONDS = default_registry().histogram(
    "repro_service_stage_seconds",
    "Wall seconds per request-pipeline stage",
)


def observe_stage(stage: str, seconds: float) -> None:
    """Record one stage latency sample (no-op when metrics are disabled)."""
    STAGE_SECONDS.labels(stage=stage).observe(seconds)


#: Quantile keys the SLO spec accepts, mapped to their numeric rank.
_QUANTILES: dict[str, float] = {"p50": 0.50, "p90": 0.90, "p95": 0.95, "p99": 0.99}

_DURATION_SUFFIXES: tuple[tuple[str, float], ...] = (
    ("us", 1e-6),
    ("ms", 1e-3),
    ("s", 1.0),
)


def _parse_duration(text: str) -> float:
    text = text.strip().lower()
    for suffix, scale in _DURATION_SUFFIXES:
        if text.endswith(suffix):
            return float(text[: -len(suffix)]) * scale
    return float(text)  # bare numbers are seconds


@dataclass(frozen=True)
class SloConfig:
    """Parsed SLO targets: latency quantiles (seconds) and availability."""

    latency: Mapping[str, float] = field(default_factory=dict)
    availability: Optional[float] = None  # fraction in (0, 1]

    def as_dict(self) -> dict[str, object]:
        return {
            "latency": {k: round(v, 9) for k, v in sorted(self.latency.items())},
            "availability": self.availability,
        }


def parse_slo(spec: str) -> SloConfig:
    """Parse ``"p99=250ms,avail=99.9"`` into an :class:`SloConfig`.

    Latency keys are p50/p90/p95/p99 with an optional us/ms/s suffix
    (bare numbers are seconds).  ``avail`` takes a percentage (``99.9``)
    or a fraction (``0.999``).  Raises :class:`ValueError` with the
    offending clause on anything malformed.
    """
    latency: dict[str, float] = {}
    availability: Optional[float] = None
    for clause in spec.split(","):
        clause = clause.strip()
        if not clause:
            continue
        key, _, value = clause.partition("=")
        key = key.strip().lower()
        if not value:
            raise ValueError(f"SLO clause {clause!r} is not key=value")
        try:
            if key in _QUANTILES:
                seconds = _parse_duration(value)
                if seconds <= 0:
                    raise ValueError("latency target must be positive")
                latency[key] = seconds
            elif key in ("avail", "availability"):
                target = float(value)
                if target > 1.0:
                    target /= 100.0
                if not 0.0 < target <= 1.0:
                    raise ValueError("availability must be in (0, 100]")
                availability = target
            else:
                raise ValueError(
                    f"unknown SLO key {key!r} "
                    f"(expected {'/'.join(_QUANTILES)} or avail)"
                )
        except ValueError as error:
            raise ValueError(f"bad SLO clause {clause!r}: {error}") from None
    return SloConfig(latency=latency, availability=availability)


def quantile_summary(histogram: Histogram) -> dict[str, object]:
    """count/mean plus the standard quantile estimates for one histogram."""
    return {
        "count": histogram.count,
        "mean_s": round(histogram.mean, 6),
        "p50_s": round(histogram.quantile(0.50), 6),
        "p95_s": round(histogram.quantile(0.95), 6),
        "p99_s": round(histogram.quantile(0.99), 6),
    }


def _label_value(key: tuple[tuple[str, str], ...], name: str) -> Optional[str]:
    for label, value in key:
        if label == name:
            return value
    return None


def slo_report(
    config: Optional[SloConfig],
    registry: Optional[MetricsRegistry] = None,
) -> dict[str, object]:
    """The ``GET /slo`` payload: routes, stages, availability, budget.

    Reads the shared instruments from ``registry`` (the process default
    unless given): ``repro_http_request_seconds`` per route,
    ``repro_service_stage_seconds`` per stage, ``repro_measure_seconds``
    and ``repro_service_batch_seconds`` folded in as stages, and
    ``repro_service_requests_total`` for availability.  Works with no
    config (quantiles reported, nothing checked) and with no traffic
    (zero counts, budget untouched).
    """
    registry = registry or default_registry()
    report: dict[str, object] = {
        "config": config.as_dict() if config else None,
        "routes": {},
        "stages": {},
    }

    violations: list[str] = []
    request_seconds = registry.get("repro_http_request_seconds")
    if isinstance(request_seconds, Histogram):
        routes: dict[str, object] = {}
        for child in request_seconds.children():
            if not isinstance(child, Histogram) or child.count == 0:
                continue
            route = child.label_values.get("route", "?")
            summary = quantile_summary(child)
            failing = []
            for key, target in (config.latency if config else {}).items():
                observed = child.quantile(_QUANTILES[key])
                if observed > target:
                    failing.append(key)
                    violations.append(f"{route}:{key}")
            summary["violating"] = sorted(failing)
            routes[route] = summary
        report["routes"] = routes

    stages: dict[str, object] = {}
    stage_seconds = registry.get("repro_service_stage_seconds")
    if isinstance(stage_seconds, Histogram):
        for child in stage_seconds.children():
            if isinstance(child, Histogram) and child.count:
                stage = child.label_values.get("stage", "?")
                stages[stage] = quantile_summary(child)
    for name, stage in (
        ("repro_service_batch_seconds", "batch"),
        ("repro_measure_seconds", "measure"),
    ):
        histogram = registry.get(name)
        if isinstance(histogram, Histogram) and histogram.count and stage not in stages:
            stages[stage] = quantile_summary(histogram)
    report["stages"] = stages

    total = 0.0
    errors = 0.0
    shed_responses = 0.0
    requests_total = registry.get("repro_service_requests_total")
    if requests_total is not None:
        for child in requests_total.children():
            value = getattr(child, "value", 0.0)
            total += value
            status = child.label_values.get("status", "")
            if status == "504":
                # The client's deadline expired before we could serve it;
                # shed work is reported distinctly, not as unavailability.
                shed_responses += value
            elif status.startswith("5"):
                errors += value
    observed_availability = 1.0 - (errors / total) if total else 1.0
    availability: dict[str, object] = {
        "requests": int(total),
        "errors": int(errors),
        "observed": round(observed_availability, 6),
        "target": config.availability if config else None,
    }

    target = config.availability if config else None
    if target is not None and target < 1.0:
        allowed = 1.0 - target
        error_rate = errors / total if total else 0.0
        consumed = error_rate / allowed
        availability["error_budget"] = {
            "allowed_fraction": round(allowed, 6),
            "consumed": round(consumed, 6),
            "remaining": round(1.0 - consumed, 6),
            "burn_rate": round(error_rate / allowed, 6),
        }
        if observed_availability < target:
            violations.append(f"availability:{observed_availability:.6f}")
    elif target is not None:
        # A 100% target has no budget to burn; any error violates it.
        availability["error_budget"] = None
        if errors:
            violations.append("availability:target-is-1.0")

    report["availability"] = availability

    # Load shedding is deliberate, visible work refusal — never folded
    # into the error budget, always its own line in the report.
    shed_stages: dict[str, int] = {}
    shed_total = registry.get("repro_requests_shed_total")
    if shed_total is not None:
        for child in shed_total.children():
            value = getattr(child, "value", 0.0)
            if value:
                stage = child.label_values.get("stage", "?")
                shed_stages[stage] = shed_stages.get(stage, 0) + int(value)
    report["shed"] = {
        "total": sum(shed_stages.values()),
        "stages": dict(sorted(shed_stages.items())),
        "responses_504": int(shed_responses),
    }

    report["violations"] = sorted(violations)
    report["ok"] = not violations
    return report
