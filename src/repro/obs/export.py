"""Exporters: Prometheus text exposition and an ASCII summary table.

Both scrape a :class:`~repro.obs.metrics.MetricsRegistry` (the process
default unless one is passed), so ``python -m repro --metrics ...`` and
``repro stats`` are just different renderings of the same instruments.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)


#: Content-Type for the Prometheus text exposition format, for anything
#: serving :func:`render_prometheus` over HTTP (the campaign server's
#: ``/metrics`` endpoint, or a future scrape sidecar).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    """Escape per the exposition spec: backslash first, then quote and
    newline — label values like benchmark names are user-controlled and
    would otherwise break the line format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _unescape_label_value(value: str) -> str:
    out: list[str] = []
    chars = iter(value)
    for ch in chars:
        if ch != "\\":
            out.append(ch)
            continue
        escaped = next(chars, "")
        out.append({"n": "\n", '"': '"', "\\": "\\"}.get(escaped, "\\" + escaped))
    return "".join(out)


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def render_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """Prometheus text-format exposition of every registered instrument."""
    registry = registry or default_registry()
    lines: list[str] = []
    for metric in registry.collect():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for sample in metric.samples():
            labels = _format_labels(sample.label_values)
            if isinstance(sample, Histogram):
                for bound, cumulative in sample.bucket_counts():
                    bucket_labels = dict(sample.label_values, le=_format_value(bound))
                    lines.append(
                        f"{sample.name}_bucket{_format_labels(bucket_labels)} "
                        f"{cumulative}"
                    )
                lines.append(f"{sample.name}_sum{labels} {_format_value(sample.sum)}")
                lines.append(f"{sample.name}_count{labels} {sample.count}")
            elif isinstance(sample, (Counter, Gauge)):
                lines.append(f"{sample.name}{labels} {_format_value(sample.value)}")
    return "\n".join(lines) + "\n"


def render_summary(registry: Optional[MetricsRegistry] = None) -> str:
    """One aligned ASCII table summarising every instrument with data."""
    # Imported lazily: reporting.tables reaches experiments.base, whose
    # study import would cycle back through the instrumented modules.
    from repro.reporting.tables import render_rows

    registry = registry or default_registry()
    rows: list[dict[str, object]] = []
    for metric in registry.collect():
        for sample in metric.samples():
            labels = _format_labels(sample.label_values) or "-"
            if isinstance(sample, Histogram):
                if sample.count == 0:
                    continue
                rows.append(
                    {
                        "metric": sample.name,
                        "kind": sample.kind,
                        "labels": labels,
                        "value": round(sample.sum, 6),
                        "count": sample.count,
                        "mean": round(sample.mean, 6),
                        "p50": round(sample.quantile(0.50), 6),
                        "p95": round(sample.quantile(0.95), 6),
                        "p99": round(sample.quantile(0.99), 6),
                    }
                )
            elif isinstance(sample, (Counter, Gauge)):
                if sample.value == 0 and sample.children():
                    continue
                rows.append(
                    {
                        "metric": sample.name,
                        "kind": sample.kind,
                        "labels": labels,
                        "value": round(sample.value, 6),
                        "count": None,
                        "mean": None,
                        "p50": None,
                        "p95": None,
                        "p99": None,
                    }
                )
    if not rows:
        return "(no telemetry recorded)"
    return render_rows(rows, max_width=44)


def _parse_label_block(block: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    index = 0
    while index < len(block):
        eq = block.index("=", index)
        name = block[index:eq].strip().lstrip(",").strip()
        if block[eq + 1] != '"':
            raise ValueError(f"unquoted label value in {block!r}")
        cursor = eq + 2
        raw: list[str] = []
        while True:
            ch = block[cursor]
            if ch == "\\":
                raw.append(block[cursor:cursor + 2])
                cursor += 2
            elif ch == '"':
                cursor += 1
                break
            else:
                raw.append(ch)
                cursor += 1
        labels[name] = _unescape_label_value("".join(raw))
        index = cursor
    return labels


def parse_prometheus(
    text: str,
) -> dict[str, dict[tuple[tuple[str, str], ...], float]]:
    """Parse text exposition back into ``{name: {label_key: value}}``.

    The inverse of :func:`render_prometheus` for its own output (sample
    lines with optional escaped labels; comments skipped) — enough for
    ``repro top`` to consume a ``/metrics`` scrape without a Prometheus
    stack.  Label keys are the sorted ``(name, value)`` tuples used by
    :meth:`~repro.obs.metrics._Instrument.labels`; unlabelled samples use
    the empty tuple.
    """
    samples: dict[str, dict[tuple[tuple[str, str], ...], float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            block, value_part = rest.rsplit("}", 1)
            labels = _parse_label_block(block)
        else:
            name, value_part = line.split(None, 1)
            labels = {}
        value_text = value_part.strip()
        value = math.inf if value_text == "+Inf" else float(value_text)
        key = tuple(sorted(labels.items()))
        samples.setdefault(name.strip(), {})[key] = value
    return samples
