"""Exporters: Prometheus text exposition and an ASCII summary table.

Both scrape a :class:`~repro.obs.metrics.MetricsRegistry` (the process
default unless one is passed), so ``python -m repro --metrics ...`` and
``repro stats`` are just different renderings of the same instruments.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)


#: Content-Type for the Prometheus text exposition format, for anything
#: serving :func:`render_prometheus` over HTTP (the campaign server's
#: ``/metrics`` endpoint, or a future scrape sidecar).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def render_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """Prometheus text-format exposition of every registered instrument."""
    registry = registry or default_registry()
    lines: list[str] = []
    for metric in registry.collect():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for sample in metric.samples():
            labels = _format_labels(sample.label_values)
            if isinstance(sample, Histogram):
                for bound, cumulative in sample.bucket_counts():
                    bucket_labels = dict(sample.label_values, le=_format_value(bound))
                    lines.append(
                        f"{sample.name}_bucket{_format_labels(bucket_labels)} "
                        f"{cumulative}"
                    )
                lines.append(f"{sample.name}_sum{labels} {_format_value(sample.sum)}")
                lines.append(f"{sample.name}_count{labels} {sample.count}")
            elif isinstance(sample, (Counter, Gauge)):
                lines.append(f"{sample.name}{labels} {_format_value(sample.value)}")
    return "\n".join(lines) + "\n"


def render_summary(registry: Optional[MetricsRegistry] = None) -> str:
    """One aligned ASCII table summarising every instrument with data."""
    # Imported lazily: reporting.tables reaches experiments.base, whose
    # study import would cycle back through the instrumented modules.
    from repro.reporting.tables import render_rows

    registry = registry or default_registry()
    rows: list[dict[str, object]] = []
    for metric in registry.collect():
        for sample in metric.samples():
            labels = _format_labels(sample.label_values) or "-"
            if isinstance(sample, Histogram):
                if sample.count == 0:
                    continue
                rows.append(
                    {
                        "metric": sample.name,
                        "kind": sample.kind,
                        "labels": labels,
                        "value": round(sample.sum, 6),
                        "count": sample.count,
                        "mean": round(sample.mean, 6),
                    }
                )
            elif isinstance(sample, (Counter, Gauge)):
                if sample.value == 0 and sample.children():
                    continue
                rows.append(
                    {
                        "metric": sample.name,
                        "kind": sample.kind,
                        "labels": labels,
                        "value": round(sample.value, 6),
                        "count": None,
                        "mean": None,
                    }
                )
    if not rows:
        return "(no telemetry recorded)"
    return render_rows(rows, max_width=44)
