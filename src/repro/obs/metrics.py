"""Process-wide metrics registry (counters, gauges, histograms).

A zero-dependency, stdlib-only metrics layer in the Prometheus idiom:
instruments are created once against a registry (idempotently, so modules
can declare them at import time), may carry labelled children, and are
scraped by the exporters in :mod:`repro.obs.export`.

Instrumentation is always compiled in but can be globally disabled with
:func:`set_enabled` — a disabled instrument's ``inc``/``set``/``observe``
is a cheap early return, which is what :mod:`benchmarks.bench_obs_overhead`
uses as the uninstrumented-equivalent baseline.

Recording is lock-free: the campaign is single-threaded and the hot path
(several increments per engine invocation) cannot afford a lock acquire
per tick.  Under CPython's GIL each individual read/write stays
consistent; concurrent writers could at worst lose a tick, never corrupt
state.  Structural mutation (creating labelled children, registering
instruments) is fully locked.
"""

from __future__ import annotations

import functools
import math
import threading
import time
from bisect import bisect_left
from typing import Callable, Iterable, Iterator, Mapping, Optional, Sequence

_ENABLED = True


def set_enabled(enabled: bool) -> None:
    """Globally enable/disable every instrument's recording methods."""
    global _ENABLED
    _ENABLED = bool(enabled)


def enabled() -> bool:
    return _ENABLED


#: Default latency buckets (seconds), spanning sub-millisecond counter
#: bumps to multi-second full-protocol measurements.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0,
)


def _validate_name(name: str) -> str:
    if not name or not all(c.isalnum() or c == "_" for c in name):
        raise ValueError(f"metric name must be [A-Za-z0-9_]+, got {name!r}")
    return name


def _label_key(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


#: Picklable per-instrument state: ``{"kind", "value" | ("counts", "sum",
#: "count", "buckets"), "children": {label_key: ...}}`` — the wire format
#: pool workers ship their telemetry deltas home in.
InstrumentSnapshot = dict
RegistrySnapshot = dict


class _Instrument:
    """Shared plumbing: identity, lock, and labelled children."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labels: Mapping[str, str] | None = None) -> None:
        self.name = _validate_name(name)
        self.help = help
        self.label_values: dict[str, str] = dict(labels or {})
        self._lock = threading.Lock()
        self._children: dict[tuple[tuple[str, str], ...], "_Instrument"] = {}

    def labels(self, **labels: str) -> "_Instrument":
        """The child instrument for one label combination (created once)."""
        if not labels:
            raise ValueError("labels() needs at least one label")
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._make_child(labels)
                    self._children[key] = child
        return child

    def _make_child(self, labels: Mapping[str, str]) -> "_Instrument":
        return type(self)(self.name, self.help, labels)

    def children(self) -> tuple["_Instrument", ...]:
        return tuple(self._children.values())

    def samples(self) -> Iterator["_Instrument"]:
        """This instrument (if it holds data) and every labelled child."""
        if not self._children or self._touched():
            yield self
        for child in self._children.values():
            yield from child.samples()

    def _touched(self) -> bool:
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError

    # -- cross-process merging ----------------------------------------------

    def _state(self) -> dict:
        raise NotImplementedError

    def _apply(self, state: Mapping) -> None:
        raise NotImplementedError

    def snapshot(self) -> InstrumentSnapshot:
        """This instrument's state (and its children's) as picklable
        plain dicts — what a pool worker ships home."""
        snap: InstrumentSnapshot = {"kind": self.kind, **self._state()}
        if self._children:
            snap["children"] = {
                key: child.snapshot() for key, child in self._children.items()
            }
        return snap

    def apply_snapshot(self, snap: Mapping) -> None:
        """Merge a snapshot (usually a delta) additively into this
        instrument, creating labelled children as needed."""
        kind = snap.get("kind", self.kind)
        if kind != self.kind:
            raise TypeError(
                f"cannot merge a {kind} snapshot into {self.kind} {self.name!r}"
            )
        self._apply(snap)
        for key, child_snap in snap.get("children", {}).items():
            self.labels(**dict(key)).apply_snapshot(child_snap)


class Counter(_Instrument):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: Mapping[str, str] | None = None) -> None:
        super().__init__(name, help, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not _ENABLED:
            return
        if amount < 0:
            raise ValueError("counters only go up")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _touched(self) -> bool:
        return self._value != 0.0

    def reset(self) -> None:
        self._value = 0.0
        for child in self._children.values():
            child.reset()

    def _state(self) -> dict:
        return {"value": self._value}

    def _apply(self, state: Mapping) -> None:
        self._value += state.get("value", 0.0)


class Gauge(_Instrument):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: Mapping[str, str] | None = None) -> None:
        super().__init__(name, help, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        if not _ENABLED:
            return
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not _ENABLED:
            return
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def _touched(self) -> bool:
        return self._value != 0.0

    def reset(self) -> None:
        self._value = 0.0
        for child in self._children.values():
            child.reset()

    def _state(self) -> dict:
        return {"value": self._value}

    def _apply(self, state: Mapping) -> None:
        # A gauge delta merges additively, like a counter: the parent's
        # reading becomes its own value plus the worker's movement.
        self._value += state.get("value", 0.0)


class Histogram(_Instrument):
    """Observations bucketed by value, with sum and count.

    Buckets are upper bounds; an implicit ``+Inf`` bucket always exists.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, str] | None = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket")
        if any(b != b or b == math.inf for b in bounds):
            raise ValueError("explicit buckets must be finite")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # trailing slot is +Inf
        self._sum = 0.0
        self._count = 0

    def _make_child(self, labels: Mapping[str, str]) -> "Histogram":
        return Histogram(self.name, self.help, labels, buckets=self.buckets)

    def observe(self, value: float) -> None:
        if not _ENABLED:
            return
        value = float(value)
        index = bisect_left(self.buckets, value)
        self._counts[index] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the bucket counts.

        Prometheus ``histogram_quantile`` semantics: the target rank is
        located in the cumulative bucket counts and linearly interpolated
        within its bucket (from the previous bound, or 0 below the first
        bucket).  Ranks landing in the ``+Inf`` bucket clamp to the
        highest finite bound — the estimate is bucket-resolution, not
        exact.  Returns 0.0 when no observations have been recorded.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if self._count == 0:
            return 0.0
        rank = q * self._count
        cumulative = 0
        for index, bound in enumerate(self.buckets):
            in_bucket = self._counts[index]
            if in_bucket and cumulative + in_bucket >= rank:
                lower = self.buckets[index - 1] if index else 0.0
                fraction = max(0.0, rank - cumulative) / in_bucket
                return lower + (bound - lower) * fraction
            cumulative += in_bucket
        return self.buckets[-1]

    def bucket_counts(self) -> tuple[tuple[float, int], ...]:
        """Cumulative (upper_bound, count) pairs, ending at ``+Inf``."""
        cumulative = 0
        out: list[tuple[float, int]] = []
        for bound, n in zip((*self.buckets, math.inf), self._counts):
            cumulative += n
            out.append((bound, cumulative))
        return tuple(out)

    def _touched(self) -> bool:
        return self._count != 0

    def reset(self) -> None:
        self._counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._count = 0
        for child in self._children.values():
            child.reset()

    def _state(self) -> dict:
        return {
            "counts": list(self._counts),
            "sum": self._sum,
            "count": self._count,
            "buckets": list(self.buckets),
        }

    def _apply(self, state: Mapping) -> None:
        counts = state.get("counts")
        if counts is not None:
            if len(counts) != len(self._counts):
                raise ValueError(
                    f"histogram {self.name!r}: cannot merge {len(counts)} "
                    f"bucket counts into {len(self._counts)}"
                )
            for index, n in enumerate(counts):
                self._counts[index] += n
        self._sum += state.get("sum", 0.0)
        self._count += state.get("count", 0)


class Timer:
    """Times a block (context manager) or callable (decorator) into a
    histogram of seconds."""

    def __init__(self, histogram: Histogram) -> None:
        self.histogram = histogram
        self._start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        if self._start is not None:
            self.histogram.observe(time.perf_counter() - self._start)
            self._start = None

    def __call__(self, fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args: object, **kwargs: object) -> object:
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                self.histogram.observe(time.perf_counter() - start)

        return wrapper


class MetricsRegistry:
    """Named instruments, created idempotently.

    Asking twice for the same name returns the same instrument (so any
    module may declare its instruments at import time); asking with a
    conflicting kind raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Instrument] = {}

    def _get_or_create(self, cls: type, name: str, help: str, **kwargs: object) -> _Instrument:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)  # type: ignore[return-value]

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)  # type: ignore[return-value]

    def timed(self, name: str, help: str = "") -> Timer:
        """A :class:`Timer` over a histogram of seconds."""
        return Timer(self.histogram(name, help))

    def get(self, name: str) -> Optional[_Instrument]:
        return self._metrics.get(name)

    def collect(self) -> tuple[_Instrument, ...]:
        """Every registered instrument, in registration order."""
        return tuple(self._metrics.values())

    def reset(self) -> None:
        """Zero every instrument (instruments stay registered, so modules
        holding references at import time keep working)."""
        for metric in self._metrics.values():
            metric.reset()

    def snapshot(self) -> RegistrySnapshot:
        """Every instrument's state as picklable plain dicts.

        Pool workers snapshot before and after a chunk of work; the
        parent merges ``snapshot_delta(after, before)`` so that only the
        chunk's own movement lands in the parent registry."""
        return {name: inst.snapshot() for name, inst in self._metrics.items()}

    def apply_snapshot(self, snap: RegistrySnapshot) -> None:
        """Merge a snapshot (usually a delta) additively, creating any
        instruments and labelled children this registry has not seen."""
        for name, inst_snap in snap.items():
            kind = inst_snap.get("kind", "counter")
            inst = self._metrics.get(name)
            if inst is None:
                if kind == "histogram":
                    inst = self.histogram(
                        name, buckets=inst_snap.get("buckets") or DEFAULT_BUCKETS
                    )
                elif kind == "gauge":
                    inst = self.gauge(name)
                else:
                    inst = self.counter(name)
            inst.apply_snapshot(inst_snap)

    def __iter__(self) -> Iterator[_Instrument]:
        return iter(self.collect())


def _diff_instrument(
    after: Mapping, before: Optional[Mapping]
) -> InstrumentSnapshot:
    if before is None:
        return dict(after)
    out: InstrumentSnapshot = {"kind": after.get("kind", "counter")}
    if out["kind"] == "histogram":
        before_counts = before.get("counts", [])
        out["counts"] = [
            n - (before_counts[i] if i < len(before_counts) else 0)
            for i, n in enumerate(after.get("counts", []))
        ]
        out["sum"] = after.get("sum", 0.0) - before.get("sum", 0.0)
        out["count"] = after.get("count", 0) - before.get("count", 0)
        out["buckets"] = after.get("buckets")
    else:
        out["value"] = after.get("value", 0.0) - before.get("value", 0.0)
    after_children = after.get("children")
    if after_children:
        before_children = before.get("children", {})
        out["children"] = {
            key: _diff_instrument(child, before_children.get(key))
            for key, child in after_children.items()
        }
    return out


def snapshot_delta(
    after: RegistrySnapshot, before: RegistrySnapshot
) -> RegistrySnapshot:
    """Element-wise ``after - before`` of two registry snapshots.

    Instruments (or labelled children) absent from ``before`` contribute
    their full ``after`` state.  Counter and histogram deltas are exact:
    every recorded amount is integer-valued or summed identically on both
    sides, so merging deltas in any grouping reproduces the same totals.
    """
    return {
        name: _diff_instrument(snap, before.get(name))
        for name, snap in after.items()
    }


_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry every built-in instrument lives in."""
    return _DEFAULT_REGISTRY
