"""Distributed trace propagation: W3C ``traceparent``, request IDs, and
per-request span trees.

The campaign server speaks a W3C-trace-context-compatible dialect on
``POST /measure``: an incoming ``traceparent`` header
(``00-<32 hex trace-id>-<16 hex parent-span-id>-<2 hex flags>``) makes
the served request a continuation of the caller's trace; the response
always carries a ``traceparent`` naming the request's root span and an
``X-Request-Id`` that keys :class:`TraceStore` /
``GET /trace/<request_id>``.

Span IDs inside the process are integers (see
:mod:`repro.obs.tracing`); on the wire they are rendered as 16 lowercase
hex digits via :func:`span_id_hex`.
"""

from __future__ import annotations

import os
import re
from collections import OrderedDict
from dataclasses import dataclass
from threading import Lock
from typing import Mapping, Optional, Sequence

TRACEPARENT_HEADER = "traceparent"
REQUEST_ID_HEADER = "X-Request-Id"

_TRACEPARENT_RE = re.compile(
    r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)


@dataclass(frozen=True)
class TraceContext:
    """A parsed ``traceparent``: the caller's trace and parent span."""

    trace_id: str  # 32 lowercase hex digits
    span_id: str  # 16 lowercase hex digits
    sampled: bool = True

    def header(self) -> str:
        flags = "01" if self.sampled else "00"
        return f"00-{self.trace_id}-{self.span_id}-{flags}"


def new_trace_id() -> str:
    """A fresh random 128-bit trace ID (never all-zero)."""
    while True:
        trace_id = os.urandom(16).hex()
        if trace_id != "0" * 32:
            return trace_id


def new_request_id() -> str:
    """A fresh random 64-bit request ID, hex-rendered."""
    return os.urandom(8).hex()


def span_id_hex(span_id: int) -> str:
    """An integer span ID as the 16-hex-digit wire form."""
    return format(span_id & ((1 << 64) - 1), "016x")


def parse_traceparent(header: Optional[str]) -> Optional[TraceContext]:
    """Parse a ``traceparent`` header; ``None`` for anything malformed.

    Per the W3C spec an unparseable header is *ignored* (a fresh trace is
    started), never an error — telemetry must not fail a measurement."""
    if not header:
        return None
    match = _TRACEPARENT_RE.match(header.strip().lower())
    if match is None:
        return None
    version, trace_id, span_id, flags = match.groups()
    if version == "ff" or trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return TraceContext(
        trace_id=trace_id,
        span_id=span_id,
        sampled=bool(int(flags, 16) & 0x01),
    )


def format_traceparent(trace_id: str, span_id: int, sampled: bool = True) -> str:
    """The outgoing ``traceparent`` for a response or downstream call."""
    return TraceContext(trace_id, span_id_hex(span_id), sampled).header()


def orphan_parent_ids(spans: Sequence[Mapping[str, object]]) -> set[int]:
    """Parent IDs referenced by ``spans`` that name no span in the set.

    An end-to-end trace is well-formed exactly when this is empty: every
    span is either a root (``parent_id`` null) or hangs off another span
    in the same trace."""
    present = {s.get("span_id") for s in spans}
    return {
        s["parent_id"]  # type: ignore[misc]
        for s in spans
        if s.get("parent_id") is not None and s.get("parent_id") not in present
    }


def build_span_tree(
    spans: Sequence[Mapping[str, object]],
) -> Optional[dict[str, object]]:
    """Nest flat span dicts into a tree (``children`` lists, input order).

    Returns the unique root (a span whose parent is null or absent from
    the set) as a nested dict, or ``None`` when the set is empty or has
    more than one root — callers treat that as "not a single trace"."""
    if not spans:
        return None
    present = {s.get("span_id") for s in spans}
    nodes: dict[object, dict[str, object]] = {}
    roots: list[dict[str, object]] = []
    for span in spans:
        nodes[span.get("span_id")] = {**span, "children": []}
    for span in spans:
        node = nodes[span.get("span_id")]
        parent = span.get("parent_id")
        if parent is None or parent not in present:
            roots.append(node)
        else:
            nodes[parent]["children"].append(node)  # type: ignore[union-attr]
    if len(roots) != 1:
        return None
    return roots[0]


class TraceStore:
    """A bounded, most-recent-first archive of served request traces.

    The server moves each completed request's span subtree here (and
    prunes it from the live tracer), keyed by request ID; the oldest
    entry is evicted once ``capacity`` is reached, so a long-running
    service holds a sliding window of recent traces for ``/trace``.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = Lock()
        self._traces: "OrderedDict[str, dict[str, object]]" = OrderedDict()

    def put(self, request_id: str, payload: dict[str, object]) -> None:
        with self._lock:
            self._traces[request_id] = payload
            self._traces.move_to_end(request_id)
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)

    def get(self, request_id: str) -> Optional[dict[str, object]]:
        with self._lock:
            return self._traces.get(request_id)

    def request_ids(self) -> list[str]:
        """Stored request IDs, most recent last."""
        with self._lock:
            return list(self._traces)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)
