"""Observability for the reproduction campaign itself.

The paper's credibility rests on knowing exactly what was run and how
often; this package gives the *reproduction* the same property.  Four
stdlib-only components:

* :mod:`repro.obs.metrics` — counters/gauges/histograms in a process-wide
  registry, with a global enable switch for overhead baselines;
* :mod:`repro.obs.tracing` — hierarchical spans (contextvars-parented)
  with JSONL export, disabled by default;
* :mod:`repro.obs.export` — Prometheus text exposition and an ASCII
  summary table;
* :mod:`repro.obs.progress` — an opt-in rate/ETA line for long sweeps.

The hot path (engine, study, meter, experiment registry) is instrumented
out of the box; ``python -m repro --trace out.jsonl --metrics ...``
surfaces it, and ``repro stats`` prints the summary table after a small
demonstration sweep.
"""

from repro.obs.export import render_prometheus, render_summary
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    default_registry,
    set_enabled,
)
from repro.obs.progress import ProgressReporter
from repro.obs.tracing import Span, Tracer, default_tracer, read_jsonl, root_span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ProgressReporter",
    "Span",
    "Timer",
    "Tracer",
    "default_registry",
    "default_tracer",
    "read_jsonl",
    "render_prometheus",
    "render_summary",
    "root_span",
    "set_enabled",
]
