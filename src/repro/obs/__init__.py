"""Observability for the reproduction campaign itself.

The paper's credibility rests on knowing exactly what was run and how
often; this package gives the *reproduction* the same property.  Seven
stdlib-only components:

* :mod:`repro.obs.metrics` — counters/gauges/histograms in a process-wide
  registry, with a global enable switch for overhead baselines;
* :mod:`repro.obs.tracing` — hierarchical spans (contextvars-parented)
  with globally unique IDs, cross-process adoption, JSONL and
  Chrome-trace export, disabled by default;
* :mod:`repro.obs.distributed` — W3C ``traceparent`` propagation, span
  tree assembly, and the bounded per-request trace archive the campaign
  server serves from ``GET /trace/<id>``;
* :mod:`repro.obs.slo` — latency/availability SLO targets, quantile
  summaries, and error-budget burn reporting;
* :mod:`repro.obs.export` — Prometheus text exposition (and parsing) and
  an ASCII summary table with p50/p95/p99 columns;
* :mod:`repro.obs.top` — the live ``repro top`` ops dashboard polling a
  running server's ``/healthz`` + ``/slo`` + ``/metrics``;
* :mod:`repro.obs.progress` — an opt-in rate/ETA line for long sweeps.

The hot path (engine, study, meter, experiment registry) is instrumented
out of the box; ``python -m repro --trace out.jsonl --metrics ...``
surfaces it, and ``repro stats`` prints the summary table after a small
demonstration sweep.
"""

from repro.obs.distributed import (
    TraceContext,
    TraceStore,
    build_span_tree,
    format_traceparent,
    orphan_parent_ids,
    parse_traceparent,
)
from repro.obs.export import (
    parse_prometheus,
    render_prometheus,
    render_summary,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    default_registry,
    set_enabled,
)
from repro.obs.progress import ProgressReporter
from repro.obs.slo import SloConfig, parse_slo, slo_report
from repro.obs.tracing import (
    Span,
    Tracer,
    chrome_trace_events,
    default_tracer,
    read_jsonl,
    root_span,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ProgressReporter",
    "SloConfig",
    "Span",
    "Timer",
    "TraceContext",
    "TraceStore",
    "Tracer",
    "build_span_tree",
    "chrome_trace_events",
    "default_registry",
    "default_tracer",
    "format_traceparent",
    "orphan_parent_ids",
    "parse_prometheus",
    "parse_slo",
    "parse_traceparent",
    "read_jsonl",
    "render_prometheus",
    "render_summary",
    "root_span",
    "set_enabled",
    "slo_report",
    "write_chrome_trace",
]
