"""Progress reporting for long sweeps (rate + ETA).

Off by default — the CLI constructs one only under ``--progress`` — and
written to stderr so it never pollutes piped table/CSV output.  The unit
of progress is one *invocation* (a single engine execution + metering),
so ``--quick``'s scaled repetition counts are reflected exactly: the
study registers the scaled number of planned invocations before a sweep
and advances the reporter once per invocation performed.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Optional, TextIO


def _format_eta(seconds: float) -> str:
    seconds = max(0, int(round(seconds)))
    hours, rest = divmod(seconds, 3600)
    minutes, secs = divmod(rest, 60)
    if hours:
        return f"{hours}:{minutes:02d}:{secs:02d}"
    return f"{minutes}:{secs:02d}"


class ProgressReporter:
    """A single carriage-return progress line: count, rate, ETA.

    ``total`` may be unknown up front; sweeps register work with
    :meth:`extend_total` as they plan it, and the line shows an ETA only
    once a total exists.  ``min_interval_s`` throttles terminal writes;
    the injectable ``clock`` keeps the arithmetic testable.
    """

    def __init__(
        self,
        total: Optional[int] = None,
        stream: Optional[TextIO] = None,
        label: str = "invocations",
        min_interval_s: float = 0.1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.total = total
        self.done = 0
        self._stream = stream if stream is not None else sys.stderr
        self._label = label
        self._min_interval = min_interval_s
        self._clock = clock
        self._start: Optional[float] = None
        self._last_write = -float("inf")
        self._dirty = False

    # -- accounting ----------------------------------------------------------

    def extend_total(self, n: int) -> None:
        """Register ``n`` more planned units of work."""
        if n < 0:
            raise ValueError("cannot plan negative work")
        self.total = (self.total or 0) + n
        self._dirty = True

    def advance(self, n: int = 1) -> None:
        """Record ``n`` completed units and maybe redraw the line."""
        if self._start is None:
            self._start = self._clock()
        self.done += n
        self._dirty = True
        now = self._clock()
        if now - self._last_write >= self._min_interval:
            self._write(now)

    # -- rendering -----------------------------------------------------------

    @property
    def elapsed_s(self) -> float:
        if self._start is None:
            return 0.0
        return self._clock() - self._start

    @property
    def rate(self) -> float:
        # The first tick lands microseconds after start; a rate from that
        # interval is noise, so wait for a second completed unit.
        elapsed = self.elapsed_s
        if self.done < 2 or elapsed <= 0:
            return 0.0
        return self.done / elapsed

    def render(self) -> str:
        rate = self.rate
        if self.total:
            line = f"[{self.done}/{self.total} {self._label}]"
        else:
            line = f"[{self.done} {self._label}]"
        line += f" {rate:.1f}/s" if rate else ""
        if self.total and rate > 0 and self.done < self.total:
            line += f" eta {_format_eta((self.total - self.done) / rate)}"
        return line

    def _write(self, now: float) -> None:
        self._stream.write("\r" + self.render().ljust(48))
        self._stream.flush()
        self._last_write = now
        self._dirty = False

    def finish(self) -> None:
        """Draw the final state and terminate the line."""
        if self.done == 0 and not self._dirty:
            return
        self._write(self._clock())
        self._stream.write("\n")
        self._stream.flush()
