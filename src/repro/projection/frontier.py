"""Pareto frontier search over the synthesized candidate space.

The driver decomposes every candidate into its homogeneous clusters, runs
the distinct cluster configurations through the *unmodified* Study
pipeline as one ``run_pairs`` sweep — so the parallel executor, supervised
fleet, result cache, and vectorized kernels all apply — and recombines
cluster measurements into candidate-level (performance, energy) points.

Heterogeneous combination model (docs/projection.md):

* **Scalable** groups saturate every core, so a big+little machine's
  throughput is the sum of the clusters' and its energy-per-work is the
  throughput-weighted mean:
  ``s = s_b + s_l``, ``e = (e_b*s_b + e_l*s_l) / (s_b + s_l)``.
* **Non-scalable** groups cannot use the second cluster: work runs on the
  faster cluster alone while the other is power-gated (dark), so the
  candidate inherits that cluster's speedup and normalized energy.

Measurement happens once per distinct cluster configuration regardless of
how many candidates share it, which is what makes a multi-thousand
candidate search cost only a few hundred engine sweeps.

The dataset serializes to canonical JSON (sorted keys, no whitespace, no
timestamps), so equal searches produce byte-identical files — the property
CI asserts across worker counts, kernel modes, and fault plans.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.core.aggregation import group_means, weighted_average
from repro.core.pareto import TradeoffPoint, fit_frontier, pareto_efficient
from repro.core.study import Study, shared_study
from repro.hardware.config import Configuration
from repro.hardware.configurations import stock_configurations
from repro.projection.synthesize import Budget, Candidate, synthesize_candidates
from repro.workloads.benchmark import Benchmark, Group
from repro.workloads.catalog import BENCHMARKS_BY_NAME, groups

#: Two benchmarks per workload group — the projection scoring set.  Small
#: enough that a 2000+-candidate search stays interactive, balanced enough
#: that the paper's equal-weight Avg_w is still over all four groups.
PROJECTION_BENCHMARK_NAMES = (
    "mcf",
    "hmmer",
    "blackscholes",
    "fluidanimate",
    "db",
    "javac",
    "lusearch",
    "xalan",
)

#: Groups whose software scales across every core it is given (§2.1).
SCALABLE_GROUPS = frozenset({Group.NATIVE_SCALABLE, Group.JAVA_SCALABLE})

#: Default projected node list, largest feature size first.
DEFAULT_NODES = (22, 14, 10, 7)


def projection_benchmarks() -> tuple[Benchmark, ...]:
    """The scoring benchmarks, in their canonical order."""
    return tuple(BENCHMARKS_BY_NAME[name] for name in PROJECTION_BENCHMARK_NAMES)


@dataclass(frozen=True, slots=True)
class CandidateOutcome:
    """A candidate with its aggregate score over the projection set."""

    candidate: Candidate
    performance: float
    energy: float

    @property
    def point(self) -> TradeoffPoint:
        return TradeoffPoint(
            key=self.candidate.key,
            performance=self.performance,
            energy=self.energy,
        )


@dataclass(frozen=True, slots=True)
class MeasuredPoint:
    """A measured-era stock processor scored over the same benchmark set."""

    key: str
    node_nm: int
    performance: float
    energy: float


@dataclass(frozen=True, slots=True)
class NodeFrontier:
    """All scored candidates at one node plus its Pareto-efficient subset."""

    node_nm: int
    outcomes: tuple[CandidateOutcome, ...]
    efficient_keys: tuple[str, ...]

    @property
    def efficient_outcomes(self) -> tuple[CandidateOutcome, ...]:
        wanted = set(self.efficient_keys)
        return tuple(o for o in self.outcomes if o.candidate.key in wanted)

    def best_performance(self) -> float:
        return max(o.performance for o in self.outcomes)

    def best_efficiency(self) -> float:
        """Best performance-per-energy on the frontier (perf/W trend proxy)."""
        return max(o.performance / o.energy for o in self.efficient_outcomes)

    def frontier_series(self, samples: int = 40) -> tuple[tuple[float, float], ...]:
        """The fitted fig12-style curve through the efficient points."""
        points = [o.point for o in self.efficient_outcomes]
        if len(points) < 2:
            return tuple((p.performance, p.energy) for p in points)
        return tuple(fit_frontier(points).series(samples))


@dataclass(frozen=True, slots=True)
class ProjectionDataset:
    """The full deterministic product of one frontier search."""

    seed: int
    samples: int
    budget: Budget
    benchmark_names: tuple[str, ...]
    measured: tuple[MeasuredPoint, ...]
    frontiers: tuple[NodeFrontier, ...]

    def frontier_for(self, node_nm: int) -> NodeFrontier:
        for frontier in self.frontiers:
            if frontier.node_nm == node_nm:
                return frontier
        raise KeyError(f"no frontier for {node_nm} nm in this dataset")

    def candidate_count(self) -> int:
        return sum(len(f.outcomes) for f in self.frontiers)

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "seed": self.seed,
            "samples": self.samples,
            "budget": {"area_mm2": self.budget.area_mm2, "tdp_w": self.budget.tdp_w},
            "benchmarks": list(self.benchmark_names),
            "measured": [
                {
                    "key": p.key,
                    "node_nm": p.node_nm,
                    "performance": p.performance,
                    "energy": p.energy,
                }
                for p in self.measured
            ],
            "nodes": [
                {
                    "nm": f.node_nm,
                    "candidates": [
                        {
                            "key": o.candidate.key,
                            "big_cores": o.candidate.big.cores if o.candidate.big else 0,
                            "big_clock_ghz": (
                                o.candidate.big.clock_ghz if o.candidate.big else 0.0
                            ),
                            "little_cores": (
                                o.candidate.little.cores if o.candidate.little else 0
                            ),
                            "little_clock_ghz": (
                                o.candidate.little.clock_ghz
                                if o.candidate.little
                                else 0.0
                            ),
                            "area_mm2": o.candidate.area_mm2,
                            "peak_watts": o.candidate.peak_watts,
                            "dark_fraction": o.candidate.dark_fraction,
                            "performance": o.performance,
                            "energy": o.energy,
                            "efficient": o.candidate.key in set(f.efficient_keys),
                        }
                        for o in f.outcomes
                    ],
                    "efficient": list(f.efficient_keys),
                    "frontier_series": [list(xy) for xy in f.frontier_series()],
                }
                for f in self.frontiers
            ],
        }

    def to_json_bytes(self) -> bytes:
        """Canonical bytes: sorted keys, no whitespace, trailing newline."""
        return (
            json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":")) + "\n"
        ).encode("ascii")


def _aggregate(
    per_benchmark: dict[str, tuple[float, float]],
    scoring: Sequence[Benchmark],
) -> dict[Group, tuple[float, float]]:
    """Per-group (speedup, normalized energy) means for one configuration."""
    speedups = group_means({n: v[0] for n, v in per_benchmark.items()}, scoring)
    energies = group_means({n: v[1] for n, v in per_benchmark.items()}, scoring)
    return {g: (speedups[g], energies[g]) for g in speedups}


def _combine(
    candidate: Candidate,
    by_config: dict[str, dict[Group, tuple[float, float]]],
    group_order: Sequence[Group],
) -> CandidateOutcome:
    """Candidate-level score from its clusters' per-group aggregates."""
    cluster_groups = [by_config[c.config.key] for c in candidate.clusters]
    perf: dict[Group, float] = {}
    energy: dict[Group, float] = {}
    for group in group_order:
        values = [cg[group] for cg in cluster_groups if group in cg]
        if not values:
            continue
        if len(values) == 1:
            perf[group], energy[group] = values[0]
        elif group in SCALABLE_GROUPS:
            total = sum(s for s, _ in values)
            perf[group] = total
            energy[group] = sum(e * s for s, e in values) / total
        else:
            # Serial work runs on the faster cluster; the other sleeps.
            perf[group], energy[group] = max(values, key=lambda v: v[0])
    return CandidateOutcome(
        candidate=candidate,
        performance=weighted_average(perf),
        energy=weighted_average(energy),
    )


def search(
    study: Optional[Study] = None,
    nodes: Sequence[int] = DEFAULT_NODES,
    samples: int = 512,
    budget: Budget = Budget(),
    seed: int = 0,
    jobs: Optional[Union[int, str]] = None,
) -> ProjectionDataset:
    """Run the full frontier search and return its deterministic dataset.

    ``samples`` is per node, so the default four-node list searches 2048
    candidates.  ``jobs`` passes straight to ``Study.run_pairs``; any
    worker count (and either kernel mode) produces identical bytes.
    """
    study = study if study is not None else shared_study()
    nodes = tuple(nodes)
    if not nodes:
        raise ValueError("need at least one node to project")
    scoring = projection_benchmarks()
    candidates = {nm: synthesize_candidates(nm, samples, budget, seed) for nm in nodes}

    configs: dict[str, Configuration] = {}
    for nm in nodes:
        for candidate in candidates[nm]:
            for cluster in candidate.clusters:
                configs.setdefault(cluster.config.key, cluster.config)
    measured_configs = stock_configurations()

    pairs = [
        (benchmark, config)
        for config in list(configs.values()) + list(measured_configs)
        for benchmark in scoring
    ]
    results = study.run_pairs(pairs, jobs=jobs)

    per_config: dict[str, dict[str, tuple[float, float]]] = {}
    for result in results:
        per_config.setdefault(result.config_key, {})[result.benchmark_name] = (
            result.speedup,
            result.normalized_energy,
        )
    missing = [
        key
        for key in configs
        if len(per_config.get(key, {})) != len(scoring)
    ]
    if missing:
        raise ValueError(
            f"frontier search is incomplete: {len(missing)} cluster "
            f"configuration(s) lost benchmarks to quarantine, e.g. {missing[:3]}"
        )

    group_order = groups()
    by_config = {
        key: _aggregate(per_benchmark, scoring)
        for key, per_benchmark in per_config.items()
    }

    frontiers = []
    for nm in nodes:
        outcomes = tuple(
            _combine(candidate, by_config, group_order)
            for candidate in candidates[nm]
        )
        efficient = pareto_efficient([o.point for o in outcomes])
        frontiers.append(
            NodeFrontier(
                node_nm=nm,
                outcomes=outcomes,
                efficient_keys=tuple(p.key for p in efficient),
            )
        )

    measured = []
    for config in measured_configs:
        per_benchmark = per_config.get(config.key, {})
        if len(per_benchmark) != len(scoring):
            continue
        per_group = _aggregate(per_benchmark, scoring)
        measured.append(
            MeasuredPoint(
                key=config.key,
                node_nm=config.spec.node.nanometers,
                performance=weighted_average({g: v[0] for g, v in per_group.items()}),
                energy=weighted_average({g: v[1] for g, v in per_group.items()}),
            )
        )

    return ProjectionDataset(
        seed=seed,
        samples=samples,
        budget=budget,
        benchmark_names=PROJECTION_BENCHMARK_NAMES,
        measured=tuple(measured),
        frontiers=tuple(frontiers),
    )
