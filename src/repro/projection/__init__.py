"""Forward projection past the measured era (ROADMAP item 2).

The paper's measurements stop at 32 nm / 2010.  This subsystem synthesizes
post-2011 processors at the projected 22/14/10/7 nm operating points
(:mod:`repro.hardware.technology`), generates candidate machines —
homogeneous and heterogeneous big/little mixes under a fixed area and TDP
budget — from a seeded generator (:mod:`repro.projection.synthesize`),
runs the candidate space through the unmodified engine/Study pipeline, and
computes per-node Pareto frontiers overlaid on the measured generations
(:mod:`repro.projection.frontier`).  :mod:`repro.projection.validation`
checks the synthesized trajectory against the measured perf/energy trend.

Everything here is deterministic: same seed, node list, budget, and sample
count produce byte-identical frontier datasets at any worker count, with
vectorized kernels on or off, and under retried fail-stop fault plans —
the guarantees the Study pipeline already provides, which the projection
layer is careful not to launder away (docs/projection.md).
"""

from repro.projection.synthesize import (
    Budget,
    Candidate,
    Cluster,
    ProjectedProcessor,
    node_capacity,
    synthesize_candidates,
    synthesize_spec,
)
from repro.projection.frontier import (
    PROJECTION_BENCHMARK_NAMES,
    CandidateOutcome,
    MeasuredPoint,
    NodeFrontier,
    ProjectionDataset,
    projection_benchmarks,
    search,
)
from repro.projection.validation import (
    PROJECTION_FINDING_ID,
    evaluate_projection_finding,
)

__all__ = [
    "Budget",
    "Candidate",
    "CandidateOutcome",
    "Cluster",
    "MeasuredPoint",
    "NodeFrontier",
    "PROJECTION_BENCHMARK_NAMES",
    "PROJECTION_FINDING_ID",
    "ProjectedProcessor",
    "ProjectionDataset",
    "evaluate_projection_finding",
    "node_capacity",
    "projection_benchmarks",
    "search",
    "synthesize_candidates",
    "synthesize_spec",
]
