"""Validate the projected trajectory against the measured trend.

A finding-check in the :mod:`repro.experiments.findings` style (it reuses
:class:`FindingReport`) but deliberately *not* registered in
``ALL_FINDINGS`` — the paper's thirteen findings are measured claims, and
this one scores a synthesized extrapolation.

The check encodes what "16 Years of SPEC Power" and "Trends in Processor
Architecture" (PAPERS.md) say the post-2011 record looks like:

* energy efficiency (performance per unit energy) keeps improving every
  node, so the projected frontier's best perf/energy must continue the
  measured 130 -> 32 nm ascent monotonically through 22 -> 7 nm;
* but the *rate* slows after Dennard scaling ends — SPEC-Power efficiency
  doubling stretched from ~1.5 to ~2.4 years — so each projected step's
  gain must stay positive yet below the measured era's best step;
* and the dark-silicon share of a fixed budget grows every shrink, within
  tolerance of the node model's declared fractions.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.findings import FindingReport
from repro.hardware.technology import PROJECTED_NODES
from repro.projection.frontier import ProjectionDataset
from repro.projection.synthesize import Budget, node_capacity

PROJECTION_FINDING_ID = "P1"

#: |declared - achieved| tolerance on the per-node dark-silicon fraction.
DARK_TOLERANCE = 0.12

#: Allowed per-step efficiency gain for a projected shrink, as a multiple
#: of the previous node's best perf/energy: positive but sub-Dennard.
MIN_STEP_GAIN = 1.02
MAX_STEP_GAIN = 2.60


def _measured_best(dataset: ProjectionDataset) -> list[tuple[int, float]]:
    """Best measured perf/energy per node, largest feature size first."""
    best: dict[int, float] = {}
    for point in dataset.measured:
        ratio = point.performance / point.energy
        best[point.node_nm] = max(best.get(point.node_nm, 0.0), ratio)
    return sorted(best.items(), key=lambda item: -item[0])


def _projected_best(dataset: ProjectionDataset) -> list[tuple[int, float]]:
    return sorted(
        ((f.node_nm, f.best_efficiency()) for f in dataset.frontiers),
        key=lambda item: -item[0],
    )


def evaluate_projection_finding(
    dataset: ProjectionDataset, budget: Optional[Budget] = None
) -> FindingReport:
    """P1: the synthesized generations continue the measured perf/W trend."""
    budget = budget if budget is not None else dataset.budget
    measured = _measured_best(dataset)
    projected = _projected_best(dataset)
    trajectory = measured + projected

    monotone = all(
        earlier < later
        for (_, earlier), (_, later) in zip(trajectory, trajectory[1:])
    )

    # Step gains are compared within each era: the measured points are
    # four-core products of their time, the projected points are
    # budget-limited frontier bests, so the bridge step between eras mixes
    # a product constraint with a search result and is only required to be
    # an improvement (covered by the monotone check above).
    measured_steps = [
        later / earlier
        for (_, earlier), (_, later) in zip(measured, measured[1:])
    ]
    projected_steps = [
        later / earlier
        for (_, earlier), (_, later) in zip(projected, projected[1:])
    ]
    steps_bounded = all(
        MIN_STEP_GAIN <= step <= MAX_STEP_GAIN for step in projected_steps
    )
    slower_than_dennard = (
        not measured_steps
        or not projected_steps
        or max(projected_steps) <= max(measured_steps)
    )

    dark = {
        nm: node_capacity(nm, budget)["dark_fraction"]
        for nm in sorted(PROJECTED_NODES, reverse=True)
    }
    dark_values = [dark[nm] for nm in sorted(dark, reverse=True)]
    dark_monotone = all(a < b for a, b in zip(dark_values, dark_values[1:]))
    dark_in_tolerance = all(
        abs(dark[nm] - PROJECTED_NODES[nm].dark_silicon_fraction) <= DARK_TOLERANCE
        for nm in dark
    )

    evidence: dict[str, float | str | bool] = {
        "trajectory_monotone": monotone,
        "steps_bounded": steps_bounded,
        "slower_than_dennard": slower_than_dennard,
        "dark_monotone": dark_monotone,
        "dark_in_tolerance": dark_in_tolerance,
    }
    for nm, ratio in trajectory:
        evidence[f"best_perf_per_energy_{nm}nm"] = round(ratio, 3)
    for index, step in enumerate(projected_steps):
        evidence[f"projected_step_gain_{index}"] = round(step, 3)
    for nm, fraction in dark.items():
        evidence[f"dark_fraction_{nm}nm"] = round(fraction, 3)

    return FindingReport(
        finding_id=PROJECTION_FINDING_ID,
        statement=(
            "Synthesized 22-7 nm generations continue the measured "
            "perf/energy ascent at a post-Dennard (slower) rate, with a "
            "dark-silicon share that grows every shrink"
        ),
        holds=(
            monotone
            and steps_bounded
            and slower_than_dennard
            and dark_monotone
            and dark_in_tolerance
        ),
        evidence=evidence,
    )


def capacity_table(budget: Optional[Budget] = None) -> list[dict[str, float]]:
    """Per-node capacity/dark-silicon rows for reports and the CLI."""
    budget = budget if budget is not None else Budget()
    return [
        node_capacity(nm, budget) for nm in sorted(PROJECTED_NODES, reverse=True)
    ]
