"""Synthesize post-2011 processors: the ``ProjectedProcessor`` generator.

Two core templates anchor the projection to the measured era:

* the **big** core descends from the calibrated Nehalem/i7 power character
  (wider issue, better overlap — the incremental core gains "Trends in
  Processor Architecture" describes for the 2012-2018 generations);
* the **little** core descends from the calibrated Bonnell/Atom character,
  upgraded to a modest out-of-order design (the Silvermont turn).

A template's per-core area and power coefficients are expressed at the
45 nm reference node and scaled to a projected node by the node physics in
:mod:`repro.hardware.technology`:

* dynamic power scales with ``capacitance_scale`` x ``(V/V_45)^2`` x
  ``(f/f_45)`` (the classic CV^2 f term);
* idle/leakage power scales with ``capacitance_scale`` x
  ``leakage_scale`` x ``(V/V_45)^2`` (transistors shrink, but each leaks
  relatively more);
* per-core die area shrinks with the *density* trend (``AREA_SCALE_45``),
  which outruns the capacitance/power shrink once voltage stops falling —
  the divergence that creates dark silicon: transistors keep getting
  cheaper to place but not proportionally cheaper to power;
* the uncore floor shrinks far more slowly — I/O, PHYs, and fabric do not
  scale with logic — so only 60 % of it rides the dynamic scale.

Candidates are (big count, big clock, little count, little clock) tuples
drawn by a seeded :class:`random.Random` and kept when they fit the fixed
area and TDP budget; peak power is validated with the study's own
:func:`repro.hardware.power.package_power` at full utilisation.  Dark
silicon is *measured*, not assumed: a candidate's dark fraction is the
share of the area budget that cannot be populated with even the smallest,
slowest core without busting the power budget.

Determinism: the generator never consults wall clock, PID, or builtin
``hash``; draws come from :func:`repro.core.seeding.seed_from_key` and the
candidate list is returned sorted by key, so the same (node, samples,
budget, seed) produce the identical tuple in any process.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from random import Random
from typing import Optional

from repro.core.quantities import Hertz, Volts
from repro.core.seeding import seed_from_key
from repro.hardware.config import Configuration
from repro.hardware.microarch import Microarchitecture
from repro.hardware.power import package_power
from repro.hardware.processor import MemorySystem, PowerCharacter, ProcessorSpec
from repro.hardware.technology import NODE_45NM, PROJECTED_NODES, ProcessNode
from repro.hardware.turbo import TurboState

#: Projected big core: Nehalem's successor line — wider issue, better
#: memory-level parallelism, mature SMT; per-core energy about Nehalem's.
PROJECTED_BIG = Microarchitecture(
    name="ProjectedBig",
    issue_width=6,
    out_of_order=True,
    pipeline_depth=16,
    issue_efficiency=0.82,
    miss_overlap=0.75,
    smt_overlap=0.55,
    smt_contention=0.03,
    epi_factor=1.00,
    smt_power_overhead=0.20,
)

#: Projected little core: Bonnell's successor — narrow out-of-order,
#: single-threaded, austere energy per instruction.
PROJECTED_LITTLE = Microarchitecture(
    name="ProjectedLittle",
    issue_width=3,
    out_of_order=True,
    pipeline_depth=14,
    issue_efficiency=0.58,
    miss_overlap=0.30,
    smt_overlap=0.0,
    smt_contention=0.0,
    epi_factor=0.58,
)


@dataclass(frozen=True, slots=True)
class CoreTemplate:
    """One core design expressed at the 45 nm reference node."""

    kind: str
    family: Microarchitecture
    #: Per-core die area at 45 nm, mm^2.
    area_mm2_45: float
    #: Per-core active switching power at the reference clock, W.
    active_watts_45: float
    #: Per-core idle (leakage + clock-tree) power, W.
    idle_watts_45: float
    #: Package uncore floor this core class drags in, W.
    uncore_watts_45: float
    #: Clock the 45 nm power coefficients are calibrated at, GHz.
    base_clock_ghz_45: float
    threads_per_core: int
    llc_mb_per_core: float
    #: Core logic transistors, millions (metadata only).
    transistors_m_per_core: float


#: Anchored to the calibrated i7/Nehalem PowerCharacter (catalog.py):
#: 13.5 W active / 2.6 W idle per core, 4.0 W uncore, 2.66 GHz, ~263 mm^2
#: die over four cores and a large uncore.
BIG_TEMPLATE = CoreTemplate(
    kind="big",
    family=PROJECTED_BIG,
    area_mm2_45=22.0,
    active_watts_45=13.5,
    idle_watts_45=2.6,
    uncore_watts_45=4.0,
    base_clock_ghz_45=2.66,
    threads_per_core=2,
    llc_mb_per_core=2.0,
    transistors_m_per_core=150.0,
)

#: Anchored to the calibrated Atom PowerCharacter: ~1.2 W active / 0.22 W
#: idle per core at 1.66 GHz, with a small-package uncore floor.
LITTLE_TEMPLATE = CoreTemplate(
    kind="little",
    family=PROJECTED_LITTLE,
    area_mm2_45=6.0,
    active_watts_45=1.35,
    idle_watts_45=0.25,
    uncore_watts_45=1.2,
    base_clock_ghz_45=1.66,
    threads_per_core=1,
    llc_mb_per_core=0.5,
    transistors_m_per_core=35.0,
)

TEMPLATES = {"big": BIG_TEMPLATE, "little": LITTLE_TEMPLATE}

#: Stock-clock grids per node, GHz.  Frequency plateaus after 2011 — the
#: SPEC-Power record shows clocks crawling from ~3.2 to ~3.7 GHz over four
#: shrinks while core counts explode — so the grid tops out slowly.
BIG_CLOCKS = {
    22: (2.4, 2.8, 3.2),
    14: (2.6, 3.0, 3.4),
    10: (2.8, 3.2, 3.6),
    7: (2.9, 3.3, 3.7),
}
LITTLE_CLOCKS = {
    22: (1.2, 1.6, 2.0),
    14: (1.4, 1.8, 2.2),
    10: (1.5, 1.9, 2.3),
    7: (1.6, 2.0, 2.4),
}

#: Logic-density scale per node relative to 45 nm: per-core area shrinks
#: roughly 0.57-0.65x per step (density gains themselves slow down), while
#: dynamic power per core shrinks only ~0.62-0.65x (capacitance x V^2 with
#: voltage nearly stuck).  Power density therefore *rises* every shrink —
#: the dark-silicon driver.
AREA_SCALE_45 = {22: 0.30, 14: 0.17, 10: 0.105, 7: 0.068}

#: Memory system per node: each DRAM generation buys bandwidth quickly and
#: latency slowly, continuing the catalog's DDR2 -> DDR3 trajectory.
NODE_MEMORY = {
    22: MemorySystem(latency_ns=50.0, bandwidth_gbs=25.6, dram="DDR3-1600"),
    14: MemorySystem(latency_ns=47.0, bandwidth_gbs=38.4, dram="DDR4-2400"),
    10: MemorySystem(latency_ns=44.0, bandwidth_gbs=51.2, dram="DDR4-3200"),
    7: MemorySystem(latency_ns=41.0, bandwidth_gbs=76.8, dram="DDR5-4800"),
}

#: Nominal launch year per projected node (spec metadata).
NODE_RELEASE = {22: "'12", 14: "'14", 10: "'17", 7: "'19"}


@dataclass(frozen=True, slots=True)
class Budget:
    """The fixed die-area and package-power envelope candidates must fit.

    Defaults match the measured desktop class: the i7's ~263 mm^2 die and
    130 W TDP.  Holding the envelope constant across shrinks is what makes
    dark silicon visible: transistors keep getting cheaper to *place* but
    not to *power*.
    """

    area_mm2: float = 260.0
    tdp_w: float = 130.0

    def __post_init__(self) -> None:
        if self.area_mm2 <= 0 or self.tdp_w <= 0:
            raise ValueError("budget axes must be positive")


def _projected_node(nanometers: int) -> ProcessNode:
    try:
        return PROJECTED_NODES[nanometers]
    except KeyError:
        raise KeyError(
            f"no projected operating point at {nanometers} nm; "
            f"projected nodes are {sorted(PROJECTED_NODES, reverse=True)}"
        ) from None


@lru_cache(maxsize=None)
def synthesize_spec(
    kind: str, nanometers: int, cores: int, clock_ghz: float
) -> ProcessorSpec:
    """Materialise one homogeneous projected cluster as a ProcessorSpec.

    The key embeds every degree of freedom (``proj22_big8c3.2g``) so study
    and meter caches, which key by ``spec.key``, can never collide across
    distinct synthesized designs.
    """
    if kind not in TEMPLATES:
        raise KeyError(f"unknown core kind {kind!r}; choose from {sorted(TEMPLATES)}")
    if cores < 1:
        raise ValueError("a cluster needs at least one core")
    template = TEMPLATES[kind]
    node = _projected_node(nanometers)
    clocks = (BIG_CLOCKS if kind == "big" else LITTLE_CLOCKS)[nanometers]
    if clock_ghz not in clocks:
        raise ValueError(
            f"{clock_ghz} GHz is not an operating point at {nanometers} nm "
            f"for {kind} cores; the grid is {clocks}"
        )
    cap = node.capacitance_scale / NODE_45NM.capacitance_scale
    leak = node.leakage_scale / NODE_45NM.leakage_scale
    volts = node.nominal_voltage.value / NODE_45NM.nominal_voltage.value
    freq = clock_ghz / template.base_clock_ghz_45
    dynamic = cap * volts * volts
    power = PowerCharacter(
        uncore_watts=round(template.uncore_watts_45 * (0.4 + 0.6 * dynamic), 4),
        core_idle_watts=round(template.idle_watts_45 * dynamic * leak, 4),
        core_active_watts=round(template.active_watts_45 * dynamic * freq, 4),
    )
    area = cores * template.area_mm2_45 * AREA_SCALE_45[nanometers]
    key = f"proj{nanometers}_{kind}{cores}c{clock_ghz:g}g"
    floor, nominal = node.vid_span
    return ProcessorSpec(
        key=key,
        label=f"P{nanometers} {kind} {cores}C@{clock_ghz:g}",
        model=f"Projected {kind.capitalize()}",
        family=template.family,
        codename=f"P{nanometers}{kind[0].upper()}",
        sspec="synthetic",
        release=NODE_RELEASE[nanometers],
        price_usd=None,
        cores=cores,
        threads_per_core=template.threads_per_core,
        llc_mb=round(cores * template.llc_mb_per_core, 3),
        stock_clock=Hertz.from_ghz(clock_ghz),
        node=node,
        transistors_m=int(
            cores * template.transistors_m_per_core / AREA_SCALE_45[nanometers]
        )
        + 100,
        die_mm2=int(math.ceil(area)) + 20,
        vid_range=(floor.value, nominal.value),
        tdp_w=int(math.ceil(_peak_watts_for(power, cores))),
        memory=NODE_MEMORY[nanometers],
        power=power,
        clock_points_ghz=(round(clock_ghz / 2, 2), clock_ghz),
    )


def _peak_watts_for(power: PowerCharacter, cores: int) -> float:
    """Closed-form worst case, used only to size the spec's own TDP field
    (and hence the meter's sensor range) before the spec exists."""
    return (
        power.uncore_watts
        + cores * (power.core_idle_watts + power.core_active_watts)
    )


@dataclass(frozen=True, slots=True)
class Cluster:
    """One homogeneous slice of a candidate: a spec at its stock config."""

    kind: str
    cores: int
    clock_ghz: float
    config: Configuration
    area_mm2: float
    peak_watts: float


@dataclass(frozen=True, slots=True)
class Candidate:
    """One projected machine: a big cluster, a little cluster, or both."""

    key: str
    node_nm: int
    big: Optional[Cluster]
    little: Optional[Cluster]
    area_mm2: float
    peak_watts: float
    #: Share of the area budget that cannot be powered (see module doc).
    dark_fraction: float

    @property
    def clusters(self) -> tuple[Cluster, ...]:
        return tuple(c for c in (self.big, self.little) if c is not None)

    @property
    def heterogeneous(self) -> bool:
        return self.big is not None and self.little is not None


#: Back-compat-friendly alias: the issue calls the synthesizer's product a
#: ProjectedProcessor; a candidate IS the projected processor.
ProjectedProcessor = Candidate


def _cluster(kind: str, nanometers: int, cores: int, clock_ghz: float) -> Cluster:
    spec = synthesize_spec(kind, nanometers, cores, clock_ghz)
    config = Configuration(
        spec=spec,
        active_cores=cores,
        threads_per_core=spec.threads_per_core,
        clock_ghz=clock_ghz,
    )
    template = TEMPLATES[kind]
    peak = package_power(
        config,
        busy_cores=float(cores),
        core_utilisation=1.0,
        activity=1.0,
        turbo=TurboState(steps=0, frequency=spec.stock_clock),
    ).total.value
    return Cluster(
        kind=kind,
        cores=cores,
        clock_ghz=clock_ghz,
        config=config,
        area_mm2=cores * template.area_mm2_45 * AREA_SCALE_45[nanometers],
        peak_watts=peak,
    )


def _min_little(nanometers: int) -> Cluster:
    """The smallest, slowest core the node offers — the dark-silicon probe."""
    return _cluster("little", nanometers, 1, LITTLE_CLOCKS[nanometers][0])


def _dark_fraction(
    nanometers: int, area_mm2: float, peak_watts: float, budget: Budget
) -> float:
    """Area-budget share that cannot be powered with any more silicon.

    Spare area that *could* hold more little cores but whose power the TDP
    cannot cover is dark by definition; spare area the power budget could
    still light is merely unused, not dark.
    """
    probe = _min_little(nanometers)
    spare_area = max(0.0, budget.area_mm2 - area_mm2)
    spare_power = max(0.0, budget.tdp_w - peak_watts)
    lightable = min(spare_area / probe.area_mm2, spare_power / probe.peak_watts)
    dark = (spare_area - lightable * probe.area_mm2) / budget.area_mm2
    return max(0.0, round(dark, 6))


def _assemble(
    nanometers: int,
    big_cores: int,
    big_clock: float,
    little_cores: int,
    little_clock: float,
    budget: Budget,
) -> Optional[Candidate]:
    """Build a candidate if it fits the budget, else None."""
    big = _cluster("big", nanometers, big_cores, big_clock) if big_cores else None
    little = (
        _cluster("little", nanometers, little_cores, little_clock)
        if little_cores
        else None
    )
    clusters = [c for c in (big, little) if c is not None]
    if not clusters:
        return None
    area = sum(c.area_mm2 for c in clusters)
    peak = sum(c.peak_watts for c in clusters)
    if area > budget.area_mm2 + 1e-9 or peak > budget.tdp_w + 1e-9:
        return None
    parts = [f"proj{nanometers}"]
    if big is not None:
        parts.append(f"b{big.cores}@{big.clock_ghz:g}")
    if little is not None:
        parts.append(f"l{little.cores}@{little.clock_ghz:g}")
    return Candidate(
        key="/".join(parts),
        node_nm=nanometers,
        big=big,
        little=little,
        area_mm2=round(area, 6),
        peak_watts=round(peak, 6),
        dark_fraction=_dark_fraction(nanometers, area, peak, budget),
    )


def node_capacity(nanometers: int, budget: Budget = Budget()) -> dict[str, float]:
    """How far the budget stretches at a node, and what must stay dark.

    Fills the die with top-clock big cores until area or power runs out,
    then backfills remaining power with minimum little cores — the
    best-case utilisation.  The residual unpowerable area fraction is the
    node's achieved dark-silicon share under this budget.
    """
    big_probe = _cluster("big", nanometers, 1, BIG_CLOCKS[nanometers][-1])
    uncore_w = big_probe.config.spec.power.uncore_watts
    per_big_w = big_probe.peak_watts - uncore_w
    by_area = int(budget.area_mm2 // big_probe.area_mm2)
    by_power = int((budget.tdp_w - uncore_w) // per_big_w) if per_big_w > 0 else by_area
    big_cores = max(1, min(by_area, by_power))
    area = big_cores * big_probe.area_mm2
    peak = uncore_w + big_cores * per_big_w
    return {
        "nanometers": float(nanometers),
        "big_cores_by_area": float(by_area),
        "big_cores_by_power": float(by_power),
        "big_cores": float(big_cores),
        "dark_fraction": _dark_fraction(nanometers, area, peak, budget),
    }


def synthesize_candidates(
    nanometers: int,
    samples: int,
    budget: Budget = Budget(),
    seed: int = 0,
) -> tuple[Candidate, ...]:
    """Draw up to ``samples`` distinct budget-valid candidates at a node.

    Uniform draws over (big count, big clock, little count, little clock)
    with rejection of over-budget or empty machines; duplicates collapse by
    key.  Returns candidates sorted by key.  Bounded attempts keep the
    generator total even if the valid space is smaller than ``samples``.
    """
    if samples < 1:
        raise ValueError("samples must be positive")
    node = _projected_node(nanometers)
    rng = Random(seed_from_key(f"projection/candidates/{node.nanometers}/{seed}"))
    big_probe = _cluster("big", nanometers, 1, BIG_CLOCKS[nanometers][0])
    little_probe = _min_little(nanometers)
    max_big = int(budget.area_mm2 // big_probe.area_mm2)
    max_little = int(budget.area_mm2 // little_probe.area_mm2)
    out: dict[str, Candidate] = {}
    attempts = 0
    limit = samples * 64
    while len(out) < samples and attempts < limit:
        attempts += 1
        big_cores = rng.randrange(0, max_big + 1)
        little_cores = rng.randrange(0, max_little + 1)
        # Keep both homogeneous extremes represented: uniform draws over
        # the joint space almost never zero out a whole cluster, yet the
        # big-only (serial performance) and little-only (efficiency) ends
        # anchor the frontier.
        shape = rng.random()
        if shape < 0.15:
            little_cores = 0
        elif shape < 0.30:
            big_cores = 0
        big_clock = rng.choice(BIG_CLOCKS[nanometers])
        little_clock = rng.choice(LITTLE_CLOCKS[nanometers])
        candidate = _assemble(
            nanometers, big_cores, big_clock, little_cores, little_clock, budget
        )
        if candidate is not None:
            out.setdefault(candidate.key, candidate)
    return tuple(sorted(out.values(), key=lambda c: c.key))
