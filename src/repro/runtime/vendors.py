"""JVM vendor profiles (§2.2's deferred comparison).

The paper measured Oracle HotSpot, and spot-checked Oracle JRockit and
IBM J9: "Their average performance is similar to HotSpot, but individual
benchmarks vary substantially.  We observe aggregate power differences of
up to 10% between JVMs."  Exploring that influence is called out as
future work — this module provides it.

A vendor profile carries a small mean performance offset, a per-benchmark
deterministic variation (two JITs never agree on which methods deserve
their budget), a power activity factor, and a service-load scale (J9's
generational policies collect differently than HotSpot's throughput
collector).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.seeding import rng_for, run_key
from repro.workloads.benchmark import Benchmark


@dataclass(frozen=True, slots=True)
class JvmVendor:
    """One JVM implementation's behavioural profile."""

    name: str
    #: Mean performance relative to HotSpot (>1 is faster).
    mean_performance: float
    #: Per-benchmark standard deviation of the performance ratio — how much
    #: individual benchmarks diverge between this JIT and HotSpot's.
    benchmark_spread: float
    #: Package power activity relative to HotSpot-compiled code.
    activity_factor: float
    #: Runtime-service (GC + JIT) load relative to HotSpot.
    service_scale: float

    def __post_init__(self) -> None:
        if self.mean_performance <= 0 or self.activity_factor <= 0:
            raise ValueError("vendor factors must be positive")
        if self.benchmark_spread < 0:
            raise ValueError("spread cannot be negative")
        if self.service_scale <= 0:
            raise ValueError("service scale must be positive")

    def performance_factor(self, benchmark: Benchmark) -> float:
        """Deterministic per-benchmark performance ratio vs HotSpot.

        HotSpot is the identity by construction; other vendors draw a
        stable per-benchmark factor around their mean.
        """
        if not benchmark.managed:
            raise ValueError(f"{benchmark.name} is native; no JVM applies")
        if self.benchmark_spread == 0.0 and self.mean_performance == 1.0:
            return 1.0
        rng = rng_for(run_key("jvm-vendor", self.name, benchmark.name))
        return self.mean_performance * float(
            rng.lognormal(mean=0.0, sigma=self.benchmark_spread)
        )


#: The JVM the paper reports: the baseline identity profile.
HOTSPOT = JvmVendor(
    name="HotSpot 1.6.0 (16.3-b01)",
    mean_performance=1.0,
    benchmark_spread=0.0,
    activity_factor=1.0,
    service_scale=1.0,
)

#: Oracle JRockit R28: aggressive optimising JIT, larger code footprint,
#: slightly hotter.
JROCKIT = JvmVendor(
    name="JRockit R28.0.0",
    mean_performance=1.01,
    benchmark_spread=0.10,
    activity_factor=1.06,
    service_scale=1.05,
)

#: IBM J9 SR8: leaner code and collector, slightly cooler, comparable
#: average speed with large per-benchmark swings.
J9 = JvmVendor(
    name="IBM J9 pxi3260sr8",
    mean_performance=0.99,
    benchmark_spread=0.12,
    activity_factor=0.95,
    service_scale=0.92,
)

VENDORS: tuple[JvmVendor, ...] = (HOTSPOT, JROCKIT, J9)


def vendor(name: str) -> JvmVendor:
    """Look up a vendor by short name ('hotspot', 'jrockit', 'j9')."""
    table = {"hotspot": HOTSPOT, "jrockit": JROCKIT, "j9": J9}
    try:
        return table[name.lower()]
    except KeyError:
        raise KeyError(f"unknown JVM vendor {name!r}; known: {sorted(table)}") from None
