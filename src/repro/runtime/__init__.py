"""Managed-runtime substrate: a HotSpot-like JVM model.

Provides service-thread placement (:mod:`repro.runtime.jvm`), collector
load and displacement (:mod:`repro.runtime.gc`), JIT warm-up
(:mod:`repro.runtime.jit`), heap policy (:mod:`repro.runtime.heap`), and
the paper's Java measurement protocol (:mod:`repro.runtime.methodology`).
"""

from repro.runtime.heap import HeapPolicy, PAPER_HEAP_FACTOR
from repro.runtime.jit import DEFAULT_WARMUP, JitWarmup
from repro.runtime.jvm import JvmPlan, ServicePlacement, plan
from repro.runtime.methodology import (
    JAVA_INVOCATIONS,
    MeasurementProtocol,
    STEADY_STATE_ITERATION,
    protocol_for,
)

__all__ = [
    "DEFAULT_WARMUP",
    "HeapPolicy",
    "JAVA_INVOCATIONS",
    "JitWarmup",
    "JvmPlan",
    "MeasurementProtocol",
    "PAPER_HEAP_FACTOR",
    "STEADY_STATE_ITERATION",
    "ServicePlacement",
    "plan",
    "protocol_for",
]
