"""The JVM execution plan: where runtime services land on the hardware.

Workload Finding 1 — "the JVM often induces significant amounts of
parallelism into the execution of single-threaded Java benchmarks" — is a
*placement* phenomenon.  The runtime's service threads (collector, JIT,
profiler) either:

* **co-locate** with the application (one hardware context total): their
  work serialises with the application's and displaces its cache state;
* run on an **SMT sibling**: mostly hidden in stall slots, partial
  displacement relief, some core-resource contention (fatal on NetBurst's
  shared trace cache — Workload Finding 2);
* run on a **spare core**: fully overlapped and full displacement relief.

This module decides the placement for a benchmark on a configuration and
quantifies each regime's costs, which the execution engine then folds into
time, power, and event counts.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.hardware.config import Configuration
from repro.runtime.gc import CollectorLoad, collector_load, displacement_factor
from repro.runtime.heap import HeapPolicy
from repro.workloads.benchmark import Benchmark


class ServicePlacement(enum.Enum):
    """Where the runtime's service threads execute."""

    COLOCATED = "colocated"  # share the application's hardware context
    SMT_SIBLING = "smt-sibling"  # hardware thread on an application core
    SPARE_CORE = "spare-core"  # whole idle core available


#: Displacement relief by placement: a sibling shares L1/TLB so relief is
#: partial; a spare core gives full relief.
_RELIEF = {
    ServicePlacement.COLOCATED: 0.0,
    ServicePlacement.SMT_SIBLING: 0.55,
    ServicePlacement.SPARE_CORE: 1.0,
}

#: Fraction of service work that stays serialised with the application
#: even when services have their own context (safepoints, brief
#: stop-the-world pauses of the parallel collector).
_SERIAL_RESIDUE = {
    ServicePlacement.COLOCATED: 1.0,
    ServicePlacement.SMT_SIBLING: 0.35,
    ServicePlacement.SPARE_CORE: 0.12,
}


@dataclass(frozen=True, slots=True)
class JvmPlan:
    """Resolved runtime behaviour of one Java run."""

    app_threads: int
    placement: ServicePlacement
    load: CollectorLoad
    #: Multiplier on the application's memory/DTLB miss rates.
    displacement: float
    #: Service work that serialises with the application (fraction of app
    #: work); the rest overlaps on other contexts.
    serial_service: float
    #: Service work running concurrently on non-application contexts
    #: (fraction of app work) — occupies contexts and burns power.
    overlapped_service: float
    #: Throughput tax on the application from sharing core resources with
    #: services on an SMT sibling (0 unless placement is SMT_SIBLING).
    sibling_friction: float


def plan(
    benchmark: Benchmark,
    config: Configuration,
    heap: HeapPolicy | None = None,
) -> JvmPlan:
    """Decide service placement for ``benchmark`` on ``config``."""
    if benchmark.jvm is None:
        raise ValueError(f"{benchmark.name} is not a managed benchmark")
    contexts = config.hardware_contexts
    app_threads = min(benchmark.character.threads_on(contexts), contexts)
    load = collector_load(benchmark.jvm, heap)

    app_cores = math.ceil(app_threads / config.threads_per_core)
    spare_cores = config.active_cores - app_cores
    spare_contexts = contexts - app_threads

    if spare_cores >= 1:
        placement = ServicePlacement.SPARE_CORE
    elif spare_contexts >= 1:
        placement = ServicePlacement.SMT_SIBLING
    else:
        placement = ServicePlacement.COLOCATED

    relief = _RELIEF[placement]
    serial_residue = _SERIAL_RESIDUE[placement]
    overlapped_share = 1.0 - serial_residue
    if placement is ServicePlacement.COLOCATED and app_threads > 1:
        # A fully-threaded application leaves no spare context, but the
        # throughput collector is itself parallel: stop-the-world pauses
        # trace with every core, so only a residue of service work
        # serialises and the rest rides the existing parallelism.
        serial_residue = 0.35
        overlapped_share = 0.0
    serial = serial_residue * load.work_fraction
    overlapped = overlapped_share * load.work_fraction

    friction = 0.0
    if placement is ServicePlacement.SMT_SIBLING:
        family = config.spec.family
        friction = family.smt_contention * (1.0 + benchmark.jvm.code_pressure)

    return JvmPlan(
        app_threads=app_threads,
        placement=placement,
        load=load,
        displacement=displacement_factor(benchmark.jvm, relief),
        serial_service=serial,
        overlapped_service=overlapped,
        sibling_friction=friction,
    )
