"""JIT compilation warm-up model (§2.2).

HotSpot compiles hot methods adaptively, so early iterations of a benchmark
mix interpretation, compilation, and unoptimised code.  The paper measures
the *fifth* iteration within one JVM invocation to capture steady state:
class loading and heavy compilation dominate early phases, while the fifth
iteration retains only a small residue of compiler activity.

The model is a geometric decay of per-iteration overhead — standard in the
replay-compilation literature — and exists so the measurement methodology
(:mod:`repro.runtime.methodology`) can demonstrate *why* iteration five is
the right choice rather than assuming it.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class JitWarmup:
    """Per-iteration slowdown of a benchmark while the JIT warms up."""

    #: Slowdown of iteration 1 over steady state (class loading plus
    #: interpretation plus compilation); ~2.2x is typical of DaCapo.
    first_iteration_overhead: float = 1.2
    #: Fraction of the remaining overhead that survives each iteration.
    decay: float = 0.30
    #: Residual compiler activity that never quite disappears (§2.2: "the
    #: fifth iteration may still have a small amount of compiler activity").
    steady_residue: float = 0.005

    def __post_init__(self) -> None:
        if self.first_iteration_overhead < 0:
            raise ValueError("overhead cannot be negative")
        if not 0.0 <= self.decay < 1.0:
            raise ValueError("decay must be in [0, 1)")
        if self.steady_residue < 0:
            raise ValueError("residue cannot be negative")

    def overhead_at(self, iteration: int) -> float:
        """Multiplicative slowdown at a 1-based iteration number."""
        if iteration < 1:
            raise ValueError("iterations are 1-based")
        transient = self.first_iteration_overhead * self.decay ** (iteration - 1)
        return 1.0 + transient + self.steady_residue

    def iterations_to_settle(self, tolerance: float = 0.01) -> int:
        """First iteration whose transient overhead is below ``tolerance``.

        With the default parameters this lands at five, matching the
        paper's choice of reporting the fifth iteration.
        """
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        iteration = 1
        while self.first_iteration_overhead * self.decay ** (iteration - 1) > tolerance:
            iteration += 1
        return iteration


#: Default warm-up used for every Java benchmark.
DEFAULT_WARMUP = JitWarmup()
