"""Heap sizing policy (§2.2).

The paper fixes each benchmark's heap at a generous 3x the minimum it needs,
which sets the garbage collector's load: with a heap ``h`` times the live
set, a tracing collector's work per unit of allocation scales like
``1 / (h - 1)`` (each collection reclaims ``(h - 1)`` heaps' worth of
garbage for one trace of the live set).
"""

from __future__ import annotations

from dataclasses import dataclass

#: The paper's heap sizing: 3x the minimum required per benchmark.
PAPER_HEAP_FACTOR = 3.0


@dataclass(frozen=True, slots=True)
class HeapPolicy:
    """Heap size as a multiple of the benchmark's minimum heap."""

    factor: float = PAPER_HEAP_FACTOR

    def __post_init__(self) -> None:
        if self.factor <= 1.0:
            raise ValueError("heap must exceed the minimum live size")

    def gc_load_scale(self) -> float:
        """GC work relative to the paper's 3x heap.

        A benchmark's ``service_fraction`` is quoted at the 3x heap; a
        tighter heap collects more often, a looser one less.
        """
        reference = 1.0 / (PAPER_HEAP_FACTOR - 1.0)
        actual = 1.0 / (self.factor - 1.0)
        return actual / reference
