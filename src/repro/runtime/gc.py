"""Garbage collector model.

HotSpot's throughput collector is parallel: given spare hardware contexts
it traces with several threads and runs concurrently with allocation-free
application phases.  Two collector effects matter to the study:

* **work**: the collector (plus JIT and profiler) contributes the
  benchmark's ``service_fraction`` of extra instructions;
* **displacement**: when the collector shares the application's hardware
  context it evicts the application's cache and TLB state every collection
  — the paper's explanation for db speeding up 30 % on a second core while
  its DTLB misses drop 2.5x (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.heap import HeapPolicy
from repro.workloads.characteristics import JvmBehavior


@dataclass(frozen=True, slots=True)
class CollectorLoad:
    """Resolved collector/service work for one run."""

    #: Service instructions as a fraction of application instructions.
    work_fraction: float
    #: Collector threads that will occupy spare contexts if available.
    threads: int


def collector_load(jvm: JvmBehavior, heap: HeapPolicy | None = None) -> CollectorLoad:
    """Total runtime-service work for a benchmark under a heap policy."""
    policy = heap or HeapPolicy()
    # Roughly 60% of service work is collection (heap-sensitive); the rest
    # is JIT compilation and profiling (heap-insensitive).
    gc_share = 0.6
    scaled = jvm.service_fraction * (
        gc_share * policy.gc_load_scale() + (1.0 - gc_share)
    )
    return CollectorLoad(work_fraction=scaled, threads=jvm.gc_threads)


def displacement_factor(jvm: JvmBehavior, relief: float) -> float:
    """Miss-rate inflation from collector displacement.

    ``relief`` in [0, 1]: 0 = services fully co-located with the
    application (full displacement), 1 = services on an idle core (no
    displacement).  An SMT sibling gives partial relief: the thread no
    longer steals the context, but L1/TLB are still shared.
    """
    if not 0.0 <= relief <= 1.0:
        raise ValueError("relief must be in [0, 1]")
    full = jvm.displacement_mpki_factor
    return full - relief * (full - 1.0)
