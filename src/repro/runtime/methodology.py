"""The Java measurement protocol of §2.2.

The paper follows the recommended methodologies for measuring Java
(Blackburn et al.; Georges et al.): report the *fifth iteration* of each
benchmark within a single JVM invocation (steady state), repeat over
*twenty invocations*, and report the mean.  Native benchmarks replay
deterministically, so SPEC's prescribed three executions (five for PARSEC)
suffice.

This module encodes the protocol so the study harness, Table 2's
confidence intervals, and the tests all share one definition.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.benchmark import Benchmark, Group

#: §2.2: "We report the fifth iteration of each benchmark within a single
#: invocation of the JVM to capture steady state behavior."
STEADY_STATE_ITERATION = 5

#: §2.2: twenty invocations for statistically stable Java results.
JAVA_INVOCATIONS = 20

#: §2.1: SPEC prescribes three executions for CPU2006.
NATIVE_NONSCALABLE_EXECUTIONS = 3

#: §2.1: five executions for PARSEC.
NATIVE_SCALABLE_EXECUTIONS = 5


@dataclass(frozen=True, slots=True)
class MeasurementProtocol:
    """How many runs to take and which iteration to report."""

    invocations: int
    iteration: int

    def __post_init__(self) -> None:
        if self.invocations < 1 or self.iteration < 1:
            raise ValueError("invocations and iteration must be >= 1")


def protocol_for(benchmark: Benchmark) -> MeasurementProtocol:
    """The paper's protocol for one benchmark."""
    if benchmark.managed:
        return MeasurementProtocol(
            invocations=JAVA_INVOCATIONS, iteration=STEADY_STATE_ITERATION
        )
    if benchmark.group is Group.NATIVE_SCALABLE:
        return MeasurementProtocol(
            invocations=NATIVE_SCALABLE_EXECUTIONS, iteration=1
        )
    return MeasurementProtocol(
        invocations=NATIVE_NONSCALABLE_EXECUTIONS, iteration=1
    )
