"""Presentation helpers: text tables for experiment results."""

from repro.reporting.tables import (
    format_cell,
    print_experiment,
    render_experiment,
    render_many,
    render_rows,
)

__all__ = [
    "format_cell",
    "print_experiment",
    "render_experiment",
    "render_many",
    "render_rows",
]
