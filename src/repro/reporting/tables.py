"""Plain-text rendering of experiment results.

The benchmark harness prints each regenerated table/figure as an aligned
ASCII table so the paper-versus-measured comparison is readable in test
logs and terminals.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from repro.experiments.base import ExperimentResult


def format_cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3g}"
    if isinstance(value, tuple):
        return "; ".join(format_cell(v) for v in value)
    return str(value)


def render_rows(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    max_width: int = 48,
) -> str:
    """Render dict-rows as an aligned text table."""
    if not rows:
        raise ValueError("nothing to render")
    if columns is None:
        ordered: dict[str, None] = {}
        for row in rows:
            for key in row:
                ordered.setdefault(key)
        columns = tuple(ordered)
    cells = [
        [format_cell(row.get(column))[:max_width] for column in columns]
        for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(line[i]) for line in cells))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(cell.ljust(w) for cell, w in zip(line, widths)) for line in cells
    )
    return f"{header}\n{rule}\n{body}"


def render_experiment(result: ExperimentResult) -> str:
    """Full text block for one regenerated artifact."""
    parts = [
        f"== {result.paper_section}: {result.title} [{result.experiment_id}] ==",
        render_rows(result.rows),
    ]
    for note in result.notes:
        parts.append(f"note: {note}")
    return "\n".join(parts)


def print_experiment(result: ExperimentResult) -> None:
    print(render_experiment(result))


def render_many(results: Iterable[ExperimentResult]) -> str:
    return "\n\n".join(render_experiment(result) for result in results)
