"""Horizontal bar charts, the paper's dominant figure idiom.

Figures 4, 5, 7(a/b), 8, 9, and 10 are grouped bar charts of ratios
around 1.0.  This module renders labelled value bars and stacked bars
(for CPI and power attribution) as fixed-width text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence


def bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    baseline: float = 0.0,
    unit: str = "",
) -> str:
    """Render labelled horizontal bars.

    ``baseline`` draws bars from a reference value (the feature charts
    use 1.0 so costs and savings point opposite ways).
    """
    if not values:
        raise ValueError("nothing to chart")
    if width < 10:
        raise ValueError("chart too narrow")
    label_width = max(len(str(label)) for label in values)
    magnitude = max(abs(v - baseline) for v in values.values()) or 1.0
    lines = []
    for label, value in values.items():
        delta = value - baseline
        length = round(abs(delta) / magnitude * width)
        bar = ("#" if delta >= 0 else "-") * length
        lines.append(
            f"{str(label).ljust(label_width)} | {value:8.3f}{unit} {bar}"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class StackSegment:
    """One component of a stacked bar."""

    label: str
    value: float
    glyph: str

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError("stack segments cannot be negative")
        if len(self.glyph) != 1:
            raise ValueError("glyph must be one character")


def stacked_bars(
    rows: Mapping[str, Sequence[StackSegment]],
    width: int = 50,
) -> str:
    """Render stacked composition bars (e.g. CPI stacks, power shares).

    All rows share one scale so totals are comparable across rows.
    """
    if not rows:
        raise ValueError("nothing to chart")
    label_width = max(len(str(label)) for label in rows)
    totals = {label: sum(s.value for s in segments) for label, segments in rows.items()}
    peak = max(totals.values()) or 1.0
    lines = []
    glyph_labels: dict[str, str] = {}
    for label, segments in rows.items():
        bar = ""
        for segment in segments:
            glyph_labels.setdefault(segment.glyph, segment.label)
            bar += segment.glyph * round(segment.value / peak * width)
        lines.append(
            f"{str(label).ljust(label_width)} | {totals[label]:7.3f} {bar}"
        )
    legend = "   ".join(f"{g}={name}" for g, name in glyph_labels.items())
    lines.append(legend)
    return "\n".join(lines)
