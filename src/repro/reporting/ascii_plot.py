"""Terminal scatter plots for the paper's figures.

The benchmark harness prints tables, but several paper artifacts are
inherently scatter plots (Fig. 2's power-vs-TDP, Fig. 3's diversity,
Fig. 11's historical overview, Fig. 12's frontiers).  This module renders
them as fixed-width character plots — enough to *see* the shapes the
integration tests assert.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass(frozen=True)
class Series:
    """One plotted series: points plus the glyph that marks them."""

    label: str
    points: Sequence[tuple[float, float]]
    marker: str

    def __post_init__(self) -> None:
        if len(self.marker) != 1:
            raise ValueError("marker must be a single character")
        if not self.points:
            raise ValueError(f"series {self.label!r} has no points")


def _transform(value: float, low: float, high: float, log: bool) -> float:
    if log:
        return (math.log10(value) - math.log10(low)) / (
            math.log10(high) - math.log10(low)
        )
    return (value - low) / (high - low)


def scatter(
    series: Sequence[Series],
    width: int = 64,
    height: int = 20,
    x_label: str = "",
    y_label: str = "",
    log_x: bool = False,
    log_y: bool = False,
    x_range: Optional[tuple[float, float]] = None,
    y_range: Optional[tuple[float, float]] = None,
) -> str:
    """Render series as a character scatter plot with axes and a legend."""
    if not series:
        raise ValueError("nothing to plot")
    if width < 16 or height < 6:
        raise ValueError("plot too small to be legible")
    xs = [x for s in series for x, _ in s.points]
    ys = [y for s in series for _, y in s.points]
    x_lo, x_hi = x_range if x_range else (min(xs), max(xs))
    y_lo, y_hi = y_range if y_range else (min(ys), max(ys))
    if x_lo == x_hi:
        x_lo, x_hi = x_lo * 0.9 or -1.0, x_hi * 1.1 or 1.0
    if y_lo == y_hi:
        y_lo, y_hi = y_lo * 0.9 or -1.0, y_hi * 1.1 or 1.0
    if log_x and x_lo <= 0 or log_y and y_lo <= 0:
        raise ValueError("log axes need positive data")

    grid = [[" "] * width for _ in range(height)]
    for one in series:
        for x, y in one.points:
            fx = _transform(x, x_lo, x_hi, log_x)
            fy = _transform(y, y_lo, y_hi, log_y)
            if not (0.0 <= fx <= 1.0 and 0.0 <= fy <= 1.0):
                continue  # out of explicit range
            column = min(int(fx * (width - 1)), width - 1)
            row = height - 1 - min(int(fy * (height - 1)), height - 1)
            cell = grid[row][column]
            grid[row][column] = one.marker if cell in (" ", one.marker) else "*"

    lines = []
    y_hi_text = f"{y_hi:.3g}"
    y_lo_text = f"{y_lo:.3g}"
    margin = max(len(y_hi_text), len(y_lo_text)) + 1
    for index, row in enumerate(grid):
        if index == 0:
            prefix = y_hi_text.rjust(margin)
        elif index == height - 1:
            prefix = y_lo_text.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row)}")
    axis = " " * margin + "+" + "-" * width
    lines.append(axis)
    x_lo_text, x_hi_text = f"{x_lo:.3g}", f"{x_hi:.3g}"
    gap = width - len(x_lo_text) - len(x_hi_text)
    lines.append(" " * (margin + 1) + x_lo_text + " " * max(gap, 1) + x_hi_text)
    scale = []
    if log_x:
        scale.append("log x")
    if log_y:
        scale.append("log y")
    caption = f"x: {x_label}   y: {y_label}"
    if scale:
        caption += f"   ({', '.join(scale)})"
    lines.append(caption)
    legend = "   ".join(f"{s.marker}={s.label}" for s in series)
    lines.append(legend + "   *=overlap")
    return "\n".join(lines)
