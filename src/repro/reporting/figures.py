"""Character renderings of the paper's scatter figures.

Builds :mod:`repro.reporting.ascii_plot` views for the artifacts that are
plots rather than tables: Fig. 2 (power vs TDP), Fig. 3 (i7 diversity),
Fig. 7(c) (energy/performance clock curves), Fig. 11 (historical), and
Fig. 12 (Pareto frontiers).
"""

from __future__ import annotations

from typing import Optional

from repro.core.study import Study
from repro.experiments import (
    fig2_tdp,
    fig7_clock,
    fig11_historical,
    fig12_pareto_frontier,
)
from repro.experiments.base import resolve_study
from repro.experiments.registry import run_experiment
from repro.projection.frontier import ProjectionDataset
from repro.reporting.ascii_plot import Series, scatter
from repro.workloads.benchmark import Group
from repro.workloads.catalog import BENCHMARKS_BY_NAME

_GROUP_MARKERS = {
    Group.NATIVE_NONSCALABLE: "n",
    Group.NATIVE_SCALABLE: "N",
    Group.JAVA_NONSCALABLE: "j",
    Group.JAVA_SCALABLE: "J",
}


def figure2(study: Optional[Study] = None) -> str:
    """Fig. 2: measured benchmark power vs TDP, log/log."""
    study = resolve_study(study)
    by_tdp: dict[float, list[float]] = {}
    for _, _, tdp, watts in fig2_tdp.scatter(study):
        by_tdp.setdefault(tdp, []).append(watts)
    points = [(tdp, w) for tdp, watts in by_tdp.items() for w in watts]
    identity = [(x, x) for x in (2.0, 4.0, 13.0, 65.0, 130.0)]
    return scatter(
        [
            Series("benchmark power", points, "o"),
            Series("power = TDP", identity, "/"),
        ],
        x_label="TDP (W)",
        y_label="measured power (W)",
        log_x=True,
        log_y=True,
    )


def figure3(study: Optional[Study] = None) -> str:
    """Fig. 3: per-benchmark power/performance on the stock i7."""
    study = resolve_study(study)
    rows = run_experiment("fig3", study).rows
    per_group: dict[Group, list[tuple[float, float]]] = {}
    for row in rows:
        bench = BENCHMARKS_BY_NAME[str(row["benchmark"])]
        per_group.setdefault(bench.group, []).append(
            (float(row["performance"]), float(row["watts"]))
        )
    series = [
        Series(group.value, points, _GROUP_MARKERS[group])
        for group, points in per_group.items()
    ]
    return scatter(
        series,
        x_label="performance / reference",
        y_label="power (W)",
    )


def figure7c(study: Optional[Study] = None) -> str:
    """Fig. 7(c): relative energy vs relative performance per clock point."""
    study = resolve_study(study)
    series = []
    for key, marker in (("i7_45", "7"), ("c2d_45", "c"), ("i5_32", "5")):
        curve = fig7_clock.energy_curve(study, key)
        series.append(
            Series(key, [(perf, energy) for _, perf, energy in curve], marker)
        )
    return scatter(
        series,
        x_label="performance / performance at base clock",
        y_label="energy / energy at base clock",
        height=16,
    )


def figure11(study: Optional[Study] = None) -> str:
    """Fig. 11(a): stock power vs performance, log/log."""
    study = resolve_study(study)
    rows = fig11_historical.run(study).rows
    series = [
        Series(
            str(row["processor"]),
            [(float(row["performance"]), float(row["watts"]))],
            str(row["processor"])[0],
        )
        for row in rows
    ]
    return scatter(
        series,
        x_label="performance / reference",
        y_label="power (W)",
        log_x=True,
        log_y=True,
    )


def projection_figure(dataset: "ProjectionDataset") -> str:
    """Extended Fig. 12: projected per-node frontiers over measured points.

    A pure function of the frontier dataset — no study access, no clock —
    so equal datasets render byte-identical figures (the property the
    projection CI job asserts alongside the dataset bytes).
    """
    node_markers = {22: "2", 14: "4", 10: "0", 7: "7"}
    series = [
        Series(
            "measured stock (130-32 nm)",
            [(p.performance, p.energy) for p in dataset.measured],
            "M",
        )
    ]
    for frontier in dataset.frontiers:
        marker = node_markers.get(frontier.node_nm, "*")
        curve = [(float(x), float(y)) for x, y in frontier.frontier_series()]
        if curve:
            series.append(Series(f"{frontier.node_nm} nm frontier", curve, marker))
        efficient = [
            (o.performance, o.energy) for o in frontier.efficient_outcomes
        ]
        if efficient:
            series.append(Series(f"{frontier.node_nm} nm efficient", efficient, "+"))
    return scatter(
        series,
        x_label="average performance / reference",
        y_label="normalised average energy",
        log_x=True,
        log_y=True,
        height=20,
    )


def figure12(study: Optional[Study] = None) -> str:
    """Fig. 12: Pareto frontiers per workload grouping."""
    study = resolve_study(study)
    rows = fig12_pareto_frontier.run(study).rows
    markers = {"Average": "A"} | {
        g.value: _GROUP_MARKERS[g] for g in Group
    }
    series = []
    for row in rows:
        label = str(row["grouping"])
        points = [(float(x), float(y)) for x, y in row["frontier_series"]]
        series.append(Series(label, points, markers[label]))
    return scatter(
        series,
        x_label="group performance / reference",
        y_label="normalised group energy",
        height=18,
    )
