"""Developer tool: model-versus-paper calibration report.

Prints Table 4 aggregates and the §3 feature ratios side by side with the
paper's values so the catalog's calibration constants can be tuned.
Run:  python tools/calibration_report.py [--quick]
"""

from __future__ import annotations

import sys

from repro.core.aggregation import full_aggregate
from repro.core.study import Study
from repro.experiments import paper_data
from repro.hardware import catalog, configurations, stock
from repro.hardware.config import Configuration
from repro.workloads.benchmark import Group
from repro.workloads.catalog import BENCHMARKS

GROUPS = (Group.NATIVE_NONSCALABLE, Group.NATIVE_SCALABLE,
          Group.JAVA_NONSCALABLE, Group.JAVA_SCALABLE)


def table4(study: Study) -> None:
    print("=== Table 4: speedup | power (model vs paper) ===")
    header = f"{'processor':14s}" + "".join(
        f"{g.name[:4]:>16s}" for g in GROUPS) + f"{'Avg_w':>16s}"
    print(header)
    for spec in catalog.PROCESSORS:
        results = study.run_config(stock(spec))
        speed = full_aggregate(results.values("speedup"), BENCHMARKS)
        power = full_aggregate(results.values("watts"), BENCHMARKS)
        ps = paper_data.TABLE4_SPEEDUP[spec.key]
        pp = paper_data.TABLE4_POWER[spec.key]
        cells = []
        for g in GROUPS:
            cells.append(f"{speed[g.value]:.2f}/{ps[g]:.2f} "
                         f"{power[g.value]:.0f}/{pp[g]:.0f}W")
        cells.append(f"{speed['Avg_w']:.2f}/{ps['Avg_w']:.2f} "
                     f"{power['Avg_w']:.0f}/{pp['Avg_w']:.0f}W")
        print(f"{spec.key:14s}" + "".join(f"{c:>16s}" for c in cells))


def _avg(study: Study, config: Configuration, metric: str) -> float:
    from repro.core.aggregation import weighted_average, group_means
    results = study.run_config(config)
    return weighted_average(group_means(results.values(metric), BENCHMARKS))


def _ratio(study: Study, num: Configuration, den: Configuration, metric: str) -> float:
    from repro.core.aggregation import ratio_of_aggregates
    return ratio_of_aggregates(
        study.run_config(num).values(metric),
        study.run_config(den).values(metric),
        BENCHMARKS,
    )


def feature_ratios(study: Study) -> None:
    i7, i5 = catalog.CORE_I7_45, catalog.CORE_I5_32
    p4, atom = catalog.PENTIUM4_130, catalog.ATOM_45
    c2d45, c2d65 = catalog.CORE2DUO_45, catalog.CORE2DUO_65

    def cfg(spec, c, t, ghz, tb=False):
        return Configuration(spec, c, t, ghz, tb)

    def ratio(name, num, den, paper):
        perf = 1.0 / _ratio(study, num, den, "seconds")
        pwr = _ratio(study, num, den, "watts")
        en = _ratio(study, num, den, "normalized_energy")
        print(f"{name:34s} perf {perf:5.2f}/{paper['performance']:5.2f}  "
              f"power {pwr:5.2f}/{paper['power']:5.2f}  "
              f"energy {en:5.2f}/{paper['energy']:5.2f}")

    print("\n=== Fig 4: CMP 2C/1C (no SMT, no TB) ===")
    ratio("i7 2C1T/1C1T@2.66", cfg(i7, 2, 1, 2.66), cfg(i7, 1, 1, 2.66),
          paper_data.FIG4_CMP["i7_45"])
    ratio("i5 2C1T/1C1T@3.46", cfg(i5, 2, 1, 3.46), cfg(i5, 1, 1, 3.46),
          paper_data.FIG4_CMP["i5_32"])

    print("\n=== Fig 5: SMT 1C2T/1C1T (no TB) ===")
    ratio("P4", cfg(p4, 1, 2, 2.4), cfg(p4, 1, 1, 2.4),
          paper_data.FIG5_SMT["pentium4_130"])
    ratio("i7", cfg(i7, 1, 2, 2.66), cfg(i7, 1, 1, 2.66),
          paper_data.FIG5_SMT["i7_45"])
    ratio("Atom", cfg(atom, 1, 2, 1.66), cfg(atom, 1, 1, 1.66),
          paper_data.FIG5_SMT["atom_45"])
    ratio("i5", cfg(i5, 1, 2, 3.46), cfg(i5, 1, 1, 3.46),
          paper_data.FIG5_SMT["i5_32"])

    print("\n=== Fig 7: clock max vs min (raw ratios, paper=per doubling) ===")
    ratio("i7 2.66/1.6", cfg(i7, 4, 2, 2.66), cfg(i7, 4, 2, 1.6),
          paper_data.FIG7_CLOCK_DOUBLING["i7_45"] | {"performance": 1.5, "power": 2.3, "energy": 1.55})
    ratio("C2D45 3.06/1.6", cfg(c2d45, 2, 1, 3.06), cfg(c2d45, 2, 1, 1.6),
          paper_data.FIG7_CLOCK_DOUBLING["c2d_45"] | {"performance": 1.6, "power": 2.4, "energy": 1.5})
    ratio("i5 3.46/1.2", cfg(i5, 2, 2, 3.46), cfg(i5, 2, 2, 1.2),
          paper_data.FIG7_CLOCK_DOUBLING["i5_32"] | {"performance": 2.3, "power": 2.2, "energy": 0.94})

    print("\n=== Fig 8: die shrink (new/old) matched clocks ===")
    ratio("Core: C2D45/C2D65 @2.4 2C",
          cfg(c2d45, 2, 1, 2.4), cfg(c2d65, 2, 1, 2.4),
          paper_data.FIG8_DIE_SHRINK_MATCHED["core"])
    ratio("Nehalem: i5/i7 @2.66 2C2T",
          cfg(i5, 2, 2, 2.66), cfg(i7, 2, 2, 2.66),
          paper_data.FIG8_DIE_SHRINK_MATCHED["nehalem"])

    print("\n=== Fig 9: gross uarch (Nehalem/other) ===")
    ratio("i7/P4 1C2T@2.4", cfg(i7, 1, 2, 2.4), cfg(p4, 1, 2, 2.4),
          paper_data.FIG9_MICROARCH["netburst"])
    ratio("i7/C2D45 2C1T@1.6", cfg(i7, 2, 1, 1.6), cfg(c2d45, 2, 1, 1.6),
          paper_data.FIG9_MICROARCH["core_45"])
    ratio("i5/C2D65 2C1T@2.4", cfg(i5, 2, 1, 2.4), cfg(c2d65, 2, 1, 2.4),
          paper_data.FIG9_MICROARCH["core_65"])
    ratio("i7/AtomD 2C2T@1.6/1.66",
          cfg(i7, 2, 2, 1.6), stock(catalog.ATOM_D510_45),
          paper_data.FIG9_MICROARCH["bonnell"])

    print("\n=== Fig 10: Turbo Boost on/off ===")
    ratio("i7 4C2T", cfg(i7, 4, 2, 2.66, True), cfg(i7, 4, 2, 2.66),
          paper_data.FIG10_TURBO["i7_45/4C2T"])
    ratio("i7 1C1T", cfg(i7, 1, 1, 2.66, True), cfg(i7, 1, 1, 2.66),
          paper_data.FIG10_TURBO["i7_45/1C1T"])
    ratio("i5 2C2T", cfg(i5, 2, 2, 3.46, True), cfg(i5, 2, 2, 3.46),
          paper_data.FIG10_TURBO["i5_32/2C2T"])
    ratio("i5 1C1T", cfg(i5, 1, 1, 3.46, True), cfg(i5, 1, 1, 3.46),
          paper_data.FIG10_TURBO["i5_32/1C1T"])


def scalability(study: Study) -> None:
    i7 = catalog.CORE_I7_45
    print("\n=== Fig 1 / Fig 6: Java scalability on i7 (model/paper) ===")
    base = study.run_config(Configuration(i7, 1, 1, 2.66))
    four = study.run_config(Configuration(i7, 4, 2, 2.66))
    two = study.run_config(Configuration(i7, 2, 1, 2.66))
    b_t, f_t, t_t = (s.values("seconds") for s in (base, four, two))
    for name, paper in paper_data.FIG1_JAVA_SCALABILITY.items():
        print(f"  fig1 {name:12s} {b_t[name]/f_t[name]:.2f}/{paper:.2f}")
    for name, paper in paper_data.FIG6_ST_JAVA_CMP.items():
        print(f"  fig6 {name:12s} {b_t[name]/t_t[name]:.2f}/{paper:.2f}")


def main() -> None:
    scale = 0.2 if "--quick" in sys.argv else 1.0
    study = Study(invocation_scale=scale)
    table4(study)
    feature_ratios(study)
    scalability(study)


if __name__ == "__main__":
    main()
