#!/usr/bin/env python3
"""End-to-end smoke test for ``repro serve`` — stdlib only.

Boots the campaign server as a subprocess, fires ~50 mixed requests at
it (a coalescing burst, distinct sweeps, one fault-armed plan, and a
rate-limit hammer), SIGTERMs it, and restarts it against the same store.

Asserts the service's operational contract:

1. every admitted request gets 200 with the byte-identical record for
   its (benchmark, configuration), including the coalesced burst and the
   fault-armed request;
2. the rate-limited client sees the expected 200/429 split, with a
   ``Retry-After`` header on every 429;
3. ``GET /slo`` reports the declared targets, the exact request/error
   counts for the known status mix, zero error-budget burn (no 5xx was
   served), and positive latency quantiles;
4. every measure response carries ``X-Request-Id`` + ``traceparent``,
   and ``GET /trace/<request_id>`` serves a single-rooted span tree with
   zero orphan parent ids;
5. SIGTERM drains cleanly (exit 0, final health report on stderr);
6. the restarted server warm-starts from the SQLite store and re-serves
   the identical bytes without re-measuring.

Usage: ``python tools/service_smoke.py`` (add ``--keep-store`` to leave
the SQLite file behind for inspection).

``--chaos`` runs the worker-kill scenario instead: a golden pass on a
plain server, then the same requests against a **supervised** server
armed with the canned ``chaos`` fault plan (every chunk's first assignee
is crashed mid-measurement).  Asserts at least one worker crash +
respawn actually happened (``repro_fleet_worker_restarts_total`` on
``/metrics``, plus the ``/healthz`` worker table) and that every
response body is byte-identical to the golden pass — worker death is
invisible in the data.

``--kill-coordinator`` runs the coordinator-crash scenario: a golden
pass, then the same requests (each with an ``Idempotency-Key``) against
a server armed with a ``coordinator.crash`` plan that kills the whole
process at the first batch dispatch — admitted work dies journalled but
unfinished.  Clients retry idempotently while a second server is
started on the same port and store with ``--recover``.  Asserts the
crash actually fired (exit code 86), every client eventually got 200
with the byte-identical golden body, the journal drained to zero
pending with no duplicates, and ``repro_recovery_*`` metrics recorded
the replay.
"""

from __future__ import annotations

import argparse
import json
import re
import signal
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from http.client import HTTPException
from pathlib import Path

SERVE_ARGS = [
    "--quick",
    "serve",
    "--port",
    "0",
    "--rate",
    "0.001",  # effectively one request per client: 429s are deterministic
    "--burst",
    "1",
    "--slo",
    # Generous latency target (nothing should violate on a shared CI
    # runner) + an availability target, so /slo reports a full budget.
    "p99=120s,avail=99",
]

FAILURES: list[str] = []


def header(headers: dict, name: str) -> str | None:
    """Case-insensitive header lookup (urllib preserves sent casing)."""
    for key, value in headers.items():
        if key.lower() == name.lower():
            return value
    return None


def check(condition: bool, message: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {message}")
    if not condition:
        FAILURES.append(message)


class Server:
    """One ``repro serve`` subprocess."""

    def __init__(self, store: Path, args: list[str] | None = None) -> None:
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                *(SERVE_ARGS if args is None else args),
                "--store",
                str(store),
            ],
            stderr=subprocess.PIPE,
            text=True,
        )
        self.banner = self.proc.stderr.readline().strip()
        match = re.search(r"http://[\d.]+:(\d+)", self.banner)
        if match is None:
            self.proc.kill()
            raise RuntimeError(f"no serving banner, got: {self.banner!r}")
        self.port = int(match.group(1))

    def request(self, method: str, path: str, body: dict | None = None,
                client: str | None = None, headers: dict | None = None):
        all_headers = dict(headers or {})
        if client:
            all_headers["X-Client-Id"] = client
        request = urllib.request.Request(
            f"http://127.0.0.1:{self.port}{path}",
            data=json.dumps(body).encode() if body is not None else None,
            headers=all_headers,
            method=method,
        )
        try:
            with urllib.request.urlopen(request, timeout=120) as response:
                return response.status, dict(response.headers), response.read()
        except urllib.error.HTTPError as error:
            return error.code, dict(error.headers), error.read()

    def measure(self, body: dict, client: str, headers: dict | None = None):
        return self.request("POST", "/measure", body, client, headers)

    def terminate(self) -> tuple[int, str]:
        self.proc.send_signal(signal.SIGTERM)
        stderr = self.proc.stderr.read()
        return self.proc.wait(timeout=120), stderr


def cleanup_stores(tmp: Path) -> None:
    """Remove the smoke stores plus every SQLite sidecar (WAL mode
    leaves ``-wal``/``-shm`` next to the database) and any fault-plan
    files the scenario wrote."""
    for db in list(tmp.glob("*.sqlite")):
        for suffix in ("", "-journal", "-wal", "-shm"):
            Path(str(db) + suffix).unlink(missing_ok=True)
    for plan in list(tmp.glob("*.json")):
        plan.unlink(missing_ok=True)
    tmp.rmdir()


#: Chaos scenario: the same six cells measured twice — once on a plain
#: server (the goldens), once on a supervised fleet whose plan crashes
#: every chunk's first assignee.
CHAOS_CELLS = [
    {"benchmark": bench, "processor": proc}
    for bench in ("mcf", "db", "lusearch")
    for proc in ("i7_45", "atom_45")
]

GOLDEN_SERVE_ARGS = ["--quick", "serve", "--port", "0"]

CHAOS_SERVE_ARGS = [
    "--quick",
    "--supervised",
    "--jobs",
    "2",
    "--heartbeat-interval",
    "0.1",
    "--liveness-misses",
    "3",
    "serve",
    "--port",
    "0",
    "--inject",
    "chaos",
    "--drain-timeout",
    "90",
]


def chaos_main(keep_store: bool) -> int:
    tmp = Path(tempfile.mkdtemp(prefix="repro-chaos-"))

    print("== golden server: clean, unsupervised ==")
    server = Server(tmp / "golden.sqlite", GOLDEN_SERVE_ARGS)
    print(f"  {server.banner}")
    with ThreadPoolExecutor(max_workers=6) as pool:
        golden = list(
            pool.map(
                lambda pair: server.measure(pair[1], client=f"g-{pair[0]}"),
                enumerate(CHAOS_CELLS),
            )
        )
    check(
        all(s == 200 for s, _, _ in golden),
        f"golden pass: {len(CHAOS_CELLS)}/{len(CHAOS_CELLS)} got 200",
    )
    code, _ = server.terminate()
    check(code == 0, f"golden drain exits 0 (got {code})")

    print("== chaos server: supervised fleet + worker-kill plan ==")
    server = Server(tmp / "chaos.sqlite", CHAOS_SERVE_ARGS)
    print(f"  {server.banner}")
    with ThreadPoolExecutor(max_workers=6) as pool:
        chaotic = list(
            pool.map(
                lambda pair: server.measure(pair[1], client=f"c-{pair[0]}"),
                enumerate(CHAOS_CELLS),
            )
        )
    check(
        all(s == 200 for s, _, _ in chaotic),
        "chaos pass: every request survived its worker being killed",
    )
    matches = sum(
        1
        for (_, _, golden_body), (_, _, chaos_body) in zip(golden, chaotic)
        if golden_body == chaos_body
    )
    check(
        matches == len(CHAOS_CELLS),
        f"worker death is invisible in the data: "
        f"{matches}/{len(CHAOS_CELLS)} bodies byte-identical to goldens",
    )

    status, _, health_body = server.request("GET", "/healthz")
    health = json.loads(health_body)
    fleet = health.get("fleet")
    check(
        status == 200 and isinstance(fleet, dict),
        "healthz publishes the fleet worker table",
    )
    if isinstance(fleet, dict):
        print(
            f"  fleet: {fleet.get('live')}/{fleet.get('size')} live, "
            f"{fleet.get('restarts')} restarts, "
            f"{fleet.get('requeues')} requeues"
        )
        check(fleet.get("live", 0) >= 1, "at least one worker is live")
        check(
            fleet.get("restarts", 0) >= 1,
            f"at least one worker was crashed and respawned "
            f"(got {fleet.get('restarts')})",
        )

    status, _, metrics_body = server.request("GET", "/metrics")
    match = re.search(
        r"^repro_fleet_worker_restarts_total(?:\{[^}]*\})?\s+([0-9.eE+-]+)",
        metrics_body.decode(),
        re.MULTILINE,
    )
    restarts = float(match.group(1)) if match else 0.0
    check(
        status == 200 and restarts >= 1.0,
        f"/metrics shows >= 1 worker restart (got {restarts:g})",
    )

    code, stderr = server.terminate()
    check(
        code == 0 and "drained:" in stderr,
        f"chaos server drains cleanly under churn (exit {code})",
    )

    if not keep_store:
        cleanup_stores(tmp)

    if FAILURES:
        print(f"\nchaos smoke FAILED: {len(FAILURES)} assertion(s):")
        for failure in FAILURES:
            print(f"  - {failure}")
        return 1
    print("\nchaos smoke OK")
    return 0


#: Exit code the server uses for an injected ``coordinator.crash``
#: (mirrors repro.faults.injector.COORDINATOR_CRASH_EXIT_CODE).
COORDINATOR_CRASH_EXIT_CODE = 86

#: Scrape one counter's value from a Prometheus exposition body.
def metric_value(metrics_body: bytes, name: str) -> float:
    match = re.search(
        rf"^{name}(?:\{{[^}}]*\}})?\s+([0-9.eE+-]+)",
        metrics_body.decode(),
        re.MULTILINE,
    )
    return float(match.group(1)) if match else 0.0


def free_port() -> int:
    """Reserve an ephemeral port number.  The crash and recovery servers
    must share a port so retrying clients need no rediscovery; the
    server's own EADDRINUSE bind retry absorbs any reuse race."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def retrying_measure(port: int, body: dict, key: str, deadline_s: float = 120.0):
    """POST /measure with an Idempotency-Key, retrying across the crash
    window (connection refused/reset while the coordinator is down)
    until an HTTP response arrives.  This is the client half of the
    at-least-once-delivery / exactly-once-effects contract."""
    deadline = time.monotonic() + deadline_s
    while True:
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/measure",
            data=json.dumps(body).encode(),
            headers={"Idempotency-Key": key, "X-Client-Id": f"retry-{key}"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=120) as response:
                return response.status, dict(response.headers), response.read()
        except urllib.error.HTTPError as error:
            return error.code, dict(error.headers), error.read()
        except (urllib.error.URLError, ConnectionError, HTTPException, OSError):
            if time.monotonic() > deadline:
                raise
            time.sleep(0.2)


def kill_coordinator_main(keep_store: bool) -> int:
    tmp = Path(tempfile.mkdtemp(prefix="repro-coord-"))
    port = free_port()

    print("== golden server: clean pass ==")
    server = Server(tmp / "golden.sqlite", GOLDEN_SERVE_ARGS)
    print(f"  {server.banner}")
    with ThreadPoolExecutor(max_workers=6) as pool:
        golden = list(
            pool.map(
                lambda pair: server.measure(pair[1], client=f"g-{pair[0]}"),
                enumerate(CHAOS_CELLS),
            )
        )
    check(
        all(s == 200 for s, _, _ in golden),
        f"golden pass: {len(CHAOS_CELLS)}/{len(CHAOS_CELLS)} got 200",
    )
    code, _ = server.terminate()
    check(code == 0, f"golden drain exits 0 (got {code})")

    print("== doomed server: coordinator.crash armed at the batch phase ==")
    plan_path = tmp / "coordinator-crash.json"
    plan_path.write_text(
        json.dumps(
            {
                "seed": "kill-coordinator",
                "faults": [
                    {
                        "kind": "coordinator.crash",
                        "probability": 1.0,
                        "scope": "coordinator/batch/*",
                    }
                ],
            }
        )
    )
    store = tmp / "coordinator.sqlite"
    doomed_args = [
        "--quick", "serve", "--port", str(port), "--inject", str(plan_path),
    ]
    server = Server(store, doomed_args)
    print(f"  {server.banner}")

    # Retrying idempotent clients: fired while the server is doomed to
    # die at its first batch dispatch; they ride out the crash window and
    # are answered by the recovery server.
    with ThreadPoolExecutor(max_workers=6) as pool:
        futures = [
            pool.submit(retrying_measure, port, cell, f"cell-{i}")
            for i, cell in enumerate(CHAOS_CELLS)
        ]
        code = server.proc.wait(timeout=120)
        check(
            code == COORDINATOR_CRASH_EXIT_CODE,
            f"coordinator.crash killed the server mid-load "
            f"(exit {code}, want {COORDINATOR_CRASH_EXIT_CODE})",
        )

        print("== recovery server: same port, same store, --recover ==")
        recovery_args = [
            "--quick", "serve", "--port", str(port), "--recover",
        ]
        server = Server(store, recovery_args)
        print(f"  {server.banner}")
        check(
            "recovering" in server.banner,
            "recovery banner reports journal replay",
        )
        survivors = [future.result(timeout=150) for future in futures]

    check(
        all(s == 200 for s, _, _ in survivors),
        f"every retrying client got 200 across the crash "
        f"(got {[s for s, _, _ in survivors]})",
    )
    matches = sum(
        1
        for (_, _, golden_body), (_, _, body) in zip(golden, survivors)
        if golden_body == body
    )
    check(
        matches == len(CHAOS_CELLS),
        f"coordinator death is invisible in the data: "
        f"{matches}/{len(CHAOS_CELLS)} bodies byte-identical to goldens",
    )

    status, _, health_body = server.request("GET", "/healthz")
    health = json.loads(health_body)
    journal = health.get("journal", {})
    recovery = health.get("recovery", {})
    print(f"  journal: {journal}  recovery: {recovery}")
    check(
        status == 200 and journal.get("pending") == 0,
        f"journal fully drained (pending={journal.get('pending')})",
    )
    check(
        journal.get("done", 0) == len(CHAOS_CELLS),
        f"exactly one done journal entry per idempotency key — no "
        f"duplicates (done={journal.get('done')})",
    )
    check(
        recovery.get("replayed", 0) >= 1,
        f"recovery replayed at least one journalled request "
        f"(replayed={recovery.get('replayed')})",
    )
    check(
        recovery.get("failed", 0) == 0,
        f"no journalled request failed to recover "
        f"(failed={recovery.get('failed')})",
    )
    check(
        health.get("store_records") == len(CHAOS_CELLS),
        f"store holds exactly one record per cell "
        f"(got {health.get('store_records')})",
    )

    status, _, metrics_body = server.request("GET", "/metrics")
    replayed = metric_value(metrics_body, "repro_recovery_replayed_total")
    completed = metric_value(metrics_body, "repro_recovery_completed_total")
    check(
        status == 200 and replayed >= 1.0 and completed >= 1.0,
        f"/metrics records the recovery (replayed={replayed:g}, "
        f"completed={completed:g})",
    )

    code, stderr = server.terminate()
    check(
        code == 0 and "drained:" in stderr,
        f"recovery server drains cleanly (exit {code})",
    )

    if not keep_store:
        cleanup_stores(tmp)

    if FAILURES:
        print(f"\nkill-coordinator smoke FAILED: {len(FAILURES)} assertion(s):")
        for failure in FAILURES:
            print(f"  - {failure}")
        return 1
    print("\nkill-coordinator smoke OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--keep-store", action="store_true")
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="run the supervised worker-kill scenario instead of the "
        "mixed-load smoke",
    )
    parser.add_argument(
        "--kill-coordinator",
        action="store_true",
        help="run the coordinator-crash + journal-recovery scenario "
        "instead of the mixed-load smoke",
    )
    args = parser.parse_args()
    if args.chaos:
        return chaos_main(args.keep_store)
    if args.kill_coordinator:
        return kill_coordinator_main(args.keep_store)

    tmp = Path(tempfile.mkdtemp(prefix="repro-smoke-"))
    store = tmp / "campaign.sqlite"

    print("== first server: mixed load ==")
    server = Server(store)
    print(f"  {server.banner}")

    # -- 1. coalescing burst: 20 identical POSTs, distinct clients -----------
    burst_body = {"benchmark": "mcf", "processor": "i7_45"}
    with ThreadPoolExecutor(max_workers=10) as pool:
        burst = list(
            pool.map(
                lambda i: server.measure(burst_body, client=f"burst-{i}"),
                range(20),
            )
        )
    check(all(s == 200 for s, _, _ in burst), "coalescing burst: 20/20 got 200")
    bodies = {body for _, _, body in burst}
    check(len(bodies) == 1, "coalescing burst: all responses byte-identical")
    mcf_i7_record = burst[0][2]

    # -- 2. distinct sweep cells ----------------------------------------------
    cells = [
        {"benchmark": bench, "processor": proc}
        for bench in ("db", "xalan", "fluidanimate", "lusearch", "mcf")
        for proc in ("i7_45", "atom_45", "c2d_45", "c2q_65")
    ]
    with ThreadPoolExecutor(max_workers=8) as pool:
        sweep = list(
            pool.map(
                lambda pair: server.measure(pair[1], client=f"sweep-{pair[0]}"),
                enumerate(cells),
            )
        )
    check(
        all(s == 200 for s, _, _ in sweep),
        f"distinct sweep: {len(cells)}/{len(cells)} got 200",
    )

    # -- 3. one fault-armed plan reproduces fault-free bytes ------------------
    status, _, armed = server.measure(
        {"benchmark": "db", "processor": "atom_45", "inject": "ci"},
        client="faulty",
    )
    check(status == 200, "fault-armed (ci plan) request got 200")
    status, _, clean = server.measure(
        {"benchmark": "db", "processor": "atom_45"}, client="cleanly"
    )
    check(
        status == 200 and armed == clean,
        "fault-armed response is byte-identical to the fault-free one",
    )

    # -- 4. rate-limit hammer: one client, eight rapid requests ---------------
    hammer = [
        server.measure(burst_body, client="hammer") for _ in range(8)
    ]
    statuses = [s for s, _, _ in hammer]
    check(
        statuses.count(200) == 1 and statuses.count(429) == 7,
        f"rate limit split: 1x200 + 7x429 (got {statuses})",
    )
    check(
        all("Retry-After" in h for s, h, _ in hammer if s == 429),
        "every 429 carries Retry-After",
    )

    # -- 5. protocol errors ---------------------------------------------------
    check(server.request("GET", "/nope")[0] == 404, "unknown route is 404")
    check(
        server.measure({"benchmark": "bogus", "processor": "i7_45"}, "er")[0]
        == 400,
        "unknown benchmark is 400",
    )

    status, _, health = server.request("GET", "/healthz")
    health = json.loads(health)
    print(f"  health: {health}")
    # 5 benchmarks x 4 processors = 20 unique cells (the burst and the
    # fault-armed pair are among them), so the store holds exactly 20.
    check(health["store_records"] == 20, "store holds every measured cell")

    # -- 6. SLO report against the known status mix ---------------------------
    # POST /measure traffic so far: 20 burst + 20 sweep + 2 fault section
    # + 8 hammer + 1 unknown-benchmark = 51, none of them 5xx.
    status, _, body = server.request("GET", "/slo")
    check(status == 200, "GET /slo answers 200")
    slo = json.loads(body)
    check(
        slo["config"] == {"latency": {"p99": 120.0}, "availability": 0.99},
        "SLO config echoes the --slo spec",
    )
    measure_route = slo["routes"].get("/measure", {})
    check(
        measure_route.get("count") == 51,
        f"/measure latency histogram saw all 51 requests "
        f"(got {measure_route.get('count')})",
    )
    check(
        0 < measure_route.get("p50_s", 0) <= measure_route.get("p99_s", 0),
        "latency quantiles are positive and ordered (p50 <= p99)",
    )
    availability = slo["availability"]
    check(
        availability["errors"] == 0,
        f"no 5xx served, so zero SLO errors (429/400/404 are not errors; "
        f"got {availability['errors']})",
    )
    check(
        availability["observed"] == 1.0
        and availability["error_budget"]["consumed"] == 0.0
        and availability["error_budget"]["burn_rate"] == 0.0,
        "error budget untouched at 100% observed availability",
    )
    check(
        slo["ok"] is True and slo["violations"] == [],
        "no SLO violations under the generous targets",
    )
    check(
        {"admission", "schedule", "batch", "store"} <= set(slo["stages"]),
        f"per-stage latency covers the request pipeline "
        f"(got {sorted(slo['stages'])})",
    )

    # -- 7. request traces ----------------------------------------------------
    status, trace_headers, traced_body = server.measure(
        {"benchmark": "mcf", "processor": "i7_45"}, client="tracer"
    )
    check(
        status == 200 and traced_body == mcf_i7_record,
        "traced request still serves the byte-identical cached record",
    )
    request_id = header(trace_headers, "X-Request-Id")
    traceparent = header(trace_headers, "traceparent")
    check(bool(request_id), "measure response carries X-Request-Id")
    check(
        bool(traceparent) and bool(re.match(r"^00-[0-9a-f]{32}-[0-9a-f]{16}-01$", traceparent or "")),
        "measure response carries a well-formed traceparent",
    )
    status, _, body = server.request("GET", f"/trace/{request_id}")
    check(status == 200, "GET /trace/<request_id> answers 200")
    trace = json.loads(body)
    check(
        trace["orphans"] == [] and trace["root"] is not None,
        "span tree is single-rooted with zero orphan parent ids",
    )
    check(
        trace["root"]["name"] == "http.request"
        and trace["root"]["attributes"]["status"] == 200,
        "trace root is the http.request span with the served status",
    )
    span_names = {span["name"] for span in trace["spans"]}
    check(
        {"service.admission", "service.submit", "service.schedule"}
        <= span_names,
        f"trace covers the service pipeline (got {sorted(span_names)})",
    )
    status, _, body = server.request("GET", "/trace")
    check(
        status == 200 and request_id in json.loads(body)["request_ids"],
        "GET /trace lists the archived request id",
    )
    check(
        server.request("GET", "/trace/feedfacefeedface")[0] == 404,
        "unknown request id is 404",
    )

    # -- 8. clean drain -------------------------------------------------------
    code, stderr = server.terminate()
    check(code == 0, f"SIGTERM drain exits 0 (got {code})")
    check("drained:" in stderr, "final health report printed on drain")

    # -- 9. warm restart ------------------------------------------------------
    print("== second server: warm restart from the store ==")
    server = Server(store)
    print(f"  {server.banner}")
    check("warm-started" in server.banner, "restart reports warm start")
    status, _, health = server.request("GET", "/healthz")
    restored = json.loads(health)["restored"]
    check(restored == 20, f"restart restored every record (got {restored})")
    status, _, again = server.measure(burst_body, client="afterlife")
    check(
        status == 200 and again == mcf_i7_record,
        "restarted server serves byte-identical records from the store",
    )
    code, stderr = server.terminate()
    check(code == 0 and "drained:" in stderr, "second drain is clean too")

    if not args.keep_store:
        cleanup_stores(tmp)

    if FAILURES:
        print(f"\nsmoke FAILED: {len(FAILURES)} assertion(s):")
        for failure in FAILURES:
            print(f"  - {failure}")
        return 1
    print("\nsmoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
