"""Controlled feature analysis, §3 style.

Uses BIOS-style configuration to isolate one architectural feature at a
time on the Core i7 (45): chip multiprocessing, simultaneous
multithreading, clock scaling, and Turbo Boost — reporting each feature's
performance / power / energy effect averaged the paper's way (equal-weight
workload groups), plus the per-group energy panel.

Run:  python examples/feature_analysis.py
"""

from repro import Configuration, Study, processor
from repro.experiments.features import compare
from repro.workloads.benchmark import Group


def describe(effect) -> None:
    print(f"\n{effect.label}")
    print(f"  performance x{effect.performance:.2f}   "
          f"power x{effect.power:.2f}   energy x{effect.energy:.2f}")
    for group in Group:
        if group in effect.energy_by_group:
            print(f"    energy [{group.value:22s}] x{effect.energy_by_group[group]:.2f}")


def main() -> None:
    study = Study(invocation_scale=0.25)  # quick protocol for the demo
    i7 = processor("i7_45")

    def cfg(cores, threads, ghz, turbo=False):
        return Configuration(i7, cores, threads, ghz, turbo)

    print("Feature analysis on the Core i7 920 (Bloomfield, 45 nm)")
    print("=" * 60)

    describe(compare(study, cfg(2, 1, 2.66), cfg(1, 1, 2.66),
                     "CMP: 2 cores vs 1 (no SMT, no Turbo)"))
    describe(compare(study, cfg(1, 2, 2.66), cfg(1, 1, 2.66),
                     "SMT: 2 threads vs 1 on one core"))
    describe(compare(study, cfg(4, 2, 2.66), cfg(4, 2, 1.6),
                     "Clock: 2.66 GHz vs 1.6 GHz (stock parallelism)"))
    describe(compare(study, cfg(4, 2, 2.66, turbo=True), cfg(4, 2, 2.66),
                     "Turbo Boost: on vs off (stock parallelism)"))

    print(
        "\nReadings to compare with the paper: CMP costs energy on the i7 "
        "(Architecture Finding 1), SMT is nearly power-free (Finding 2), "
        "energy rises steeply with clock (Finding 3), and Turbo Boost is "
        "not energy efficient on this part (Finding 8)."
    )


if __name__ == "__main__":
    main()
