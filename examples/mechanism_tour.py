"""A guided tour of the mechanisms behind the paper's findings.

Uses the analysis layer to *show* why the headline results happen:
CPI stacks explain the microarchitecture gaps, power attribution explains
the workload power gaps, and the event counters explain the JVM-induced
speedup of single-threaded Java.

Run:  python examples/mechanism_tour.py
"""

from repro import Configuration, Study, benchmark, processor, stock
from repro.analysis.cpi_stacks import across_machines, render as render_cpi
from repro.analysis.power_attribution import attribute, render as render_power
from repro.hardware.catalog import PROCESSORS


def main() -> None:
    study = Study(invocation_scale=0.25)
    engine = study.engine
    i7 = processor("i7_45")

    print("1. Why is the i7 ~2.6x faster than the Pentium 4 per clock? (§3.5)")
    print("   CPI stacks for sjeng (branchy AI search):\n")
    print(render_cpi(across_machines(benchmark("sjeng"), PROCESSORS[:4])))
    print(
        "\n   NetBurst pays for its deep pipeline in branch refills and its"
        "\n   narrow effective issue; Nehalem overlaps most of the misses.\n"
    )

    print("2. Why does SPEC CPU draw so little power on the i7? (Finding W3)")
    print("   Power attribution, one SPEC code vs one PARSEC code:\n")
    attributions = {
        "omnetpp (1 thread)": attribute(engine.ideal(benchmark("omnetpp"), stock(i7))),
        "fluidanimate (8 threads)": attribute(
            engine.ideal(benchmark("fluidanimate"), stock(i7))
        ),
    }
    print(render_power(attributions))
    print(
        "\n   A single memory-bound thread leaves three cores idle and the"
        "\n   busy one half-stalled; the scalable code lights up everything.\n"
    )

    print("3. Why does single-threaded Java speed up on two cores? (Finding W1)")
    one = Configuration(i7, 1, 1, 2.66)
    two = Configuration(i7, 2, 1, 2.66)
    db = benchmark("db")
    ex_one = engine.ideal(db, one)
    ex_two = engine.ideal(db, two)
    print(f"   db on 1 core: {ex_one.seconds.value:6.2f}s, "
          f"DTLB misses {ex_one.events.dtlb_mpki:5.1f}/ki")
    print(f"   db on 2 cores: {ex_two.seconds.value:6.2f}s, "
          f"DTLB misses {ex_two.events.dtlb_mpki:5.1f}/ki")
    speedup = ex_one.seconds.value / ex_two.seconds.value
    reduction = ex_one.events.dtlb_misses / ex_two.events.dtlb_misses
    print(
        f"   -> {speedup:.2f}x faster: the collector moves to the second "
        f"core, and its\n      displacement of the application's TLB state "
        f"ends ({reduction:.1f}x fewer misses,\n      paper: 2.5x)."
    )


if __name__ == "__main__":
    main()
