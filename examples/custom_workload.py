"""Model your own application across the study's machines.

Uses the synthetic-workload builder to describe an application by
high-level traits (memory-boundness, branchiness, parallelism, managed
or native) and then runs the paper's methodology on it: measured time
and power on every stock machine, plus the energy-optimal 45 nm
configuration for it.

Run:  python examples/custom_workload.py
"""

from repro import Study, node_45nm_configurations, stock
from repro.core.pareto import TradeoffPoint, pareto_efficient
from repro.hardware.catalog import PROCESSORS
from repro.workloads.synthetic import synthetic

# Describe the application: a managed, fairly memory-bound service that
# scales well but not perfectly, with a working set that misses caches.
APP = synthetic(
    "order-matching-service",
    boundness=0.6,
    branchiness=0.5,
    parallelism=0.88,
    managed=True,
    service_fraction=0.10,
    reference_seconds=12.0,
)


def main() -> None:
    study = Study(invocation_scale=0.25)

    print(f"workload: {APP.name} ({APP.group.value})")
    print(f"  ilp={APP.character.ilp:.2f}  mpki={APP.character.memory_mpki:.1f}"
          f"  parallel={APP.character.parallel_fraction:.2f}\n")

    print(f"{'machine':16s} {'time':>8s} {'power':>8s} {'energy':>9s}")
    for spec in PROCESSORS:
        result = study.measure(APP, stock(spec))
        print(f"{spec.label:16s} {result.seconds:7.2f}s {result.watts:7.1f}W "
              f"{result.energy_joules:8.1f}J")

    points = []
    for config in node_45nm_configurations():
        result = study.measure(APP, config)
        points.append(
            TradeoffPoint(
                key=config.key,
                performance=result.speedup,
                energy=result.normalized_energy,
            )
        )
    frontier = pareto_efficient(points)
    print("\nPareto-efficient 45 nm configurations for this workload:")
    for point in frontier:
        print(f"  {point.key:26s} perf {point.performance:5.2f}  "
              f"energy {point.energy:5.3f}")


if __name__ == "__main__":
    main()
