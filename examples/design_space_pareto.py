"""Pareto-efficient design selection for a custom workload mix.

A downstream use of the library beyond the paper's own tables: you run a
server fleet whose load is mostly scalable Java (transaction processing
and search) with some single-threaded Java tooling.  Which 45 nm
processor configuration should you buy, and at which operating point?

Sweeps the study's 29-configuration 45 nm space for a *custom-weighted*
workload mix and reports the Pareto frontier of aggregate performance
versus normalised energy.

Run:  python examples/design_space_pareto.py
"""

from repro import Study, node_45nm_configurations
from repro.core.pareto import TradeoffPoint, fit_frontier, pareto_efficient
from repro.core.statistics import mean
from repro.workloads.catalog import benchmark

#: The fleet's mix: benchmark name -> weight in the aggregate.
WORKLOAD_MIX = {
    "pjbb2005": 0.30,   # transaction processing
    "lusearch": 0.25,   # text search
    "tomcat": 0.25,     # servlet serving
    "xalan": 0.10,      # XML transformation
    "luindex": 0.05,    # indexing (single-threaded)
    "javac": 0.05,      # build tooling (single-threaded)
}


def main() -> None:
    study = Study(invocation_scale=0.25)
    benchmarks = [benchmark(name) for name in WORKLOAD_MIX]

    points = []
    for config in node_45nm_configurations():
        results = study.run(
            (config,), benchmarks
        )
        speed = results.values("speedup")
        energy = results.values("normalized_energy")
        performance = sum(
            WORKLOAD_MIX[name] * speed[name] for name in WORKLOAD_MIX
        )
        joules = sum(
            WORKLOAD_MIX[name] * energy[name] for name in WORKLOAD_MIX
        )
        points.append(
            TradeoffPoint(key=config.key, performance=performance, energy=joules)
        )

    frontier = pareto_efficient(points)
    curve = fit_frontier(frontier)

    print("Pareto-efficient 45 nm configurations for the fleet mix")
    print("=" * 62)
    print(f"{'configuration':28s} {'performance':>12s} {'norm.energy':>12s}")
    for point in frontier:
        print(f"{point.key:28s} {point.performance:12.2f} {point.energy:12.3f}")

    dominated = len(points) - len(frontier)
    print(f"\n{dominated} of {len(points)} configurations are dominated.")
    mean_perf = mean([p.performance for p in frontier])
    print(
        f"frontier spans performance {curve.performance_range[0]:.2f}.."
        f"{curve.performance_range[1]:.2f} (mean {mean_perf:.2f}); "
        "pick the knee that meets your latency target."
    )


if __name__ == "__main__":
    main()
