"""Regenerate every paper artifact and export the dataset.

Runs all seventeen experiments (Tables 1-5, Figures 1-12) with the
paper's full measurement protocol, prints each as a text table, evaluates
the thirteen findings, and writes the per-run dataset for the eight stock
machines as CSV — the shape of the paper's ACM DL companion data.

Run:  python examples/regenerate_paper.py [output-dir]
"""

import sys
from pathlib import Path

from repro import Study, stock_configurations
from repro.experiments.findings import evaluate_all
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.reporting.tables import render_experiment


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("out")
    out.mkdir(parents=True, exist_ok=True)
    study = Study()

    report_lines = []
    for experiment_id in EXPERIMENTS:
        result = run_experiment(experiment_id, study)
        block = render_experiment(result)
        print(block)
        print()
        report_lines.append(block)

    findings = evaluate_all(study)
    print("== Findings ==")
    report_lines.append("== Findings ==")
    for finding in findings:
        line = (
            f"{finding.finding_id:3s} "
            f"{'HOLDS' if finding.holds else 'FAILS'}: {finding.statement}"
        )
        print(line)
        report_lines.append(line)

    (out / "report.txt").write_text("\n\n".join(report_lines) + "\n")

    dataset = study.run(stock_configurations())
    csv_path = dataset.to_csv(out / "stock_dataset.csv")
    print(f"\nwrote {csv_path} ({len(dataset)} rows) and {out / 'report.txt'}")


if __name__ == "__main__":
    main()
