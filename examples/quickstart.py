"""Quickstart: measure a benchmark the way the paper does.

Runs the DaCapo `xalan` benchmark on three generations of hardware —
the 2003 Pentium 4, the 2008 Core i7, and the 2010 Core i5 — through the
full measurement pipeline: execution engine, isolated 12 V rail,
calibrated Hall-effect sensor, 50 Hz logger, and the paper's
20-invocation Java protocol.

Run:  python examples/quickstart.py
"""

from repro import Study, benchmark, processor, stock


def main() -> None:
    study = Study()  # full paper protocol
    xalan = benchmark("xalan")
    print(f"benchmark: {xalan.name} — {xalan.description}")
    print(f"group:     {xalan.group.value}")
    print(f"reference: {xalan.reference_seconds:.1f} s (Table 1)\n")

    header = (
        f"{'processor':16s} {'time':>9s} {'power':>8s} {'energy':>9s} "
        f"{'speedup':>8s} {'norm.energy':>12s}"
    )
    print(header)
    print("-" * len(header))
    for key in ("pentium4_130", "i7_45", "i5_32"):
        spec = processor(key)
        result = study.measure(xalan, stock(spec))
        print(
            f"{spec.label:16s} {result.seconds:8.2f}s {result.watts:7.1f}W "
            f"{result.energy_joules:8.1f}J {result.speedup:8.2f} "
            f"{result.normalized_energy:12.3f}"
        )

    print(
        "\nspeedup is relative to the four-machine reference of §2.6; "
        "normalised energy relative to the reference energy."
    )
    print(
        "Each row is the mean of 20 JVM invocations (fifth-iteration "
        "steady state), power measured through a calibrated ACS714 "
        "sensor at 50 Hz."
    )


if __name__ == "__main__":
    main()
