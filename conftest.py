"""Repo-level pytest configuration.

Makes ``src/`` importable even when the package is not installed (the
offline environment lacks the ``wheel`` package PEP-517 editable installs
need; ``python setup.py develop`` works, but this shim keeps ``pytest``
self-sufficient either way).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
