"""Integration: per-benchmark behavioural contracts, all 61 benchmarks.

Each benchmark's signature must produce the behaviour its group promises
on real configurations — scalables scale, non-scalables don't, Java gains
from spare cores, power stays inside its machine's envelope.
"""

import pytest

from repro.hardware.catalog import CORE_I7_45
from repro.hardware.config import Configuration, stock
from repro.workloads.benchmark import Group
from repro.workloads.catalog import BENCHMARKS, by_group

_ONE = Configuration(CORE_I7_45, 1, 1, 2.66)
_TWO = Configuration(CORE_I7_45, 2, 1, 2.66)
_EIGHT = Configuration(CORE_I7_45, 4, 2, 2.66)


def _scaling(engine, bench) -> float:
    one = engine.ideal(bench, _ONE).seconds.value
    eight = engine.ideal(bench, _EIGHT).seconds.value
    return one / eight


@pytest.mark.parametrize(
    "bench", by_group(Group.NATIVE_SCALABLE), ids=lambda b: b.name
)
class TestEveryParsecBenchmark:
    def test_scales_on_eight_contexts(self, bench, engine):
        """§2.1: 'the PARSEC benchmarks scale up to 8 hardware contexts.'"""
        assert _scaling(engine, bench) > 2.0

    def test_uses_every_context(self, bench, engine):
        execution = engine.ideal(bench, _EIGHT)
        parallel = next(p for p in execution.phases if p.name == "parallel")
        assert parallel.busy_cores == pytest.approx(4.0)


@pytest.mark.parametrize(
    "bench", by_group(Group.JAVA_SCALABLE), ids=lambda b: b.name
)
class TestEveryJavaScalableBenchmark:
    def test_scales_like_parsec(self, bench, engine):
        """§2.1: selected 'because their performance scales similarly to
        Native Scalable on the i7 (45)'."""
        assert _scaling(engine, bench) > 1.9


@pytest.mark.parametrize(
    "bench",
    [b for b in by_group(Group.NATIVE_NONSCALABLE)],
    ids=lambda b: b.name,
)
class TestEverySpecCpuBenchmark:
    def test_never_gains_from_parallel_hardware(self, bench, engine):
        """§3.1: 'Native single-threaded workloads never experience
        performance ... improvements from CMPs or SMT.'"""
        assert _scaling(engine, bench) == pytest.approx(1.0, abs=0.01)

    def test_power_rises_with_enabled_cores(self, bench, engine):
        one = engine.ideal(bench, _ONE).average_power.value
        eight = engine.ideal(bench, _EIGHT.without_turbo()).average_power.value
        assert eight > one


@pytest.mark.parametrize(
    "bench",
    [b for b in by_group(Group.JAVA_NONSCALABLE) if not b.multithreaded],
    ids=lambda b: b.name,
)
class TestEverySingleThreadedJavaBenchmark:
    def test_second_core_never_hurts(self, bench, engine):
        one = engine.ideal(bench, _ONE).seconds.value
        two = engine.ideal(bench, _TWO).seconds.value
        assert one / two > 0.995

    def test_gain_bounded_by_service_plus_displacement(self, bench, engine):
        """The CMP gain cannot exceed what the mechanism supplies."""
        gain = engine.ideal(bench, _ONE).seconds.value / engine.ideal(
            bench, _TWO
        ).seconds.value
        ceiling = (1.0 + bench.jvm.service_fraction) * (
            bench.jvm.displacement_mpki_factor
        )
        assert gain < ceiling + 0.02


@pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
class TestEveryBenchmarkEnvelope:
    def test_power_within_machine_envelope_on_i7(self, bench, engine):
        """Every benchmark's stock-i7 power lands inside the paper's
        measured 23-90 W envelope, below TDP."""
        execution = engine.ideal(bench, stock(CORE_I7_45))
        watts = execution.average_power.value
        assert 20.0 < watts < 95.0
        assert watts < CORE_I7_45.tdp_w

    def test_events_self_consistent(self, bench, engine):
        events = engine.ideal(bench, stock(CORE_I7_45)).events
        assert 0.0 < events.ipc < 4.0
        assert events.llc_mpki < 60.0
        assert events.dtlb_mpki >= 0.0
