"""Integration tests for the crash-restartable coordinator (PR 8).

Three layers of the exactly-once contract are exercised here:

* **Over HTTP, in process** — the write-ahead journal's lifecycle as
  seen by clients: idempotent replays served from the store with zero
  engine work, key-reuse conflicts, deadline shedding with 504s, and
  malformed-request 400s (one test per malformed shape, since every
  shape is a distinct way to corrupt a client's dataset if accepted).
* **Recovery replay, in process** — a store holding pending journal
  entries (what a crashed coordinator leaves behind) is drained by a
  ``recover=True`` server to the byte-identical records a sequential
  study produces; unresolvable entries fail loudly instead of
  crash-looping.
* **The kill matrix, across processes** — a real ``repro serve``
  subprocess armed with a ``coordinator.crash`` plan dies mid-request
  (exit 86); a ``--recover`` restart on the same store answers the
  retried idempotent request with the golden bytes.  One cell (the
  ``batch`` phase) runs in tier-1; the full phase x worker-death matrix
  is gated behind ``REPRO_COORD_MATRIX=1`` for the CI chaos job.
"""

import asyncio
import errno
import json
import os
import re
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.study import Study
from repro.faults.injector import COORDINATOR_CRASH_EXIT_CODE
from repro.faults.plan import COORDINATOR_PHASES
from repro.hardware.catalog import CORE_I7_45
from repro.hardware.config import stock
from repro.obs.metrics import default_registry
from repro.service.server import BIND_ATTEMPTS, CampaignServer
from repro.service.store import ResultStore
from repro.workloads.catalog import benchmark

from tests.integration.test_service import _LiveServer  # noqa: the harness

MCF = benchmark("mcf")
I7 = stock(CORE_I7_45)
MEASURE_MCF_I7 = {"benchmark": "mcf", "processor": "i7_45"}


def _quick_study(references, **kwargs) -> Study:
    return Study(references=references, invocation_scale=0.2, **kwargs)


def _cache_misses() -> float:
    return default_registry().get("repro_study_cache_misses_total").value


def _golden_record(references) -> bytes:
    """The byte-identity reference: a sequential quick-study record."""
    result = _quick_study(references).measure(MCF, I7)
    return json.dumps(result.as_record()).encode("utf-8")


def _raw_post(port: int, body: bytes, headers: dict | None = None):
    """POST raw bytes (for shapes json.dumps cannot produce)."""
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/measure",
        data=body,
        headers=headers or {},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


class TestMalformedRequests:
    """Satellite 1: every malformed POST /measure shape gets a
    structured 400 naming the offence — never a 500, never silently
    measuring the wrong thing."""

    @pytest.fixture()
    def live(self, references):
        with _LiveServer(CampaignServer(study=_quick_study(references))) as live:
            yield live

    def _assert_structured_400(self, outcome, needle: str):
        status, _, body = outcome
        assert status == 400
        payload = json.loads(body)
        assert needle in payload["error"]

    def test_invalid_json_body(self, live):
        outcome = _raw_post(live.server.port, b"{not json")
        self._assert_structured_400(outcome, "not valid JSON")

    def test_non_utf8_body(self, live):
        outcome = _raw_post(live.server.port, b"\xff\xfe\x00bogus")
        self._assert_structured_400(outcome, "not valid JSON")

    def test_non_object_body(self, live):
        outcome = _raw_post(live.server.port, b"[1, 2, 3]")
        self._assert_structured_400(outcome, "JSON object")

    def test_unknown_field(self, live):
        outcome = live.measure({**MEASURE_MCF_I7, "proccessor": "typo"})
        self._assert_structured_400(outcome, "unknown field(s) 'proccessor'")
        # The rejection teaches the accepted schema.
        assert "benchmark" in json.loads(outcome[2])["error"]

    def test_missing_benchmark(self, live):
        outcome = live.measure({"processor": "i7_45"})
        self._assert_structured_400(outcome, "benchmark")

    def test_empty_idempotency_key(self, live):
        outcome = live.measure(MEASURE_MCF_I7, {"Idempotency-Key": "   "})
        self._assert_structured_400(outcome, "Idempotency-Key")

    def test_oversize_idempotency_key(self, live):
        outcome = live.measure(MEASURE_MCF_I7, {"Idempotency-Key": "k" * 200})
        self._assert_structured_400(outcome, "128")

    @pytest.mark.parametrize("raw", ["soon", "-5", "0", "inf", "nan"])
    def test_bad_deadline_header(self, live, raw):
        outcome = live.measure(MEASURE_MCF_I7, {"X-Deadline-Ms": raw})
        self._assert_structured_400(outcome, "X-Deadline-Ms")


class TestIdempotencyOverHttp:
    def test_idempotent_retry_replays_from_store(self, references):
        """The same Idempotency-Key twice: one engine execution, the
        retry served from the durable store, bytes identical."""
        with _LiveServer(CampaignServer(study=_quick_study(references))) as live:
            misses_before = _cache_misses()
            headers = {"Idempotency-Key": "retry-me"}
            first = live.measure(MEASURE_MCF_I7, headers)
            second = live.measure(MEASURE_MCF_I7, headers)
            health = json.loads(live.request("GET", "/healthz")[2])
        misses = _cache_misses() - misses_before
        assert first[0] == 200 and second[0] == 200
        assert second[2] == first[2] == _golden_record(references)
        assert second[1].get("Idempotent-Replay") == "true"
        assert misses == 1
        assert health["journal"]["done"] == 1
        assert health["journal"]["pending"] == 0

    def test_key_reuse_for_different_request_conflicts(self, references):
        with _LiveServer(CampaignServer(study=_quick_study(references))) as live:
            headers = {"Idempotency-Key": "one-key"}
            first = live.measure(MEASURE_MCF_I7, headers)
            other = live.measure(
                {"benchmark": "db", "processor": "atom_45"}, headers
            )
        assert first[0] == 200
        assert other[0] == 409
        assert "one-key" in json.loads(other[2])["error"]


class TestDeadlineShedding:
    def test_expired_deadline_is_shed_with_504(self, references):
        """A microscopic budget is dead on arrival: 504, counted in
        repro_requests_shed_total, journalled as shed — never silent."""
        with _LiveServer(CampaignServer(study=_quick_study(references))) as live:
            outcome = live.measure(
                MEASURE_MCF_I7,
                {"X-Deadline-Ms": "0.000001", "Idempotency-Key": "doomed"},
            )
            health = json.loads(live.request("GET", "/healthz")[2])
            entry = live.server.store.journal_entry("doomed")
        assert outcome[0] == 504
        assert health["shed"] >= 1
        assert entry is not None and entry.status == "shed"
        shed_metric = default_registry().get("repro_requests_shed_total")
        assert shed_metric.labels(stage="admit").value >= 1

    def test_generous_deadline_serves_normally(self, references):
        with _LiveServer(CampaignServer(study=_quick_study(references))) as live:
            outcome = live.measure(MEASURE_MCF_I7, {"X-Deadline-Ms": "60000"})
        assert outcome[0] == 200
        assert outcome[2] == _golden_record(references)

    def test_shed_requests_are_visible_in_slo_report(self, references):
        with _LiveServer(CampaignServer(study=_quick_study(references))) as live:
            live.measure(MEASURE_MCF_I7, {"X-Deadline-Ms": "0.000001"})
            slo = json.loads(live.request("GET", "/slo")[2])
        assert slo["shed"]["total"] >= 1
        assert slo["shed"]["stages"].get("admit", 0) >= 1
        assert slo["shed"]["responses_504"] >= 1
        # Sheds are deliberate refusal, not unavailability: the 504 does
        # not burn the error budget.
        assert slo["availability"]["errors"] == 0


class TestRecoveryReplay:
    def test_recover_completes_pending_entries_byte_identically(
        self, references, tmp_path
    ):
        """The tentpole: a store holding what a crashed coordinator
        leaves behind (journalled-pending, no result row) is drained by
        --recover to the byte-identical sequential record."""
        path = tmp_path / "crashed.sqlite"
        with ResultStore(path) as store:
            assert store.journal_admit("lost-req", MCF.name, I7.key) == "new"

        misses_before = _cache_misses()
        server = CampaignServer(
            study=_quick_study(references), store=path, recover=True
        )
        with _LiveServer(server) as live:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                health = json.loads(live.request("GET", "/healthz")[2])
                settled = (
                    health["recovery"]["completed"]
                    + health["recovery"]["failed"]
                ) == health["recovery"]["replayed"]
                if health["journal"]["pending"] == 0 and settled:
                    break
                time.sleep(0.05)
            assert health["journal"]["pending"] == 0
            assert health["journal"]["done"] == 1
            assert health["recovery"] == {
                "replayed": 1,
                "completed": 1,
                "failed": 0,
            }
            # A client retrying the lost request is answered from the
            # recovered store, not by a second execution.
            outcome = live.measure(
                MEASURE_MCF_I7, {"Idempotency-Key": "lost-req"}
            )
        misses = _cache_misses() - misses_before
        assert outcome[0] == 200
        assert outcome[2] == _golden_record(references)
        assert misses == 1  # the replay measured exactly once

    def test_unresolvable_entry_fails_loudly_not_fatally(
        self, references, tmp_path
    ):
        path = tmp_path / "stale.sqlite"
        with ResultStore(path) as store:
            store.journal_admit("stale-req", MCF.name, "no-such-config")

        server = CampaignServer(
            study=_quick_study(references), store=path, recover=True
        )
        with _LiveServer(server) as live:
            health = json.loads(live.request("GET", "/healthz")[2])
            entry = live.server.store.journal_entry("stale-req")
            # The server still serves fresh traffic.
            outcome = live.measure(MEASURE_MCF_I7)
        assert health["recovery"]["failed"] == 1
        assert health["recovery"]["replayed"] == 0
        assert entry.status == "failed"
        assert "unresolvable" in entry.detail
        assert outcome[0] == 200

    def test_recovery_without_pending_entries_is_a_noop(
        self, references, tmp_path
    ):
        path = tmp_path / "clean.sqlite"
        server = CampaignServer(
            study=_quick_study(references), store=path, recover=True
        )
        with _LiveServer(server) as live:
            health = json.loads(live.request("GET", "/healthz")[2])
        assert health["recovery"] == {
            "replayed": 0,
            "completed": 0,
            "failed": 0,
        }


class TestDrainLeavesJournal:
    def test_expired_drain_leaves_journal_for_byte_identical_recovery(
        self, references, tmp_path
    ):
        """Satellite 4: a drain that expires mid-batch cancels the work
        but leaves the journal entry pending; a --recover restart on the
        same store completes it byte-identically."""
        path = tmp_path / "drained.sqlite"
        release = threading.Event()

        server = CampaignServer(
            study=_quick_study(references), store=path, drain_timeout=0.3
        )
        with _LiveServer(server) as live:
            real_measure = server.scheduler._measure_batch

            def hung_measure(plan, pairs, schedule_spans=None, batch_keys=None):
                release.wait(timeout=60)  # wedged until the test lets go
                return {}

            server.scheduler._measure_batch = hung_measure
            client = threading.Thread(
                target=live.measure,
                args=(MEASURE_MCF_I7, {"Idempotency-Key": "mid-batch"}),
                daemon=True,
            )
            client.start()
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                entry = server.store.journal_entry("mid-batch")
                if entry is not None:
                    break
                time.sleep(0.02)
            assert entry is not None and entry.status == "pending"
            summary = live.shutdown()  # 0.3s drain expires mid-batch
            release.set()
            client.join(timeout=30)
            server.scheduler._measure_batch = real_measure
        assert summary["journal_pending"] == 1

        recovered = CampaignServer(
            study=_quick_study(references), store=path, recover=True
        )
        with _LiveServer(recovered) as live:
            outcome = live.measure(
                MEASURE_MCF_I7, {"Idempotency-Key": "mid-batch"}
            )
            health = json.loads(live.request("GET", "/healthz")[2])
        assert outcome[0] == 200
        assert outcome[2] == _golden_record(references)
        assert health["journal"]["pending"] == 0
        assert health["journal"]["done"] == 1


class TestBindRetry:
    """Satellite 2: EADDRINUSE on bind retries with bounded backoff."""

    def test_bind_retries_through_transient_address_in_use(
        self, references, monkeypatch
    ):
        monkeypatch.setattr("repro.service.server.BIND_BACKOFF_S", 0.001)
        real_start_server = asyncio.start_server
        attempts = []

        async def flaky_start_server(*args, **kwargs):
            attempts.append(1)
            if len(attempts) <= 2:
                raise OSError(errno.EADDRINUSE, "address already in use")
            return await real_start_server(*args, **kwargs)

        monkeypatch.setattr(asyncio, "start_server", flaky_start_server)
        server = CampaignServer(study=_quick_study(references))

        async def main():
            await server.start()
            port = server.port
            await server.shutdown()
            return port

        port = asyncio.run(main())
        assert len(attempts) == 3
        assert port > 0

    def test_bind_gives_up_after_bounded_attempts(
        self, references, monkeypatch
    ):
        monkeypatch.setattr("repro.service.server.BIND_BACKOFF_S", 0.001)
        attempts = []

        async def dead_start_server(*args, **kwargs):
            attempts.append(1)
            raise OSError(errno.EADDRINUSE, "address already in use")

        monkeypatch.setattr(asyncio, "start_server", dead_start_server)
        server = CampaignServer(study=_quick_study(references))
        with pytest.raises(OSError, match="address already in use"):
            asyncio.run(server.start())
        assert len(attempts) == BIND_ATTEMPTS

    def test_non_addrinuse_bind_errors_fail_fast(self, references, monkeypatch):
        attempts = []

        async def denied_start_server(*args, **kwargs):
            attempts.append(1)
            raise OSError(errno.EACCES, "permission denied")

        monkeypatch.setattr(asyncio, "start_server", denied_start_server)
        server = CampaignServer(study=_quick_study(references))
        with pytest.raises(OSError, match="permission denied"):
            asyncio.run(server.start())
        assert len(attempts) == 1


# -- the kill matrix: real processes, real SIGKILL-equivalent crashes ---------


def _write_crash_plan(path, phase: str, extra_faults=()) -> None:
    path.write_text(
        json.dumps(
            {
                "seed": "kill-matrix",
                "faults": [
                    {
                        "kind": "coordinator.crash",
                        "probability": 1.0,
                        "scope": f"coordinator/{phase}/*",
                    },
                    *extra_faults,
                ],
            }
        )
    )


class _ServeProcess:
    """One `repro serve` subprocess bound to an ephemeral port.

    ``pre_args`` land before the ``serve`` subcommand (global flags like
    ``--supervised``); ``serve_args`` after it (``--inject``,
    ``--recover``)."""

    def __init__(self, store, serve_args=(), pre_args=()):
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "--quick", *pre_args,
                "serve", "--port", "0", "--store", str(store), *serve_args,
            ],
            stderr=subprocess.PIPE,
            text=True,
        )
        banner = self.proc.stderr.readline().strip()
        match = re.search(r"http://[\d.]+:(\d+)", banner)
        if match is None:
            self.proc.kill()
            raise RuntimeError(f"no serving banner, got: {banner!r}")
        self.port = int(match.group(1))
        self.banner = banner

    def measure(self, body: dict, headers: dict | None = None):
        return _raw_post(self.port, json.dumps(body).encode(), headers)

    def stop(self) -> int:
        if self.proc.poll() is None:
            self.proc.terminate()
        try:
            return self.proc.wait(timeout=60)
        finally:
            self.proc.stderr.close()


def _kill_and_recover_cell(tmp_path, references, phase, pre_args=(),
                           extra_faults=()):
    """One matrix cell: crash a serving coordinator at `phase`, restart
    with --recover, and assert the retried idempotent request produces
    the golden bytes with nothing lost or duplicated."""
    plan_path = tmp_path / f"crash-{phase}.json"
    _write_crash_plan(plan_path, phase, extra_faults)
    store = tmp_path / f"campaign-{phase}.sqlite"

    doomed = _ServeProcess(
        store, serve_args=("--inject", str(plan_path)), pre_args=pre_args
    )
    try:
        try:
            doomed.measure(MEASURE_MCF_I7, {"Idempotency-Key": "kill-cell"})
        except (urllib.error.URLError, ConnectionError, OSError):
            pass  # the coordinator died mid-request, as planned
        code = doomed.proc.wait(timeout=120)
    finally:
        doomed.stop()
    assert code == COORDINATOR_CRASH_EXIT_CODE, (
        f"phase {phase}: expected injected crash exit "
        f"{COORDINATOR_CRASH_EXIT_CODE}, got {code}"
    )

    recovered = _ServeProcess(store, serve_args=("--recover",),
                              pre_args=pre_args)
    try:
        status, _, body = recovered.measure(
            MEASURE_MCF_I7, {"Idempotency-Key": "kill-cell"}
        )
        assert status == 200
        assert body == _golden_record(references)
        health = json.loads(
            urllib.request.urlopen(
                f"http://127.0.0.1:{recovered.port}/healthz", timeout=60
            ).read()
        )
        assert health["journal"]["pending"] == 0
        assert health["journal"]["done"] >= 1
        assert health["store_records"] == 1  # exactly-once effects
    finally:
        assert recovered.stop() == 0


class TestCoordinatorKillMatrix:
    def test_kill_at_batch_then_recover(self, references, tmp_path):
        """Tier-1 cell: the canonical mid-batch crash."""
        _kill_and_recover_cell(tmp_path, references, "batch")

    @pytest.mark.skipif(
        not os.environ.get("REPRO_COORD_MATRIX"),
        reason="full kill matrix runs in the CI coordinator-chaos job "
        "(REPRO_COORD_MATRIX=1)",
    )
    @pytest.mark.parametrize("phase", [p for p in COORDINATOR_PHASES if p != "batch"])
    def test_kill_at_every_phase_then_recover(
        self, references, tmp_path, phase
    ):
        _kill_and_recover_cell(tmp_path, references, phase)

    @pytest.mark.skipif(
        not os.environ.get("REPRO_COORD_MATRIX"),
        reason="full kill matrix runs in the CI coordinator-chaos job "
        "(REPRO_COORD_MATRIX=1)",
    )
    @pytest.mark.parametrize(
        "worker_scope", ["fleet/0/0", "fleet/*/0"],
        ids=["one-worker-death", "all-first-assignees-die"],
    )
    def test_kill_at_store_with_worker_deaths(
        self, references, tmp_path, worker_scope
    ):
        """Compound chaos: workers crash mid-measurement (the supervised
        fleet requeues them), then the coordinator dies at the store
        phase — recovery still lands the golden bytes exactly once."""
        _kill_and_recover_cell(
            tmp_path,
            references,
            "store",
            pre_args=(
                "--supervised", "--jobs", "2",
                "--heartbeat-interval", "0.1", "--liveness-misses", "3",
            ),
            extra_faults=(
                {
                    "kind": "worker.crash",
                    "probability": 1.0,
                    "scope": worker_scope,
                },
            ),
        )
