"""Integration: the end-to-end study pipeline (dataset, CIs, export)."""

import pytest

from repro.core.results import from_csv
from repro.core.study import Study
from repro.experiments import paper_data
from repro.experiments.table2_confidence import run as run_table2
from repro.hardware.catalog import ATOM_45, CORE_I7_45
from repro.hardware.config import stock
from repro.hardware.configurations import stock_configurations
from repro.workloads.catalog import benchmark, by_group
from repro.workloads.benchmark import Group


class TestTable2ConfidenceIntervals:
    def test_time_cis_small(self, full_study):
        """Table 2: aggregate relative CIs around 1-2%."""
        result = run_table2(full_study, configurations=[stock(ATOM_45)])
        average = result.row_for("group", "Average")
        assert float(average["time_avg"]) < 0.02
        assert float(average["power_avg"]) < 0.03

    def test_java_noisier_than_native(self, full_study):
        result = run_table2(full_study, configurations=[stock(ATOM_45)])
        native = result.row_for("group", Group.NATIVE_NONSCALABLE.value)
        java = result.row_for("group", Group.JAVA_NONSCALABLE.value)
        assert float(java["time_avg"]) > float(native["time_avg"])

    def test_paper_columns_present(self, full_study):
        result = run_table2(full_study, configurations=[stock(ATOM_45)])
        average = result.row_for("group", "Average")
        assert average["paper_time_avg"] == paper_data.TABLE2_CI["time_average"]


class TestDatasetExport:
    def test_csv_round_trip_full_config(self, study, tmp_path):
        results = study.run_config(stock(ATOM_45))
        path = results.to_csv(tmp_path / "atom.csv")
        records = from_csv(path)
        assert len(records) == 61
        by_name = {r["benchmark"]: r for r in records}
        assert float(by_name["db"]["watts"]) > 0
        assert by_name["db"]["processor"] == "atom_45"

    def test_stock_sweep_covers_all(self, study):
        results = study.run(stock_configurations(), by_group(Group.JAVA_SCALABLE))
        assert len(results) == 8 * 5


class TestReproducibility:
    def test_identical_studies_identical_datasets(self, references):
        a = Study(references=references, invocation_scale=0.2)
        b = Study(references=references, invocation_scale=0.2)
        config = stock(CORE_I7_45)
        for name in ("db", "mcf", "xalan"):
            ra = a.measure(benchmark(name), config)
            rb = b.measure(benchmark(name), config)
            assert ra.seconds == rb.seconds
            assert ra.watts == rb.watts
            assert ra.normalized_energy == rb.normalized_energy

    def test_speedup_and_energy_consistent(self, study):
        result = study.measure(benchmark("db"), stock(CORE_I7_45))
        assert result.speedup == pytest.approx(
            benchmark("db").reference_seconds / result.seconds
        )
        assert result.energy_joules == pytest.approx(result.seconds * result.watts)
