"""Integration: the entire 45-configuration x 61-benchmark space at once.

Exhaustively executes every cell of the study (noise-free engine runs)
and asserts the global invariants no single experiment covers end to
end: the Fig. 2 TDP envelope, physical sanity, and cross-configuration
consistency on every machine.
"""

import pytest

from repro.hardware.configurations import all_configurations
from repro.workloads.catalog import BENCHMARKS


@pytest.fixture(scope="module")
def sweep(engine):
    """Every (configuration, benchmark) cell: 45 x 61 executions."""
    cells = {}
    for config in all_configurations():
        for bench in BENCHMARKS:
            cells[(config.key, bench.name)] = engine.ideal(bench, config)
    return cells


class TestFullSpace:
    def test_every_cell_executes(self, sweep):
        assert len(sweep) == 45 * 61

    def test_power_below_tdp_everywhere(self, sweep, engine):
        """Fig. 2's envelope holds across the whole configuration space,
        not just stock settings."""
        from repro.hardware.configurations import all_configurations

        tdp = {c.key: c.spec.tdp_w for c in all_configurations()}
        for (config_key, bench_name), execution in sweep.items():
            assert execution.average_power.value < tdp[config_key], (
                config_key,
                bench_name,
            )

    def test_power_floor_everywhere(self, sweep):
        """No cell reports implausibly low package power."""
        for key, execution in sweep.items():
            assert execution.average_power.value > 0.5, key

    def test_times_positive_and_finite(self, sweep):
        for key, execution in sweep.items():
            assert 0.0 < execution.seconds.value < 1e6, key

    def test_stock_is_fastest_for_native_workloads(self, sweep):
        """For native code, no BIOS-degraded configuration beats stock
        (fewer resources, lower clocks, no boost).  Java is exempt: the
        model reproduces the paper's counter-examples — disabling SMT on
        the Pentium 4 genuinely speeds up Java (Workload Finding 2), and
        sibling-hosted services leave a core idle for the deeper turbo
        step."""
        from repro.hardware.configurations import (
            all_configurations,
            stock_configurations,
        )

        stock_keys = {c.spec.key: c.key for c in stock_configurations()}
        for config in all_configurations():
            stock_key = stock_keys[config.spec.key]
            for bench in BENCHMARKS:
                if bench.managed:
                    continue
                degraded = sweep[(config.key, bench.name)].seconds.value
                best = sweep[(stock_key, bench.name)].seconds.value
                assert degraded >= best * 0.999, (config.key, bench.name)

    def test_java_beats_stock_only_via_known_mechanisms(self, sweep):
        """Where a degraded configuration does beat stock for Java, the
        win is modest and the machine has SMT (the two mechanisms above
        both require it)."""
        from repro.hardware.configurations import (
            all_configurations,
            stock_configurations,
        )

        stock_keys = {c.spec.key: c.key for c in stock_configurations()}
        for config in all_configurations():
            stock_key = stock_keys[config.spec.key]
            for bench in BENCHMARKS:
                if not bench.managed:
                    continue
                degraded = sweep[(config.key, bench.name)].seconds.value
                best = sweep[(stock_key, bench.name)].seconds.value
                if degraded < best * 0.999:
                    assert config.spec.has_smt, (config.key, bench.name)
                    assert degraded > best * 0.80, (config.key, bench.name)

    def test_ipc_within_issue_width_everywhere(self, sweep, engine):
        from repro.hardware.configurations import all_configurations

        width = {c.key: c.spec.family.issue_width for c in all_configurations()}
        for (config_key, bench_name), execution in sweep.items():
            assert execution.events.ipc < width[config_key], (
                config_key,
                bench_name,
            )
