"""Integration: Table 4's reproduced aggregates track the paper's.

Tests assert *shape*: group-weighted averages within tolerance bands,
orderings preserved, and the headline per-group contrasts (the i7's
NN-versus-scalable power gap, the Atom's uniform frugality).
"""

import pytest

from repro.core.aggregation import full_aggregate
from repro.experiments import paper_data
from repro.experiments.registry import run_experiment
from repro.hardware.catalog import PROCESSORS
from repro.hardware.config import stock
from repro.workloads.benchmark import Group
from repro.workloads.catalog import BENCHMARKS

#: Tolerance on group-weighted averages relative to the paper's values.
SPEEDUP_TOLERANCE = 0.12
POWER_TOLERANCE = 0.15


@pytest.mark.parametrize("spec", PROCESSORS, ids=lambda s: s.key)
class TestAvgW:
    def test_speedup_within_band(self, spec, study):
        results = study.run_config(stock(spec))
        measured = full_aggregate(results.values("speedup"), BENCHMARKS)["Avg_w"]
        paper = paper_data.TABLE4_SPEEDUP[spec.key]["Avg_w"]
        assert measured == pytest.approx(paper, rel=SPEEDUP_TOLERANCE)

    def test_power_within_band(self, spec, study):
        results = study.run_config(stock(spec))
        measured = full_aggregate(results.values("watts"), BENCHMARKS)["Avg_w"]
        paper = paper_data.TABLE4_POWER[spec.key]["Avg_w"]
        assert measured == pytest.approx(paper, rel=POWER_TOLERANCE)


@pytest.mark.parametrize("spec", PROCESSORS, ids=lambda s: s.key)
class TestGroupColumns:
    def test_each_group_speedup_within_band(self, spec, study):
        results = study.run_config(stock(spec))
        measured = full_aggregate(results.values("speedup"), BENCHMARKS)
        paper = paper_data.TABLE4_SPEEDUP[spec.key]
        for group in Group:
            assert measured[group.value] == pytest.approx(
                paper[group], rel=0.18
            ), group

    def test_each_group_power_within_band(self, spec, study):
        results = study.run_config(stock(spec))
        measured = full_aggregate(results.values("watts"), BENCHMARKS)
        paper = paper_data.TABLE4_POWER[spec.key]
        for group in Group:
            assert measured[group.value] == pytest.approx(
                paper[group], rel=0.22
            ), group


class TestOrderings:
    def test_speedup_ranking_matches_paper(self, study):
        rows = run_experiment("table4", study).rows
        for row in rows:
            assert row["speedup:rank"] == row["speedup:paper_rank"], row["key"]

    def test_power_ranking_close_to_paper(self, study):
        """Power ranks may swap adjacent machines; never by more than one
        position."""
        rows = run_experiment("table4", study).rows
        for row in rows:
            assert abs(int(row["power:rank"]) - int(row["power:paper_rank"])) <= 1

    def test_atoms_most_frugal(self, study):
        rows = {str(r["key"]): r for r in run_experiment("table4", study).rows}
        atom_power = float(rows["atom_45"]["power:Avg_w"])
        assert all(
            float(r["power:Avg_w"]) >= atom_power for r in rows.values()
        )

    def test_i7_fastest(self, study):
        rows = {str(r["key"]): r for r in run_experiment("table4", study).rows}
        i7 = float(rows["i7_45"]["speedup:Avg_w"])
        assert all(float(r["speedup:Avg_w"]) <= i7 for r in rows.values())


class TestHeadlineContrasts:
    def test_i7_spec_cpu_power_outlier(self, study):
        """Workload Finding (abstract): SPEC CPU draws far less power than
        scalable workloads on the i7 — the paper's 27 W vs 60 W."""
        results = study.run_config(stock(PROCESSORS[3]))  # i7
        from repro.core.aggregation import group_means

        watts = group_means(results.values("watts"), BENCHMARKS)
        assert watts[Group.NATIVE_SCALABLE] > 1.6 * watts[Group.NATIVE_NONSCALABLE]

    def test_atom_power_nearly_flat_across_groups(self, study):
        results = study.run_config(stock(PROCESSORS[4]))  # atom
        from repro.core.aggregation import group_means

        watts = group_means(results.values("watts"), BENCHMARKS)
        assert max(watts.values()) < 1.5 * min(watts.values())

    def test_avg_b_below_avg_w_for_parallel_machines(self, study):
        """Equal group weighting boosts scalable groups on many-context
        machines: Avg_w > Avg_b on the i7, as in the paper (4.46 vs 3.84)."""
        results = study.run_config(stock(PROCESSORS[3]))
        aggregate = full_aggregate(results.values("speedup"), BENCHMARKS)
        assert aggregate["Avg_w"] > aggregate["Avg_b"]
