"""Acceptance tests for the parallel sweep executor.

The contract under test is the strongest one the design permits: a
``Study.run`` sharded across a process pool must be **byte-identical** to
the in-process sweep — same :class:`~repro.core.results.RunResult`
records, same :class:`~repro.core.results.CampaignHealth` (including the
failure-dict insertion order), same checkpoint bytes — at any worker
count, with or without an armed fault plan.  Every test here compares a
parallel run against a freshly measured sequential baseline rather than
against goldens, so a determinism regression in either path shows up as
a divergence between the two.
"""

import pytest

from repro.core.study import Study
from repro.faults.injector import injected
from repro.faults.plan import FaultPlan, demo_plan, fail_stop_plan
from repro.faults.retry import RetryPolicy
from repro.hardware.catalog import ATOM_45, CORE_I7_45
from repro.hardware.config import stock
from repro.workloads.catalog import benchmark

CLEAN = FaultPlan()

CONFIGS = (stock(CORE_I7_45), stock(ATOM_45))
BENCHES = tuple(
    benchmark(name) for name in ("mcf", "db", "eclipse", "lusearch")
)

#: Worker counts the equivalence matrix exercises.  ``jobs=1`` still goes
#: through the full dispatch/merge machinery (one worker process), so it
#: checks the protocol itself rather than degenerate to the sequential
#: path; 2 and 4 add real interleaving and out-of-order chunk completion.
WORKER_COUNTS = (1, 2, 4)


def _records(results):
    return [result.as_record() for result in results]


def _sweep(references, checkpoint, jobs=None, retry=None):
    study = Study(
        references=references,
        invocation_scale=0.2,
        retry=retry,
        checkpoint_path=checkpoint,
    )
    return study.run(CONFIGS, BENCHES, jobs=jobs)


class TestCleanEquivalence:
    @pytest.fixture(scope="class")
    def baseline(self, references, tmp_path_factory):
        checkpoint = tmp_path_factory.mktemp("seq") / "campaign.jsonl"
        with injected(CLEAN):
            results = _sweep(references, checkpoint)
        return _records(results), results.health, checkpoint.read_bytes()

    @pytest.mark.parametrize("jobs", WORKER_COUNTS)
    def test_parallel_sweep_is_byte_identical(
        self, references, tmp_path, baseline, jobs
    ):
        seq_records, seq_health, seq_checkpoint = baseline
        checkpoint = tmp_path / "campaign.jsonl"
        with injected(CLEAN):
            results = _sweep(references, checkpoint, jobs=jobs)
        assert _records(results) == seq_records
        assert results.health == seq_health
        assert checkpoint.read_bytes() == seq_checkpoint

    def test_saved_checkpoint_matches_sequential(
        self, references, tmp_path, baseline
    ):
        """``save_checkpoint`` emits sorted (benchmark, config) order, so
        the file is identical however the cache was populated."""
        _, _, _ = baseline
        seq_study = Study(references=references, invocation_scale=0.2)
        par_study = Study(references=references, invocation_scale=0.2)
        with injected(CLEAN):
            seq_study.run(CONFIGS, BENCHES)
            par_study.run(CONFIGS, BENCHES, jobs=2)
        seq_file = seq_study.save_checkpoint(tmp_path / "seq.jsonl")
        par_file = par_study.save_checkpoint(tmp_path / "par.jsonl")
        assert par_file.read_bytes() == seq_file.read_bytes()


class TestFaultedEquivalence:
    """Fault decisions are keyed by (site, attempt), so an armed plan
    must fire the same faults — and trigger the same retries, MAD
    re-measures, and quarantines — in a worker as in the parent."""

    RETRY = RetryPolicy(max_retries=8, outlier_threshold=3.5)

    @pytest.fixture(scope="class")
    def faulted_baseline(self, references, tmp_path_factory):
        checkpoint = tmp_path_factory.mktemp("faulted-seq") / "campaign.jsonl"
        with injected(demo_plan(probability=0.05, seed="parallel")):
            results = _sweep(references, checkpoint, retry=self.RETRY)
        return _records(results), results.health, checkpoint.read_bytes()

    @pytest.mark.parametrize("jobs", WORKER_COUNTS)
    def test_faulted_sweep_is_byte_identical(
        self, references, tmp_path, faulted_baseline, jobs
    ):
        seq_records, seq_health, seq_checkpoint = faulted_baseline
        # The plan really bit: equivalence over a fault-free campaign
        # would not exercise the retry/failure merge at all.
        assert seq_health.retries > 0 or seq_health.total_failures > 0
        checkpoint = tmp_path / "campaign.jsonl"
        with injected(demo_plan(probability=0.05, seed="parallel")):
            results = _sweep(references, checkpoint, jobs=jobs, retry=self.RETRY)
        assert _records(results) == seq_records
        assert results.health == seq_health
        # Mapping equality is order-blind; the failure dict's insertion
        # order (first-observed first) must match the sequential sweep too.
        assert list(results.health.failures) == list(seq_health.failures)
        assert checkpoint.read_bytes() == seq_checkpoint

    def test_quarantines_land_in_the_same_cells(self, references):
        """With retries exhausted early, both paths must quarantine the
        same pairs for the same reasons and keep the same survivors."""
        plan = fail_stop_plan(probability=0.2, seed="quarantine-parity")
        policy = RetryPolicy(max_retries=0)
        seq_study = Study(
            references=references, invocation_scale=0.2, retry=policy
        )
        par_study = Study(
            references=references, invocation_scale=0.2, retry=policy
        )
        with injected(plan):
            seq = seq_study.run(CONFIGS, BENCHES)
            par = par_study.run(CONFIGS, BENCHES, jobs=2)
        # 20% per-invocation fail-stop with zero retries: some pair must
        # fall over, or the test proves nothing.
        assert len(seq.health.quarantined) > 0
        assert par.health.quarantined == seq.health.quarantined
        assert par.health == seq.health
        assert _records(par) == _records(seq)


class TestParallelResume:
    def test_checkpoint_resume_mid_parallel_sweep(self, references, tmp_path):
        """A campaign checkpointed by a parallel half-sweep resumes — in
        parallel — to the byte-identical dataset and checkpoint."""
        baseline_csv = tmp_path / "baseline.csv"
        resumed_csv = tmp_path / "resumed.csv"
        seq_checkpoint = tmp_path / "seq.jsonl"
        checkpoint = tmp_path / "resumable.jsonl"

        with injected(CLEAN):
            _sweep(references, seq_checkpoint).to_csv(baseline_csv)

            # First attempt: half the sweep, in parallel, then "killed".
            first = Study(
                references=references,
                invocation_scale=0.2,
                checkpoint_path=checkpoint,
            )
            first.run(CONFIGS[:1], BENCHES, jobs=2)
            assert len(checkpoint.read_text().splitlines()) == len(BENCHES)

            # Second attempt restores the survivors and finishes — also
            # in parallel — appending only the missing pairs.
            second = Study(
                references=references,
                invocation_scale=0.2,
                checkpoint_path=checkpoint,
            )
            assert second.restore_checkpoint(checkpoint) == len(BENCHES)
            results = second.run(CONFIGS, BENCHES, jobs=2)
            results.to_csv(resumed_csv)

        assert results.health.restored_pairs == len(BENCHES)
        assert results.health.measured_pairs == len(BENCHES)
        assert resumed_csv.read_bytes() == baseline_csv.read_bytes()
        # The append-style checkpoint grew in sweep order both times, so
        # it matches the uninterrupted sequential campaign's bytes too.
        assert checkpoint.read_bytes() == seq_checkpoint.read_bytes()


class TestFallback:
    def test_unavailable_executor_falls_back_to_sequential(
        self, references, monkeypatch, tmp_path
    ):
        """When no pool can be created the sweep silently degrades to the
        in-process path — same results, health, and checkpoint bytes."""
        import repro.core.executor as executor

        def _no_pool(*args, **kwargs):
            raise executor.ExecutorUnavailable("pools disabled for test")

        monkeypatch.setattr(executor, "run_pairs", _no_pool)
        seq_checkpoint = tmp_path / "seq.jsonl"
        fallback_checkpoint = tmp_path / "fallback.jsonl"
        with injected(CLEAN):
            seq = _sweep(references, seq_checkpoint)
            fallback = _sweep(references, fallback_checkpoint, jobs=4)
        assert _records(fallback) == _records(seq)
        assert fallback.health == seq.health
        assert fallback_checkpoint.read_bytes() == seq_checkpoint.read_bytes()
