"""Integration: the Java-specific behaviours of Figures 1 and 6."""

import pytest

from repro.experiments import fig1_java_scalability, fig6_single_thread_java
from repro.experiments import paper_data


class TestFig1Scalability:
    def test_every_multithreaded_java_benchmark_present(self, study):
        rows = fig1_java_scalability.run(study).rows
        assert {str(r["benchmark"]) for r in rows} == set(
            paper_data.FIG1_JAVA_SCALABILITY
        )

    def test_scalable_five_exceed_two(self, study):
        rows = {str(r["benchmark"]): float(r["measured_4C2T_over_1C1T"])
                for r in fig1_java_scalability.run(study).rows}
        for name in ("sunflow", "xalan", "tomcat", "lusearch", "eclipse"):
            assert rows[name] > 2.0, name

    def test_nonscalable_java_stays_low(self, study):
        rows = {str(r["benchmark"]): float(r["measured_4C2T_over_1C1T"])
                for r in fig1_java_scalability.run(study).rows}
        for name in ("batik", "h2", "pmd"):
            assert rows[name] < 1.6, name

    def test_sunflow_tops_the_chart(self, study):
        rows = fig1_java_scalability.run(study).rows
        assert rows[0]["benchmark"] == "sunflow"

    def test_ordering_roughly_matches_paper(self, study):
        """Spearman-style check: measured scalability correlates strongly
        with the paper's Fig. 1 ordering."""
        rows = fig1_java_scalability.run(study).rows
        measured_order = [str(r["benchmark"]) for r in rows]
        paper_order = sorted(
            paper_data.FIG1_JAVA_SCALABILITY,
            key=paper_data.FIG1_JAVA_SCALABILITY.__getitem__,
            reverse=True,
        )
        displacement = sum(
            abs(measured_order.index(name) - paper_order.index(name))
            for name in paper_order
        )
        assert displacement <= 14  # max possible is 84 for 13 items


class TestFig6SingleThreadedJava:
    def test_average_gain_about_ten_percent(self, study):
        """Workload Finding 1: 'on average about 10% faster ... on two
        cores'."""
        rows = fig6_single_thread_java.run(study).rows
        gains = [float(r["measured_2C1T_over_1C1T"]) for r in rows]
        mean_gain = sum(gains) / len(gains)
        assert 1.05 < mean_gain < 1.20

    def test_antlr_gains_most(self, study):
        rows = fig6_single_thread_java.run(study).rows
        assert rows[0]["benchmark"] in ("antlr", "db")
        assert float(rows[0]["measured_2C1T_over_1C1T"]) > 1.3

    def test_mpegaudio_gains_least(self, study):
        rows = {str(r["benchmark"]): float(r["measured_2C1T_over_1C1T"])
                for r in fig6_single_thread_java.run(study).rows}
        assert rows["mpegaudio"] == pytest.approx(1.0, abs=0.03)

    def test_each_benchmark_close_to_paper(self, study):
        rows = {str(r["benchmark"]): float(r["measured_2C1T_over_1C1T"])
                for r in fig6_single_thread_java.run(study).rows}
        for name, paper in paper_data.FIG6_ST_JAVA_CMP.items():
            assert rows[name] == pytest.approx(paper, abs=0.15), name

    def test_db_dtlb_reduction_near_2_5x(self, study):
        factor = fig6_single_thread_java.dtlb_reduction(study)
        assert factor == pytest.approx(paper_data.DB_DTLB_REDUCTION, rel=0.15)

    def test_no_benchmark_slows_down(self, study):
        # Allow a little JVM run-to-run noise on the quick protocol.
        for row in fig6_single_thread_java.run(study).rows:
            assert float(row["measured_2C1T_over_1C1T"]) >= 0.97
