"""Integration: every registered experiment regenerates its artifact."""

import pytest

from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.reporting.tables import render_experiment


class TestRegistry:
    def test_covers_every_paper_artifact(self):
        expected = {f"table{i}" for i in range(1, 6)} | {
            f"fig{i}" for i in range(1, 13)
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_id_rejected(self, study):
        with pytest.raises(KeyError):
            run_experiment("fig99", study)


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
class TestEveryExperiment:
    def test_runs_and_renders(self, experiment_id, study):
        result = run_experiment(experiment_id, study)
        assert result.experiment_id == experiment_id
        assert len(result.rows) > 0
        text = render_experiment(result)
        assert result.title in text

    def test_deterministic(self, experiment_id, study):
        first = run_experiment(experiment_id, study)
        second = run_experiment(experiment_id, study)
        assert first.rows == second.rows


class TestExperimentShapes:
    def test_table1_covers_61_benchmarks(self, study):
        assert len(run_experiment("table1", study).rows) == 61

    def test_table1_calibration_closes(self, study):
        for row in run_experiment("table1", study).rows:
            assert float(row["measured_reference_time_s"]) == pytest.approx(
                float(row["paper_time_s"]), rel=0.01
            )

    def test_table3_covers_8_processors(self, study):
        assert len(run_experiment("table3", study).rows) == 8

    def test_fig1_orders_scalable_java_on_top(self, study):
        rows = run_experiment("fig1", study).rows
        top_five = {str(r["benchmark"]) for r in rows[:5]}
        assert top_five == {"sunflow", "xalan", "tomcat", "lusearch", "eclipse"}

    def test_fig2_tdp_always_above_measured(self, study):
        for row in run_experiment("fig2", study).rows:
            assert float(row["tdp_over_max"]) > 1.0

    def test_fig2_atom_spread_narrow_nehalems_wide(self, study):
        rows = {str(r["processor"]): float(r["max_over_min"])
                for r in run_experiment("fig2", study).rows}
        assert rows["Atom (45)"] < 1.6
        # The Nehalems' advanced power management gives them by far the
        # widest benchmark-to-benchmark power spread (§2.5).
        assert rows["i7 (45)"] > 2.0
        assert rows["i5 (32)"] > 1.8
        assert rows["Atom (45)"] < rows["i7 (45)"]

    def test_fig3_extremes_match_paper_identities(self, study):
        note = run_experiment("fig3", study).notes[0]
        assert "omnetpp" in note
        assert "fluidanimate" in note

    def test_fig12_frontiers_fit(self, study):
        rows = run_experiment("fig12", study).rows
        assert len(rows) == 5
        for row in rows:
            assert len(row["efficient_points"]) >= 2
            assert len(row["frontier_series"]) >= 2

    def test_fig12_parallelism_extends_frontier(self, study):
        """Workload Finding 4 (Fig. 12): scalable groups reach much higher
        performance than non-scalable ones."""
        rows = {str(r["grouping"]): r for r in run_experiment("fig12", study).rows}
        ns_max = rows["Native Scalable"]["performance_range"][1]
        nn_max = rows["Native Non-scalable"]["performance_range"][1]
        assert ns_max > 1.5 * nn_max
