"""Acceptance tests for the resilient campaign runner.

Two properties anchor the robustness story:

* with ≥5 % per-invocation faults at every pipeline stage, ``Study.run``
  completes without raising and the returned
  :class:`~repro.core.results.CampaignHealth` accounts for every pair;
* with faults disabled, a checkpointed campaign killed mid-sweep resumes
  to a byte-identical CSV.
"""

import json

import pytest

from repro.core.study import Study
from repro.faults.injector import injected
from repro.faults.plan import FaultPlan, demo_plan, fail_stop_plan
from repro.faults.retry import RetryPolicy
from repro.hardware.catalog import ATOM_45, CORE_I7_45
from repro.hardware.config import stock
from repro.workloads.catalog import benchmark

CLEAN = FaultPlan()

CONFIGS = (stock(CORE_I7_45), stock(ATOM_45))
BENCHES = tuple(
    benchmark(name) for name in ("mcf", "db", "eclipse", "lusearch")
)


class TestFaultyCampaign:
    def test_five_percent_faults_cannot_take_down_a_sweep(self, references):
        study = Study(
            references=references,
            invocation_scale=0.2,
            retry=RetryPolicy(max_retries=8),
        )
        with injected(demo_plan(probability=0.05, seed="acceptance")):
            results = study.run(CONFIGS, BENCHES)
        health = results.health
        assert health is not None
        # Every attempted pair is accounted for: measured, cached,
        # restored, or quarantined — nothing vanished.
        assert health.attempted_pairs == len(CONFIGS) * len(BENCHES)
        assert (
            health.measured_pairs
            + health.cached_pairs
            + health.restored_pairs
            + len(health.quarantined)
            == health.attempted_pairs
        )
        assert len(results) == health.attempted_pairs - len(health.quarantined)
        # The plan really exercised the pipeline (5% across four stages
        # over ~80 invocations makes zero faults astronomically unlikely).
        assert health.retries > 0 or health.total_failures > 0
        for result in results:
            assert result.watts > 0 and result.seconds > 0

    def test_fail_stop_faults_leave_no_trace_in_the_data(self, references):
        """A fail-stop plan plus retries reproduces the clean dataset."""
        clean_study = Study(references=references, invocation_scale=0.2)
        faulted_study = Study(
            references=references,
            invocation_scale=0.2,
            retry=RetryPolicy(max_retries=10),
        )
        with injected(CLEAN):
            clean = clean_study.run(CONFIGS, BENCHES)
        with injected(fail_stop_plan(probability=0.1, seed="no-trace")):
            faulted = faulted_study.run(CONFIGS, BENCHES)
        assert faulted.health.ok
        assert [r.as_record() for r in faulted] == [
            r.as_record() for r in clean
        ]


class TestKillAndResume:
    def test_interrupted_campaign_resumes_byte_identical(
        self, references, tmp_path
    ):
        checkpoint = tmp_path / "campaign.jsonl"
        baseline_csv = tmp_path / "baseline.csv"
        resumed_csv = tmp_path / "resumed.csv"

        with injected(CLEAN):
            # The uninterrupted campaign.
            baseline = Study(references=references, invocation_scale=0.2)
            baseline.run(CONFIGS, BENCHES).to_csv(baseline_csv)

            # First attempt: measures three pairs, then is "killed" —
            # mid-write, leaving a truncated trailing line.
            first = Study(
                references=references,
                invocation_scale=0.2,
                checkpoint_path=checkpoint,
            )
            for bench in BENCHES[:3]:
                first.measure(bench, CONFIGS[0])
            intact = checkpoint.read_text()
            assert len(intact.splitlines()) == 3
            half_line = json.dumps(
                first.measure(BENCHES[3], CONFIGS[0]).as_record()
            )[:57]
            checkpoint.write_text(intact + half_line)

            # Second attempt resumes from the survivors and finishes.
            second = Study(
                references=references,
                invocation_scale=0.2,
                checkpoint_path=checkpoint,
            )
            assert second.restore_checkpoint(checkpoint) == 3
            results = second.run(CONFIGS, BENCHES)
            results.to_csv(resumed_csv)

        assert results.health.restored_pairs == 3
        assert results.health.measured_pairs == len(CONFIGS) * len(BENCHES) - 3
        assert resumed_csv.read_bytes() == baseline_csv.read_bytes()

    def test_completed_checkpoint_resumes_without_measuring(
        self, references, tmp_path
    ):
        checkpoint = tmp_path / "done.jsonl"
        with injected(CLEAN):
            writer = Study(
                references=references,
                invocation_scale=0.2,
                checkpoint_path=checkpoint,
            )
            writer.run(CONFIGS[:1], BENCHES)
            reader = Study(references=references, invocation_scale=0.2)
            reader.restore_checkpoint(checkpoint)
            health = reader.run(CONFIGS[:1], BENCHES).health
        assert health.measured_pairs == 0
        assert health.restored_pairs == len(BENCHES)
