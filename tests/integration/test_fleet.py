"""Acceptance tests for the supervised worker fleet.

The contract is the same as the PR 3 pool's, under a harsher adversary:
a ``Study.run(jobs=N, supervised=True)`` must be **byte-identical** to
the clean sequential sweep — same records, same
:class:`~repro.core.results.CampaignHealth`, same checkpoint bytes — at
any worker count *and with any number of worker deaths injected
mid-sweep*.  A killed worker's partial chunk dies with it; the
replacement re-measures the chunk from scratch on the same noise
streams, so the merged dataset cannot tell a massacre from a quiet run.

Worker faults are armed through the ordinary plan machinery with sites
of the form ``fleet/<chunk>/<attempt>``: a probability-1.0 spec scoped
to ``fleet/0/0`` kills exactly the first worker assigned chunk 0, and
the attempt-1 requeue sails through on fresh dice.
"""

import pytest

from repro.core.study import Study
from repro.faults.injector import injected
from repro.faults.plan import FaultPlan, FaultSpec, worker_chaos_plan
from repro.hardware.catalog import ATOM_45, CORE_I7_45
from repro.hardware.config import stock
from repro.workloads.catalog import benchmark

CLEAN = FaultPlan()

CONFIGS = (stock(CORE_I7_45), stock(ATOM_45))
BENCHES = tuple(
    benchmark(name) for name in ("mcf", "db", "eclipse", "lusearch")
)

WORKER_COUNTS = (1, 2, 4)


def _death_plan(deaths: int) -> FaultPlan:
    """Kill the first assignee of chunks 0..deaths-1, exactly once each.

    Chunk indices 0 and 1 exist at every worker count here: even
    ``jobs=1`` shards the 8-pair sweep into 4 chunks."""
    return FaultPlan(
        specs=tuple(
            FaultSpec(
                kind="worker.crash",
                probability=1.0,
                scope=f"fleet/{chunk}/0",
            )
            for chunk in range(deaths)
        ),
        seed="fleet-deaths",
    )


def _records(results):
    return [result.as_record() for result in results]


def _sweep(references, checkpoint, *, jobs=None, supervised=False, **kwargs):
    study = Study(
        references=references,
        invocation_scale=0.2,
        checkpoint_path=checkpoint,
        supervised=supervised,
        **kwargs,
    )
    return study.run(CONFIGS, BENCHES, jobs=jobs)


@pytest.fixture(scope="module")
def baseline(references, tmp_path_factory):
    """Clean *sequential* sweep: records, health, checkpoint bytes."""
    checkpoint = tmp_path_factory.mktemp("fleet-seq") / "campaign.jsonl"
    with injected(CLEAN):
        results = _sweep(references, checkpoint)
    return _records(results), results.health, checkpoint.read_bytes()


class TestDeathMatrix:
    """jobs x injected worker deaths — every cell byte-identical."""

    @pytest.mark.parametrize("jobs", WORKER_COUNTS)
    @pytest.mark.parametrize("deaths", (0, 1, 2))
    def test_supervised_sweep_is_byte_identical(
        self, references, tmp_path, baseline, jobs, deaths
    ):
        seq_records, seq_health, seq_checkpoint = baseline
        checkpoint = tmp_path / "campaign.jsonl"
        with injected(_death_plan(deaths)):
            results = _sweep(
                references, checkpoint, jobs=jobs, supervised=True
            )
        assert _records(results) == seq_records
        assert results.health == seq_health
        assert checkpoint.read_bytes() == seq_checkpoint

    def test_deaths_actually_happen(self, references, tmp_path, baseline):
        """The matrix must not pass vacuously: with the fleet kept alive
        (``reuse_pool``) the supervisor's restart/requeue counters are
        inspectable, and two scoped crashes mean two respawns."""
        seq_records, seq_health, seq_checkpoint = baseline
        checkpoint = tmp_path / "campaign.jsonl"
        study = Study(
            references=references,
            invocation_scale=0.2,
            checkpoint_path=checkpoint,
            supervised=True,
            reuse_pool=True,
        )
        try:
            with injected(_death_plan(2)):
                results = study.run(CONFIGS, BENCHES, jobs=2)
            snapshot = study.fleet_snapshot()
            assert snapshot is not None
            assert snapshot["restarts"] == 2
            assert snapshot["requeues"] == 2
            assert snapshot["live"] >= 1
        finally:
            study.close_pool()
        assert _records(results) == seq_records
        assert results.health == seq_health
        assert checkpoint.read_bytes() == seq_checkpoint


class TestHangAndChaos:
    def test_hung_worker_is_reaped_past_liveness_deadline(
        self, references, tmp_path, baseline
    ):
        """A ``worker.hang`` stops the victim's heartbeats; the liveness
        loop must SIGKILL it after ``heartbeat_s * liveness_misses`` and
        the requeued chunk must land byte-identically."""
        seq_records, seq_health, seq_checkpoint = baseline
        checkpoint = tmp_path / "campaign.jsonl"
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    kind="worker.hang", probability=1.0, scope="fleet/1/0"
                ),
            ),
            seed="fleet-hang",
        )
        study = Study(
            references=references,
            invocation_scale=0.2,
            checkpoint_path=checkpoint,
            supervised=True,
            reuse_pool=True,
            heartbeat_s=0.05,
            liveness_misses=3,
        )
        try:
            with injected(plan):
                results = study.run(CONFIGS, BENCHES, jobs=2)
            snapshot = study.fleet_snapshot()
            assert snapshot["restarts"] == 1
        finally:
            study.close_pool()
        assert _records(results) == seq_records
        assert results.health == seq_health
        assert checkpoint.read_bytes() == seq_checkpoint

    def test_chaos_plan_kills_every_chunks_first_worker(
        self, references, tmp_path, baseline
    ):
        """The canned ``chaos`` plan (``--inject chaos``) crashes the
        first assignee of *every* chunk — maximum churn, same bytes."""
        seq_records, seq_health, seq_checkpoint = baseline
        checkpoint = tmp_path / "campaign.jsonl"
        study = Study(
            references=references,
            invocation_scale=0.2,
            checkpoint_path=checkpoint,
            supervised=True,
            reuse_pool=True,
        )
        try:
            with injected(worker_chaos_plan()):
                results = study.run(CONFIGS, BENCHES, jobs=2)
            snapshot = study.fleet_snapshot()
            # 8 pairs at jobs=2 shard into 8 chunks: 8 crashed workers.
            assert snapshot["restarts"] == 8
        finally:
            study.close_pool()
        assert _records(results) == seq_records
        assert results.health == seq_health
        assert checkpoint.read_bytes() == seq_checkpoint


class TestCrashLoopQuarantine:
    def test_poison_chunk_is_given_up_and_quarantined(self, references):
        """A chunk that kills *every* worker it touches (scope
        ``fleet/0/*`` — all attempts) must be abandoned after
        ``max_chunk_attempts`` and its pairs quarantined with the PR 2
        semantics, not respawn workers forever."""
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    kind="worker.crash", probability=1.0, scope="fleet/0/*"
                ),
            ),
            seed="poison",
        )
        study = Study(
            references=references, invocation_scale=0.2, supervised=True
        )
        with injected(plan):
            results = study.run(CONFIGS, BENCHES, jobs=2)
        # 8 chunks at jobs=2: chunk 0 holds exactly the first pair.
        assert len(results.health.quarantined) == 1
        (entry,) = results.health.quarantined
        assert "crash-loop" in entry.reason
        assert results.health.failures.get("WorkerCrashLoop", 0) >= 1
        # The 7 surviving chunks still measured.
        assert results.health.attempted_pairs == len(CONFIGS) * len(BENCHES)
        assert results.health.measured_pairs == len(CONFIGS) * len(BENCHES) - 1
        assert len(results) == len(CONFIGS) * len(BENCHES) - 1


class TestFallback:
    def test_unavailable_fleet_falls_back_with_same_bytes(
        self, references, tmp_path, baseline, monkeypatch
    ):
        """When no fleet can be built the supervised sweep degrades to
        the pool path (and onward to sequential) — same bytes."""
        import repro.service.fleet as fleet_module

        class _NoFleet:
            def __init__(self, *args, **kwargs):
                raise fleet_module.FleetUnavailable("fleets disabled")

        monkeypatch.setattr(fleet_module, "FleetSupervisor", _NoFleet)
        seq_records, seq_health, seq_checkpoint = baseline
        checkpoint = tmp_path / "campaign.jsonl"
        with injected(CLEAN):
            results = _sweep(
                references, checkpoint, jobs=2, supervised=True
            )
        assert _records(results) == seq_records
        assert results.health == seq_health
        assert checkpoint.read_bytes() == seq_checkpoint
