"""Integration: telemetry across the engine -> meter -> study pipeline."""

import pytest

from repro.cli import main
from repro.core.study import Study
from repro.hardware.catalog import ATOM_45, CORE_I7_45
from repro.hardware.config import stock
from repro.obs.metrics import default_registry
from repro.obs.tracing import default_tracer, read_jsonl
from repro.workloads.catalog import benchmark


def _counter_value(name: str) -> float:
    metric = default_registry().get(name)
    assert metric is not None, f"{name} not registered"
    return metric.value


@pytest.fixture
def tracer():
    tracer = default_tracer()
    tracer.clear()
    tracer.enable()
    yield tracer
    tracer.disable()
    tracer.clear()


class TestStudySpanTree:
    def test_two_by_two_sweep_emits_expected_spans(self, references, tracer):
        study = Study(references=references, invocation_scale=0.05)
        benches = (benchmark("db"), benchmark("mcf"))
        configs = (stock(ATOM_45), stock(CORE_I7_45))

        with tracer.span("campaign") as root:
            study.run(configs, benches)

        measures = tracer.by_name("study.measure")
        assert len(measures) == 4
        assert all(span.parent_id == root.span_id for span in measures)
        seen = {
            (span.attributes["benchmark"], span.attributes["config"])
            for span in measures
        }
        assert seen == {
            (b.name, c.key) for b in benches for c in configs
        }
        assert all(span.duration_s > 0 for span in measures)
        assert all(span.attributes["invocations"] >= 1 for span in measures)

    def test_second_pass_is_cached_and_counted(self, references, tracer):
        study = Study(references=references, invocation_scale=0.05)
        benches = (benchmark("db"), benchmark("mcf"))
        configs = (stock(ATOM_45), stock(CORE_I7_45))
        study.run(configs, benches)

        spans_before = len(tracer.finished)
        hits_before = _counter_value("repro_study_cache_hits_total")
        study.run(configs, benches)

        # No new measurement spans: the cached fast path does no work.
        assert len(tracer.by_name("study.measure")) == 4
        assert len(tracer.finished) == spans_before
        assert _counter_value("repro_study_cache_hits_total") - hits_before == 4


class TestPipelineCounters:
    def test_invocations_and_executions_advance_together(self, references):
        study = Study(references=references, invocation_scale=0.05)
        invocations_before = _counter_value("repro_study_invocations_total")
        executions_before = _counter_value("repro_engine_executions_total")
        result = study.measure(benchmark("vips"), stock(ATOM_45))
        delta = _counter_value("repro_study_invocations_total") - invocations_before
        assert delta == result.invocations
        assert (
            _counter_value("repro_engine_executions_total") - executions_before
            == result.invocations
        )

    def test_meter_sample_counter_advances(self, references):
        study = Study(references=references, invocation_scale=0.05)
        samples = default_registry().get("repro_meter_samples_total")
        before = samples.labels(machine="atom_45").value
        study.measure(benchmark("lusearch"), stock(ATOM_45))
        assert samples.labels(machine="atom_45").value > before

    def test_measure_latency_histogram_fills(self, references):
        histogram = default_registry().get("repro_measure_seconds")
        before = histogram.count
        study = Study(references=references, invocation_scale=0.05)
        study.measure(benchmark("fop"), stock(ATOM_45))
        assert histogram.count == before + 1


class TestCliTelemetry:
    def test_trace_and_metrics_flags_end_to_end(self, tmp_path, capsys):
        trace_path = tmp_path / "spans.jsonl"
        tracer = default_tracer()
        tracer.clear()
        try:
            exit_code = main(
                ["--quick", "--trace", str(trace_path), "--metrics",
                 "experiment", "fig4"]
            )
        finally:
            tracer.disable()
            tracer.clear()
        assert exit_code == 0

        spans = read_jsonl(trace_path)
        roots = [s for s in spans if s["parent_id"] is None]
        assert [s["name"] for s in roots] == ["experiment:fig4"]
        children = [
            s for s in spans
            if s["parent_id"] == roots[0]["span_id"]
            and s["name"] == "study.measure"
        ]
        assert len(children) >= 1

        out = capsys.readouterr().out
        assert "repro_study_cache_hits_total" in out
        assert "repro_engine_executions_total" in out
        assert "# TYPE repro_measure_seconds histogram" in out
        assert "repro_measure_seconds_bucket" in out

    def test_stats_subcommand_prints_summary(self, capsys):
        assert main(["--quick", "stats"]) == 0
        out = capsys.readouterr().out
        assert "repro_study_cache_hits_total" in out
        assert "repro_engine_executions_total" in out
        assert "repro_measure_seconds" in out

    def test_progress_composes_with_quick(self, references):
        # --quick scales the protocol; the progress total must follow it.
        from repro.obs.progress import ProgressReporter
        import io

        reporter = ProgressReporter(stream=io.StringIO(), min_interval_s=0.0)
        study = Study(
            references=references, invocation_scale=0.2, progress=reporter
        )
        benches = (benchmark("db"), benchmark("mcf"))
        study.run((stock(ATOM_45),), benches)
        expected = sum(study.scaled_invocations(b) for b in benches)
        assert reporter.total == expected
        assert reporter.done == expected
        full = Study(references=references, invocation_scale=1.0)
        assert expected < sum(full.scaled_invocations(b) for b in benches)
