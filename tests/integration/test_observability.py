"""Integration: telemetry across the engine -> meter -> study pipeline."""

import json

import pytest

from repro.cli import main
from repro.core.study import Study
from repro.hardware.catalog import ATOM_45, CORE_I7_45
from repro.hardware.config import stock
from repro.obs.distributed import build_span_tree, orphan_parent_ids
from repro.obs.metrics import default_registry
from repro.obs.tracing import default_tracer, read_jsonl
from repro.workloads.catalog import benchmark


def _counter_value(name: str) -> float:
    metric = default_registry().get(name)
    assert metric is not None, f"{name} not registered"
    return metric.value


@pytest.fixture
def tracer():
    tracer = default_tracer()
    tracer.clear()
    tracer.enable()
    yield tracer
    tracer.disable()
    tracer.clear()


class TestStudySpanTree:
    def test_two_by_two_sweep_emits_expected_spans(self, references, tracer):
        study = Study(references=references, invocation_scale=0.05)
        benches = (benchmark("db"), benchmark("mcf"))
        configs = (stock(ATOM_45), stock(CORE_I7_45))

        with tracer.span("campaign") as root:
            study.run(configs, benches)

        measures = tracer.by_name("study.measure")
        assert len(measures) == 4
        assert all(span.parent_id == root.span_id for span in measures)
        seen = {
            (span.attributes["benchmark"], span.attributes["config"])
            for span in measures
        }
        assert seen == {
            (b.name, c.key) for b in benches for c in configs
        }
        assert all(span.duration_s > 0 for span in measures)
        assert all(span.attributes["invocations"] >= 1 for span in measures)

    def test_second_pass_is_cached_and_counted(self, references, tracer):
        study = Study(references=references, invocation_scale=0.05)
        benches = (benchmark("db"), benchmark("mcf"))
        configs = (stock(ATOM_45), stock(CORE_I7_45))
        study.run(configs, benches)

        spans_before = len(tracer.finished)
        hits_before = _counter_value("repro_study_cache_hits_total")
        study.run(configs, benches)

        # No new measurement spans: the cached fast path does no work.
        assert len(tracer.by_name("study.measure")) == 4
        assert len(tracer.finished) == spans_before
        assert _counter_value("repro_study_cache_hits_total") - hits_before == 4


class TestParallelSpanMerge:
    """The tentpole contract: a traced parallel sweep yields one rooted
    span tree covering coordinator and workers, with the measurement
    records byte-identical to the traced sequential run."""

    BENCHES = ("db", "mcf")

    def _run(self, references, tracer, jobs):
        tracer.clear()
        study = Study(references=references, invocation_scale=0.05)
        benches = tuple(benchmark(name) for name in self.BENCHES)
        configs = (stock(ATOM_45), stock(CORE_I7_45))
        with tracer.span("campaign") as root:
            results = study.run(configs, benches, jobs=jobs)
        spans = [span.as_dict() for span in tracer.finished]
        records = json.dumps([r.as_record() for r in results]).encode()
        return root, spans, records

    @pytest.mark.parametrize("jobs", (1, 2, 4))
    def test_single_rooted_tree_and_byte_identity(
        self, references, tracer, jobs
    ):
        _, seq_spans, seq_records = self._run(references, tracer, None)
        root, spans, records = self._run(references, tracer, jobs)

        # Byte-identity survives tracing at any worker count.
        assert records == seq_records

        # Every span hangs off the campaign root: zero orphans, one root.
        assert orphan_parent_ids(spans) == set()
        tree = build_span_tree(spans)
        assert tree is not None and tree["name"] == "campaign"

        # Worker subtrees arrived: one executor.chunk per pair, each
        # wrapping its measurement, adopted in sweep order.
        chunks = [s for s in spans if s["name"] == "executor.chunk"]
        assert len(chunks) == 4
        sweep_order = [
            (s["attributes"]["benchmark"], s["attributes"]["config"])
            for s in sorted(chunks, key=lambda s: s["attributes"]["pair"])
        ]
        seq_order = [
            (s["attributes"]["benchmark"], s["attributes"]["config"])
            for s in seq_spans
            if s["name"] == "study.measure"
        ]
        assert sweep_order == seq_order
        measures = [s for s in spans if s["name"] == "study.measure"]
        chunk_ids = {s["span_id"] for s in chunks}
        assert all(s["parent_id"] in chunk_ids for s in measures)

    def test_span_ids_never_collide_across_workers(self, references, tracer):
        """Regression for the per-process count(1) ID scheme: spans
        shipped home by 4 workers must not alias each other or the
        coordinator."""
        _, spans, _ = self._run(references, tracer, 4)
        ids = [s["span_id"] for s in spans]
        assert len(ids) == len(set(ids))

    def test_jsonl_and_chrome_exports_agree(
        self, references, tracer, tmp_path
    ):
        from repro.obs.tracing import chrome_trace_events

        self._run(references, tracer, 2)
        jsonl = tracer.export_jsonl(tmp_path / "spans.jsonl")
        chrome = tracer.export_chrome_trace(tmp_path / "trace.json")

        from_jsonl = read_jsonl(jsonl)
        events = json.loads(chrome.read_text(encoding="utf-8"))["traceEvents"]
        assert len(events) == len(from_jsonl)
        # Exact nesting rides in args, not just time containment.
        by_id = {e["args"]["span_id"]: e for e in events}
        for record in from_jsonl:
            event = by_id[record["span_id"]]
            assert event["name"] == record["name"]
            assert event["args"]["parent_id"] == record["parent_id"]
        assert chrome_trace_events(from_jsonl) == chrome_trace_events(
            tracer.finished
        )


class TestPipelineCounters:
    def test_invocations_and_executions_advance_together(self, references):
        study = Study(references=references, invocation_scale=0.05)
        invocations_before = _counter_value("repro_study_invocations_total")
        executions_before = _counter_value("repro_engine_executions_total")
        result = study.measure(benchmark("vips"), stock(ATOM_45))
        delta = _counter_value("repro_study_invocations_total") - invocations_before
        assert delta == result.invocations
        assert (
            _counter_value("repro_engine_executions_total") - executions_before
            == result.invocations
        )

    def test_meter_sample_counter_advances(self, references):
        study = Study(references=references, invocation_scale=0.05)
        samples = default_registry().get("repro_meter_samples_total")
        before = samples.labels(machine="atom_45").value
        study.measure(benchmark("lusearch"), stock(ATOM_45))
        assert samples.labels(machine="atom_45").value > before

    def test_measure_latency_histogram_fills(self, references):
        histogram = default_registry().get("repro_measure_seconds")
        before = histogram.count
        study = Study(references=references, invocation_scale=0.05)
        study.measure(benchmark("fop"), stock(ATOM_45))
        assert histogram.count == before + 1


class TestCliTelemetry:
    def test_trace_and_metrics_flags_end_to_end(self, tmp_path, capsys):
        trace_path = tmp_path / "spans.jsonl"
        tracer = default_tracer()
        tracer.clear()
        try:
            exit_code = main(
                ["--quick", "--trace", str(trace_path), "--metrics",
                 "experiment", "fig4"]
            )
        finally:
            tracer.disable()
            tracer.clear()
        assert exit_code == 0

        spans = read_jsonl(trace_path)
        roots = [s for s in spans if s["parent_id"] is None]
        assert [s["name"] for s in roots] == ["experiment:fig4"]
        children = [
            s for s in spans
            if s["parent_id"] == roots[0]["span_id"]
            and s["name"] == "study.measure"
        ]
        assert len(children) >= 1

        out = capsys.readouterr().out
        assert "repro_study_cache_hits_total" in out
        assert "repro_engine_executions_total" in out
        assert "# TYPE repro_measure_seconds histogram" in out
        assert "repro_measure_seconds_bucket" in out

    def test_stats_subcommand_prints_summary(self, capsys):
        assert main(["--quick", "stats"]) == 0
        out = capsys.readouterr().out
        assert "repro_study_cache_hits_total" in out
        assert "repro_engine_executions_total" in out
        assert "repro_measure_seconds" in out

    def test_progress_composes_with_quick(self, references):
        # --quick scales the protocol; the progress total must follow it.
        from repro.obs.progress import ProgressReporter
        import io

        reporter = ProgressReporter(stream=io.StringIO(), min_interval_s=0.0)
        study = Study(
            references=references, invocation_scale=0.2, progress=reporter
        )
        benches = (benchmark("db"), benchmark("mcf"))
        study.run((stock(ATOM_45),), benches)
        expected = sum(study.scaled_invocations(b) for b in benches)
        assert reporter.total == expected
        assert reporter.done == expected
        full = Study(references=references, invocation_scale=1.0)
        assert expected < sum(full.scaled_invocations(b) for b in benches)
