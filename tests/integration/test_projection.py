"""End-to-end tests for the forward-projection subsystem (ISSUE 10).

The contract under test is the subsystem's strongest promise: a frontier
search over synthesized post-2011 machines produces **byte-identical**
datasets (and figure text) at any worker count, with the vectorized
kernels on or off, and under an armed fail-stop fault plan — because
every layer underneath (candidate synthesis, the Study pipeline, the
Pareto scan, canonical JSON) is deterministic.

A golden digest pins the small-search dataset across sessions the same
way ``golden_stock`` pins the measured dataset; like every golden here,
it must keep passing with ``REPRO_FAULT_PLAN=ci`` armed, since retried
fail-stop faults reproduce the fault-free bytes.
"""

import asyncio
import hashlib
import json
import os

import pytest

from repro.cli import main
from repro.core.study import Study
from repro.faults.retry import RetryPolicy
from repro.projection import evaluate_projection_finding, search
from repro.reporting.figures import projection_figure
from repro.service.server import CampaignServer, Request

#: The small search every equivalence axis re-runs: two nodes bracket the
#: projected era, samples kept low so each fresh study stays quick.
_NODES = (22, 7)
_SAMPLES = 12
_SEED = 0

#: sha256 of the small search's canonical dataset bytes (quick protocol,
#: invocation_scale=0.2).  Refresh deliberately with:
#: ``PYTHONPATH=src python -c "import hashlib; from repro.core.study import
#: Study; from repro.projection import search; print(hashlib.sha256(
#: search(study=Study(invocation_scale=0.2), nodes=(22, 7), samples=12,
#: seed=0).to_json_bytes()).hexdigest())"``
_GOLDEN_SHA = "ee19c9d56877d023889cfc37557e0f2f66a0f09437ac045bf470ab6437541f58"


def _retry() -> RetryPolicy | None:
    if not os.environ.get("REPRO_FAULT_PLAN"):
        return None
    return RetryPolicy(max_retries=8)


def _fresh_search(references, jobs=None, vectorize=None):
    study = Study(
        references=references,
        invocation_scale=0.2,
        retry=_retry(),
        vectorize=vectorize,
    )
    return search(study=study, nodes=_NODES, samples=_SAMPLES, seed=_SEED, jobs=jobs)


class TestByteIdentity:
    @pytest.fixture(scope="class")
    def baseline(self, references):
        dataset = _fresh_search(references)
        return dataset.to_json_bytes(), projection_figure(dataset)

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_any_worker_count_matches_sequential(self, references, baseline, jobs):
        dataset = _fresh_search(references, jobs=jobs)
        assert dataset.to_json_bytes() == baseline[0]
        assert projection_figure(dataset) == baseline[1]

    def test_scalar_kernels_match_vectorized(self, references, baseline):
        dataset = _fresh_search(references, vectorize=False)
        assert dataset.to_json_bytes() == baseline[0]

    def test_golden_digest(self, baseline):
        assert hashlib.sha256(baseline[0]).hexdigest() == _GOLDEN_SHA

    def test_repeat_on_a_warm_study_is_identical(self, study, baseline):
        """The session study's warm cache must not perturb the bytes."""
        dataset = search(
            study=study, nodes=_NODES, samples=_SAMPLES, seed=_SEED
        )
        assert dataset.to_json_bytes() == baseline[0]


class TestFourNodeSearch:
    @pytest.fixture(scope="class")
    def dataset(self, study):
        return search(study=study, nodes=(22, 14, 10, 7), samples=16, seed=0)

    def test_finding_p1_holds(self, dataset):
        report = evaluate_projection_finding(dataset)
        assert report.finding_id == "P1"
        assert report.holds, report.evidence

    def test_measured_overlay_covers_the_four_nodes(self, dataset):
        nodes = {point.node_nm for point in dataset.measured}
        assert nodes == {130, 65, 45, 32}
        assert len(dataset.measured) >= 8  # the stock catalog

    def test_every_node_has_a_frontier(self, dataset):
        for nm in (22, 14, 10, 7):
            frontier = dataset.frontier_for(nm)
            assert frontier.outcomes
            assert frontier.efficient_keys
            efficient = set(frontier.efficient_keys)
            assert efficient <= {o.candidate.key for o in frontier.outcomes}

    def test_projected_frontiers_advance_the_measured_trend(self, dataset):
        best_measured = max(p.performance / p.energy for p in dataset.measured)
        for nm in (22, 14, 10, 7):
            assert dataset.frontier_for(nm).best_efficiency() > best_measured


class TestCliProject:
    def test_out_files_identical_across_worker_counts(self, capsys, tmp_path):
        out = {}
        for jobs in ("1", "2"):
            target = tmp_path / f"jobs{jobs}"
            assert main([
                "--quick", "--jobs", jobs, "project",
                "--nodes", "22", "--samples", "6", "--seed", "3",
                "--out", str(target),
            ]) == 0
            text = capsys.readouterr().out
            assert "searched" in text
            assert "finding P1" in text
            out[jobs] = (
                (target / "frontier.json").read_bytes(),
                (target / "figure.txt").read_bytes(),
            )
        assert out["1"] == out["2"]
        json.loads(out["1"][0])  # the dataset file is valid JSON

    def test_bad_nodes_exit_with_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--quick", "project", "--nodes", "22,x"])
        assert excinfo.value.code == 2
        assert "--nodes" in capsys.readouterr().err

    def test_unknown_node_exit_with_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--quick", "project", "--nodes", "45"])
        assert excinfo.value.code == 2

    def test_list_nodes_flags_synthetic(self, capsys):
        assert main(["list", "nodes"]) == 0
        out = capsys.readouterr().out
        assert out.count("projected/synthetic") == 4
        assert out.count("measured") == 4


def _get(server: CampaignServer, query: dict[str, str]):
    request = Request(
        method="GET",
        path="/project",
        query=query,
        headers={},
        body=b"",
        peer="test",
    )
    return asyncio.run(server.handle(request))


class TestServiceRoute:
    @pytest.fixture(scope="class")
    def server(self, study):
        return CampaignServer(study=study, jobs=1)

    def test_project_route_end_to_end(self, server):
        query = {"nodes": "22", "samples": "6", "seed": "3"}
        first = _get(server, query)
        assert first.status == 200
        payload = json.loads(first.body)
        assert payload["params"]["nodes"] == [22]
        assert payload["candidates"] > 0
        assert payload["finding"]["id"] == "P1"
        assert payload["dataset"]["nodes"][0]["nm"] == 22
        # The deterministic search makes the repeat cache-served and
        # byte-identical.
        second = _get(server, query)
        assert second.status == 200
        assert second.body == first.body

    @pytest.mark.parametrize("query", [
        {"nodes": "45"},              # measured node
        {"nodes": ""},                # empty list
        {"nodes": "22,x"},            # not an integer
        {"samples": "0"},             # below range
        {"samples": "10000"},         # above PROJECT_MAX_SAMPLES
        {"tdp": "-5"},                # invalid budget
    ])
    def test_bad_parameters_return_400(self, server, query):
        response = _get(server, query)
        assert response.status == 400
        assert "error" in json.loads(response.body)
