"""Integration: the §3 feature analyses reproduce the paper's shapes.

Each test pins a directional or banded claim from Figures 4-10 — who
wins, by roughly what factor, and with what sign.
"""

import pytest

from repro.experiments import (
    fig4_cmp,
    fig5_smt,
    fig7_clock,
    fig8_die_shrink,
    fig9_microarch,
    fig10_turbo,
)
from repro.experiments import paper_data
from repro.workloads.benchmark import Group


class TestFig4Cmp:
    def test_i7_pays_more_power_for_same_gain(self, study):
        i7, i5 = fig4_cmp.effects(study)
        assert i7.performance == pytest.approx(i5.performance, rel=0.1)
        assert i7.power > i5.power + 0.05

    def test_performance_within_band(self, study):
        i7, i5 = fig4_cmp.effects(study)
        assert i7.performance == pytest.approx(1.32, rel=0.1)
        assert i5.performance == pytest.approx(1.34, rel=0.1)

    def test_native_nonscalable_never_gains(self, study):
        i7, _ = fig4_cmp.effects(study)
        assert i7.energy_by_group[Group.NATIVE_NONSCALABLE] > 1.0


class TestFig5Smt:
    def test_atom_gains_most_performance(self, study):
        effects = fig5_smt.effects(study)
        atom = effects["atom_45"].performance
        assert atom > effects["pentium4_130"].performance
        assert atom > effects["i7_45"].performance

    def test_p4_gains_least(self, study):
        effects = fig5_smt.effects(study)
        p4 = effects["pentium4_130"].performance
        assert p4 < effects["i5_32"].performance
        assert p4 < effects["atom_45"].performance

    def test_performance_bands(self, study):
        effects = fig5_smt.effects(study)
        for key in ("pentium4_130", "i7_45", "atom_45", "i5_32"):
            paper = paper_data.FIG5_SMT[key]["performance"]
            assert effects[key].performance == pytest.approx(paper, abs=0.12), key

    def test_smt_cheaper_than_cmp(self, study):
        """§3.2: SMT adds about half CMP's performance at a fraction of
        its power cost on the i7."""
        smt = fig5_smt.effects(study)["i7_45"]
        cmp_effect, _ = fig4_cmp.effects(study)
        smt_power_cost = smt.power - 1.0
        cmp_power_cost = cmp_effect.power - 1.0
        assert smt_power_cost < 0.55 * cmp_power_cost
        assert smt.performance - 1.0 < cmp_effect.performance - 1.0

    def test_scalable_groups_save_energy_on_modern_smt(self, study):
        effects = fig5_smt.effects(study)
        for key in ("i7_45", "atom_45", "i5_32"):
            by_group = effects[key].energy_by_group
            assert by_group[Group.NATIVE_SCALABLE] < 1.0, key
            assert by_group[Group.JAVA_SCALABLE] < 1.0, key


class TestFig7Clock:
    def test_energy_signs(self, study):
        rows = {r["processor"]: r for r in fig7_clock.doubling_rows(study)}
        assert float(rows["i7 (45)"]["energy_per_doubling"]) > 0.3
        assert float(rows["C2D (45)"]["energy_per_doubling"]) > 0.3
        assert abs(float(rows["i5 (32)"]["energy_per_doubling"])) < 0.15

    def test_performance_sublinear(self, study):
        """Doubling the clock buys roughly +80%, never +100% (§3.3)."""
        for row in fig7_clock.doubling_rows(study):
            gain = float(row["performance_per_doubling"])
            assert 0.5 < gain < 1.0, row["processor"]

    def test_power_superlinear_on_45nm(self, study):
        rows = {r["processor"]: r for r in fig7_clock.doubling_rows(study)}
        assert float(rows["i7 (45)"]["power_per_doubling"]) > 1.0
        assert float(rows["C2D (45)"]["power_per_doubling"]) > 1.0

    def test_i5_energy_curve_flat(self, study):
        """Fig. 7(c): the i5's energy stays within a narrow band over its
        whole clock range."""
        curve = fig7_clock.energy_curve(study, "i5_32")
        energies = [e for _, _, e in curve]
        assert max(energies) / min(energies) < 1.25

    def test_i7_energy_curve_rises(self, study):
        curve = fig7_clock.energy_curve(study, "i7_45")
        assert curve[-1][2] > 1.3 * curve[0][2]

    def test_fig7d_nn_draws_least_power(self, study):
        """Fig. 7(d) / Workload Finding 3: Native Non-scalable draws less
        power than every other group at every i7 clock point."""
        series = fig7_clock.power_by_group(study, "i7_45")
        nn = {ghz: watts for ghz, _, watts in series["Native Non-scalable"]}
        for group, points in series.items():
            if group == "Native Non-scalable":
                continue
            for ghz, _, watts in points:
                assert watts > nn[ghz], (group, ghz)


class TestFig8DieShrink:
    def test_matched_clock_power_savings(self, study):
        matched = fig8_die_shrink.matched_clock_effects(study)
        assert matched["core"].power < 0.65
        assert matched["nehalem"].power < 0.92

    def test_matched_clock_no_performance_regression_core(self, study):
        matched = fig8_die_shrink.matched_clock_effects(study)
        assert matched["core"].performance == pytest.approx(1.0, abs=0.12)

    def test_native_clock_both_faster_and_cooler(self, study):
        native = fig8_die_shrink.native_clock_effects(study)
        for effect in native.values():
            assert effect.performance > 1.0
            assert effect.power < 1.0


class TestFig9Microarch:
    def test_nehalem_vs_netburst_enormous(self, study):
        effect = fig9_microarch.effects(study)["netburst"]
        assert effect.performance > 2.2
        assert effect.power < 0.45
        assert effect.energy < 0.2

    def test_nehalem_vs_core_modest(self, study):
        effects = fig9_microarch.effects(study)
        assert 1.0 < effects["core_45"].performance < 1.4
        assert 1.0 < effects["core_65"].performance < 1.45

    def test_energy_parity_at_45nm(self, study):
        """Architecture Finding 7."""
        effects = fig9_microarch.effects(study)
        assert 0.6 < effects["core_45"].energy < 1.3
        assert 0.6 < effects["bonnell"].energy < 1.3


class TestFig10Turbo:
    def test_i7_boost_costly(self, study):
        effects = fig10_turbo.effects(study)
        assert effects["i7_45/4C2T"].power > 1.15
        assert effects["i7_45/1C1T"].power > 1.3

    def test_i5_boost_nearly_free(self, study):
        effects = fig10_turbo.effects(study)
        assert effects["i5_32/2C2T"].power < 1.08
        assert abs(effects["i5_32/2C2T"].energy - 1.0) < 0.06

    def test_performance_tracks_clock_steps(self, study):
        """§3.6: 'actual performance changes are well predicted by the
        clock rate increases' — gains land between half the step ratio
        and the full step ratio."""
        effects = fig10_turbo.effects(study)
        for key, steps, base in (
            ("i7_45/4C2T", 1, 2.66),
            ("i7_45/1C1T", 2, 2.66),
            ("i5_32/2C2T", 1, 3.46),
            ("i5_32/1C1T", 2, 3.46),
        ):
            clock_ratio = (base + steps * 0.133) / base
            gain = effects[key].performance
            assert 1.0 < gain <= clock_ratio + 0.01, key
            assert gain > 1.0 + (clock_ratio - 1.0) * 0.4, key


class TestFig7GroupPanel:
    def test_i5_flat_for_every_group(self, study):
        """Fig. 7(b): the i5's per-group energy change per doubling stays
        near zero for all four groups."""
        rows = [r for r in fig7_clock.group_energy_rows(study)
                if r["processor"] == "i5 (32)"]
        assert len(rows) == 4
        for row in rows:
            assert abs(float(row["energy_per_doubling"])) < 0.20, row["group"]

    def test_45nm_parts_rise_for_every_group(self, study):
        for machine in ("i7 (45)", "C2D (45)"):
            rows = [r for r in fig7_clock.group_energy_rows(study)
                    if r["processor"] == machine]
            for row in rows:
                assert float(row["energy_per_doubling"]) > 0.25, (machine, row)

    def test_paper_values_attached(self, study):
        for row in fig7_clock.group_energy_rows(study):
            assert row["paper_energy"] is not None
