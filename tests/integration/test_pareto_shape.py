"""Integration: the Pareto analysis of Table 5 / Fig. 12."""

from repro.experiments import paper_data, table5_pareto_configs
from repro.experiments.table5_pareto_configs import AVERAGE, efficient_keys
from repro.workloads.benchmark import Group


class TestTable5:
    def test_frontiers_differ_per_grouping(self, study):
        sets = {
            g: frozenset(efficient_keys(study, g))
            for g in (AVERAGE, *list(Group))
        }
        assert len(set(sets.values())) >= 3

    def test_atomd_never_efficient(self, study):
        """§4.2: 'all four AtomD (45) configurations are not Pareto
        efficient for any of the five groupings.'"""
        for grouping in (AVERAGE, *list(Group)):
            assert not any(
                key.startswith("atomd") for key in efficient_keys(study, grouping)
            ), grouping

    def test_atom_anchors_low_energy_end_for_scalables(self, study):
        for grouping in (Group.NATIVE_SCALABLE, Group.JAVA_SCALABLE, AVERAGE):
            assert "atom_45/1C2T@1.66" in efficient_keys(study, grouping), grouping

    def test_nn_frontier_is_i7_configurations(self, study):
        """§4.2: 'all of the Pareto efficient points for Native
        Non-scalable are various configurations of the ... i7' —
        contradicting Azizi et al.'s in-order prediction."""
        nn = efficient_keys(study, Group.NATIVE_NONSCALABLE)
        assert nn
        assert all(key.startswith("i7_45/") for key in nn)

    def test_substantial_overlap_with_paper_sets(self, study):
        """Pareto membership is knife-edge sensitive, so assert coverage
        in aggregate: at least 40% of each paper column and 60% of the
        union of all columns is recovered."""
        total_overlap = 0
        total_paper = 0
        for grouping, paper_set in paper_data.TABLE5_PARETO.items():
            measured = efficient_keys(study, grouping)
            overlap = len(measured & set(paper_set))
            assert overlap >= 0.4 * len(paper_set), (grouping, measured)
            total_overlap += overlap
            total_paper += len(paper_set)
        assert total_overlap >= 0.6 * total_paper

    def test_frontier_sizes_plausible(self, study):
        result = table5_pareto_configs.run(study)
        for row in result.rows:
            assert 2 <= int(row["count"]) <= 12, row["grouping"]
