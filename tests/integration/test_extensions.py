"""Integration: the beyond-paper extension experiments."""

import pytest

from repro.experiments.registry import EXTENSIONS, run_experiment


@pytest.mark.parametrize("experiment_id", sorted(EXTENSIONS))
def test_extension_runs(experiment_id, study):
    result = run_experiment(experiment_id, study)
    assert result.rows


class TestJvmVendors:
    def test_average_similar_individuals_vary(self, study):
        """§2.2's observation, asserted."""
        result = run_experiment("ext_jvm_vendors", study)
        for row in result.rows:
            assert abs(float(row["mean_performance_vs_hotspot"]) - 1.0) < 0.05
            assert abs(float(row["mean_power_vs_hotspot"]) - 1.0) <= 0.10
        spreads = [
            float(row["max_benchmark_ratio"]) - float(row["min_benchmark_ratio"])
            for row in result.rows
            if "HotSpot" not in str(row["jvm"])
        ]
        assert all(spread > 0.2 for spread in spreads)


class TestCompilers:
    def test_icc_wins_on_out_of_order_parts(self, study):
        result = run_experiment("ext_compilers", study)
        for row in result.rows:
            if row["processor"] != "Pentium4 (130)":
                assert float(row["mean_gcc_over_icc_time"]) >= 1.0

    def test_gap_is_modest(self, study):
        result = run_experiment("ext_compilers", study)
        for row in result.rows:
            assert float(row["mean_gcc_over_icc_time"]) < 1.10


class TestHeap:
    def test_tighter_heap_slower(self, study):
        result = run_experiment("ext_heap", study)
        by_factor = {float(r["heap_factor"]): r for r in result.rows}
        times = [
            float(by_factor[f]["mean_time_vs_3x_heap"]) for f in (1.5, 2.0, 3.0, 6.0)
        ]
        assert times == sorted(times, reverse=True)

    def test_three_x_heap_is_reference(self, study):
        result = run_experiment("ext_heap", study)
        row = next(r for r in result.rows if float(r["heap_factor"]) == 3.0)
        assert float(row["mean_time_vs_3x_heap"]) == pytest.approx(1.0)

    def test_cmp_gain_grows_with_gc_load(self, study):
        result = run_experiment("ext_heap", study)
        by_factor = {float(r["heap_factor"]): r for r in result.rows}
        gains = [
            float(by_factor[f]["mean_cmp_gain_2C_over_1C"]) for f in (1.5, 2.0, 3.0, 6.0)
        ]
        assert gains == sorted(gains, reverse=True)


class TestWholeSystem:
    def test_chip_share_smallest_on_atoms(self, study):
        result = run_experiment("ext_whole_system", study)
        shares = {str(r["processor"]): float(r["chip_share_of_wall"])
                  for r in result.rows}
        assert shares["Atom (45)"] == min(shares.values())
        assert shares["Atom (45)"] < 0.15

    def test_wall_compresses_dynamic_range(self, study):
        result = run_experiment("ext_whole_system", study)
        for row in result.rows:
            assert float(row["wall_dynamic_range"]) < float(
                row["chip_dynamic_range"]
            )


class TestThermal:
    def test_all_workloads_sustain_boost(self, study):
        result = run_experiment("ext_thermal", study)
        for row in result.rows:
            assert row["all_benchmarks_sustain_boost"] is True
            assert float(row["min_headroom"]) > 0.2


class TestDvfs:
    def test_diminishing_returns_across_nodes(self, study):
        """Le Sueur & Heiser's observation: the 45nm parts save energy by
        down-clocking; the 32nm i5 does not."""
        result = run_experiment("ext_dvfs", study)
        by_node = {}
        for row in result.rows:
            by_node.setdefault(int(row["node_nm"]), []).append(
                float(row["downclock_energy_saving"])
            )
        assert min(by_node[45]) > 0.2
        assert max(by_node[32]) < 0.05


class TestCharacterization:
    def test_four_groups_characterised(self, study):
        result = run_experiment("ext_characterization", study)
        assert len(result.rows) == 4

    def test_scalables_cheapest_per_instruction(self, study):
        """Spreading work across contexts amortises the package floor."""
        result = run_experiment("ext_characterization", study)
        epi = {str(r["group"]): float(r["mean_nj_per_instruction"])
               for r in result.rows}
        assert epi["Native Scalable"] < epi["Native Non-scalable"]
        assert epi["Java Scalable"] < epi["Java Non-scalable"]
