"""Golden regression tests: the dataset must not drift silently.

The library is deterministic end to end, so the full-protocol measured
values for two stock machines are pinned exactly.  A legitimate model
retune should regenerate ``golden_stock.py`` (see its docstring) in the
same change that justifies it.
"""

import pytest

from repro.hardware.catalog import PROCESSORS
from repro.hardware.config import stock
from repro.workloads.catalog import BENCHMARKS

from tests.integration.golden_stock import GOLDEN


class TestGoldenDataset:
    def test_covers_every_machine_fully(self):
        keys = {machine for machine, _ in GOLDEN}
        assert keys == {spec.key for spec in PROCESSORS}
        assert len(GOLDEN) == len(PROCESSORS) * len(BENCHMARKS)

    @pytest.mark.parametrize("spec", PROCESSORS, ids=lambda s: s.key)
    def test_full_protocol_reproduces_golden(self, spec, full_study):
        results = full_study.run_config(stock(spec))
        for result in results:
            seconds, watts, speedup, energy = GOLDEN[
                (spec.key, result.benchmark_name)
            ]
            assert result.seconds == pytest.approx(seconds, rel=1e-9), (
                result.benchmark_name
            )
            assert result.watts == pytest.approx(watts, rel=1e-9), (
                result.benchmark_name
            )
            assert result.speedup == pytest.approx(speedup, rel=1e-9)
            assert result.normalized_energy == pytest.approx(energy, rel=1e-9)
